"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that offline environments without the ``wheel`` package can still do a
legacy editable install (``python setup.py develop`` or
``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
