"""Tests for bounded counter-model search."""

from __future__ import annotations

from repro.checking import check
from repro.checking.engine import satisfies_all
from repro.constraints import parse_constraint, parse_constraints
from repro.reasoning.models import (
    all_graphs,
    brute_force_countermodel,
    find_countermodel,
    find_typed_countermodel,
    infer_alphabet,
    random_countermodel,
)
from repro.types.typecheck import check_type_constraint


class TestInferAlphabet:
    def test_union_of_sigma_and_phi_labels(self):
        sigma = parse_constraints("a => b\nK :: c ~> a")
        phi = parse_constraint("d => a")
        assert infer_alphabet(sigma, phi) == ("K", "a", "b", "c", "d")

    def test_sorted_and_deduplicated(self):
        sigma = parse_constraints("b => a\na => b")
        assert infer_alphabet(sigma) == ("a", "b")

    def test_phi_optional(self):
        assert infer_alphabet(parse_constraints("x => y")) == ("x", "y")


class TestExhaustiveSearch:
    def test_all_graphs_count(self):
        # 2 labels, 2 nodes: 2^(2*4) = 256 graphs.
        assert sum(1 for _ in all_graphs(2, ["a", "b"])) == 256

    def test_finds_countermodel(self):
        sigma = parse_constraints("a => b")
        phi = parse_constraint("b => a")
        graph = find_countermodel(sigma, phi, max_nodes=2)
        assert graph is not None
        assert satisfies_all(graph, sigma)
        assert not check(graph, phi).holds

    def test_none_for_implied(self):
        sigma = parse_constraints("a => b")
        phi = parse_constraint("a.c => b.c")
        assert find_countermodel(sigma, phi, max_nodes=2) is None

    def test_labels_inferred(self):
        sigma = parse_constraints("a => b")
        graph = find_countermodel(sigma, parse_constraint("b => c"))
        assert graph is not None
        assert graph.labels() <= {"a", "b", "c"}

    def test_backward_constraint_countermodel(self):
        sigma = []
        phi = parse_constraint("p :: a ~> w")
        graph = find_countermodel(sigma, phi, max_nodes=2)
        assert graph is not None
        assert not check(graph, phi).holds


class TestBruteForceOracle:
    def test_agrees_with_canonical_search_on_hit(self):
        sigma = parse_constraints("a => b")
        phi = parse_constraint("b => a")
        brute = brute_force_countermodel(sigma, phi, max_nodes=2)
        fast = find_countermodel(sigma, phi, max_nodes=2)
        assert brute is not None and fast is not None
        for graph in (brute, fast):
            assert satisfies_all(graph, sigma)
            assert not check(graph, phi).holds

    def test_agrees_with_canonical_search_on_implied(self):
        sigma = parse_constraints("a => b")
        phi = parse_constraint("a.c => b.c")
        assert brute_force_countermodel(sigma, phi, max_nodes=2) is None
        assert find_countermodel(sigma, phi, max_nodes=2) is None


class TestRandomSearch:
    def test_finds_simple_countermodel(self):
        sigma = parse_constraints("a => b")
        phi = parse_constraint("b => a")
        graph = random_countermodel(sigma, phi, ["a", "b"], node_count=3, seed=5)
        assert graph is not None
        assert satisfies_all(graph, sigma)

    def test_deterministic_by_seed(self):
        sigma = parse_constraints("a => b")
        phi = parse_constraint("b => a")
        g1 = random_countermodel(sigma, phi, ["a", "b"], 3, seed=5)
        g2 = random_countermodel(sigma, phi, ["a", "b"], 3, seed=5)
        assert (g1 is None) == (g2 is None)
        if g1 is not None:
            assert g1.same_structure(g2)


class TestTypedSearch:
    def test_typed_countermodel_is_typed(self, fs_schema):
        sigma = parse_constraints("sentence.head => subject")
        phi = parse_constraint("sentence => subject")
        hit = find_typed_countermodel(fs_schema, sigma, phi, max_oids=2)
        assert hit is not None
        instance, graph = hit
        assert check_type_constraint(fs_schema, graph).ok
        assert satisfies_all(graph, sigma)
        assert not check(graph, phi).holds

    def test_typed_search_respects_m_semantics(self, fs_schema):
        # subject => sentence.head IS implied over M by sentence.head
        # => subject, so no typed counter-model can exist.
        sigma = parse_constraints("sentence.head => subject")
        phi = parse_constraint("subject => sentence.head")
        assert (
            find_typed_countermodel(
                fs_schema, sigma, phi, max_oids=2, limit=3000
            )
            is None
        )
