"""Mechanized checks of the paper's lemmas, structure by structure.

Where the paper argues semantically, we enumerate: each lemma's claim
is evaluated on every member of a bounded slice of U_f(Delta) (via the
generic M-structure enumerator), with constraints drawn from the
schema's own path space.
"""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking import check
from repro.constraints.ast import PathConstraint, backward, forward, word
from repro.paths import Path
from repro.reasoning.typed_m import word_image
from repro.types.enumerate_m import enumerate_m_structures
from repro.types.examples import chain_m_schema, feature_structure_schema, random_m_schema
from repro.types.siggen import SchemaSignature


def _schema_paths(schema, max_len=3):
    signature = SchemaSignature(schema)
    return signature, [p for p in signature.sample_paths(max_len)]


class TestLemma46UniqueNodes:
    """Over M, every path in Paths(Delta) reaches exactly one node in
    every structure of U(Delta)."""

    @pytest.mark.parametrize(
        "schema_factory",
        [feature_structure_schema, lambda: chain_m_schema(3),
         lambda: random_m_schema(3, 2, seed=5)],
        ids=["feature-structures", "chain", "random"],
    )
    def test_unique_node_per_path(self, schema_factory):
        schema = schema_factory()
        signature, paths = _schema_paths(schema)
        for graph in enumerate_m_structures(schema, max_per_class=2, limit=15):
            for path in paths:
                assert len(graph.eval_path(path)) == 1, (path, graph)

    def test_fails_without_type_constraint(self):
        """The lemma is specifically typed: an untyped graph can give a
        path two targets (which is why word constraints are not
        symmetric untyped)."""
        from repro.graph import Graph

        g = Graph(root="r")
        g.add_edge("r", "a", "x")
        g.add_edge("r", "a", "y")
        assert len(g.eval_path("a")) == 2


class TestLemma47ForwardEqualsWord:
    """G |= (alpha :: beta => gamma) iff G |= (alpha.beta =>
    alpha.gamma), for every G in U(Delta)."""

    def _constraint_pool(self, schema) -> list[PathConstraint]:
        signature, paths = _schema_paths(schema, max_len=2)
        pool = []
        for alpha in paths:
            for beta in paths:
                for gamma in paths:
                    phi = forward(alpha, beta, gamma)
                    left, right = word_image(phi)
                    if signature.is_valid_path(left) and signature.is_valid_path(right):
                        pool.append(phi)
        return pool

    @pytest.mark.parametrize(
        "schema_factory",
        [feature_structure_schema, lambda: chain_m_schema(2)],
        ids=["feature-structures", "chain"],
    )
    def test_equivalence_on_structures(self, schema_factory):
        schema = schema_factory()
        pool = self._constraint_pool(schema)
        rng = random.Random(0)
        sample = rng.sample(pool, min(len(pool), 40))
        for graph in enumerate_m_structures(schema, max_per_class=2, limit=10):
            for phi in sample:
                left, right = word_image(phi)
                assert (
                    check(graph, phi).holds
                    == check(graph, word(left, right)).holds
                ), (phi, graph)

    def test_equivalence_fails_untyped(self):
        """Word-to-forward is unsound without the type constraint."""
        from repro.graph import Graph

        g = Graph(root="r")
        # alpha = p reaches two nodes; only one has the beta/gamma pair.
        g.add_edge("r", "p", "x1")
        g.add_edge("r", "p", "x2")
        g.add_edge("x1", "b", "y")
        g.add_edge("x1", "c", "y")
        g.add_edge("x2", "b", "z")
        # no c-edge from x2: forward constraint fails at x2 ...
        phi = forward("p", "b", "c")
        assert not check(g, phi).holds
        # ... but the word image holds (p.b and p.c images from r).
        g2 = g.copy()
        g2.add_edge("x1", "b", "z")  # make p.b image {y, z} subset p.c?
        g2.add_edge("x1", "c", "z")
        left, right = word_image(phi)
        assert check(g2, word(left, right)).holds
        assert not check(g2, phi).holds


class TestLemma48BackwardEqualsWord:
    """G |= (alpha :: beta ~> gamma) iff G |= (alpha =>
    alpha.beta.gamma), for every G in U(Delta)."""

    @pytest.mark.parametrize(
        "schema_factory",
        [feature_structure_schema, lambda: chain_m_schema(2)],
        ids=["feature-structures", "chain"],
    )
    def test_equivalence_on_structures(self, schema_factory):
        schema = schema_factory()
        signature, paths = _schema_paths(schema, max_len=2)
        pool = []
        for alpha, beta, gamma in itertools.product(paths, repeat=3):
            phi = backward(alpha, beta, gamma)
            left, right = word_image(phi)
            if signature.is_valid_path(left) and signature.is_valid_path(right):
                pool.append(phi)
        rng = random.Random(1)
        sample = rng.sample(pool, min(len(pool), 40))
        for graph in enumerate_m_structures(schema, max_per_class=2, limit=10):
            for phi in sample:
                left, right = word_image(phi)
                assert (
                    check(graph, phi).holds
                    == check(graph, word(left, right)).holds
                ), (phi, graph)


class TestLemma53ModelSurgery:
    """The two model constructions in the proof of Lemma 5.3 preserve
    and reflect the right constraints (random instances)."""

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.lists(st.sampled_from("ab"), min_size=1, max_size=2),
                st.lists(st.sampled_from("ab"), min_size=1, max_size=2),
            ),
            min_size=1,
            max_size=2,
        ),
        st.integers(0, 5000),
    )
    def test_attach_prefix_preserves_prefixed_constraints(self, rules, seed):
        from repro.checking.engine import satisfies_all
        from repro.graph import random_graph
        from repro.reasoning.chase import chase
        from repro.reductions import attach_prefix

        rho = Path.parse("MIT.bib")
        base_constraints = [word(Path(l), Path(r)) for l, r in rules]
        graph = random_graph(4, ["a", "b"], seed=seed)
        outcome = chase(graph, base_constraints, max_steps=300)
        if not outcome.fixpoint:
            return
        base = outcome.graph
        assert satisfies_all(base, base_constraints)

        lifted_graph = attach_prefix(base, rho)
        lifted_constraints = [
            forward(rho, phi.lhs, phi.rhs) for phi in base_constraints
        ]
        assert satisfies_all(lifted_graph, lifted_constraints)

    def test_figure3_blocks_sigma_r_interaction(self):
        """In H, nothing outside {r_H, r_G} is K-reachable from the
        root, so constraints guarded by other labels hold vacuously —
        the exact mechanism that makes Sigma_r inert untyped."""
        from repro.graph import Graph
        from repro.reductions import figure3_structure

        g = Graph(root=0)
        g.add_edge(0, "a", 1)
        h = figure3_structure(g)
        assert h.eval_path("Other") == frozenset()
        assert h.eval_path("K") == frozenset({"rH", ("g", 0)})
        assert h.eval_path("K.K") == frozenset({"rH", ("g", 0)})
