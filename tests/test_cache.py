"""The cross-request implication cache: tiers, replay, hygiene, CLI.

Ground rules under test (see ``repro/reasoning/cache.py``):

* a hit replays the stored verdict — including an alpha-renamed
  counter-model that re-verifies against the *current* instance;
* UNKNOWN and fault-degraded results are never stored; fault
  injection bypasses the cache entirely; ``with_proof`` always solves
  fresh (but still stores);
* the disk tier survives corruption (quarantine + warning, never a
  crash) and concurrent writers (atomic rename);
* version stamps invalidate stale entries;
* the CLI exposes it all (``imply --no-cache/--cache-dir``,
  ``cache stats/clear``) and ``fuzz --cache-check`` proves the cache
  never flips a verdict.
"""

from __future__ import annotations

import json
import threading
import warnings

import pytest

from repro.cli import main
from repro.constraints.ast import forward, word
from repro.diffcheck.oracles import verify_countermodel
from repro.diffcheck.runner import fuzz
from repro.reasoning import (
    ImplicationCache,
    ImplicationProblem,
    solve,
)
from repro.reasoning.cache import (
    ENV_CACHE_DIR,
    CacheInfo,
    make_entry,
    resolve_cache_dir,
    version_tag,
)
from repro.reasoning.canonical import canonicalize_problem, rename_constraint
from repro.reasoning.faultinject import FaultPlan
from repro.truth import Trilean


def _true_problem():
    """P_w chain, decided TRUE by the complete word decider."""
    sigma = [forward((), ("a",), ("b",)), forward((), ("b",), ("c",))]
    return ImplicationProblem(sigma, forward((), ("a",), ("c",)))


def _false_problem():
    """P_w(K) non-implication, refuted by counter-model search."""
    sigma = [forward(("K",), ("a",), ("b",))]
    return ImplicationProblem(sigma, forward(("K",), ("b",), ("a",)))


def _unknown_budgets():
    """Budgets under which ``_hard_true_problem`` returns UNKNOWN."""
    return {"chase_steps": 1, "countermodel_nodes": 1}


def _hard_true_problem():
    sigma = [
        forward(("K",), ("a",), ("b",)),
        forward(("K",), ("b",), ("c",)),
        forward(("K",), ("c",), ("d",)),
    ]
    return ImplicationProblem(sigma, forward(("K",), ("a",), ("d",)))


class TestMemoryTier:
    def test_store_then_hit_replays_verdict(self):
        cache = ImplicationCache()
        first = solve(_true_problem(), cache=cache)
        assert first.cache.status == "store"
        assert first.cache.tier == "memory"
        second = solve(_true_problem(), cache=cache)
        assert second.cache.status == "hit"
        assert second.cache.tier == "memory"
        assert second.answer is first.answer
        assert second.method == first.method
        assert second.complexity == first.complexity
        assert second.cache.key == first.cache.key

    def test_alpha_renamed_hit_with_verified_countermodel(self):
        cache = ImplicationCache()
        base = _false_problem()
        first = solve(base, cache=cache)
        assert first.answer is Trilean.FALSE
        assert first.cache.status == "store"

        mapping = {"K": "guard", "a": "left", "b": "right"}
        renamed = ImplicationProblem(
            [rename_constraint(psi, mapping) for psi in base.sigma],
            rename_constraint(base.phi, mapping),
        )
        hit = solve(renamed, cache=cache)
        assert hit.cache.status == "hit"
        assert hit.answer is Trilean.FALSE
        # The replayed counter-model speaks the *renamed* alphabet and
        # independently re-verifies against the renamed instance.
        assert hit.countermodel is not None
        labels = {label for _, label, _ in hit.countermodel.edges()}
        assert labels <= {"guard", "left", "right"}
        assert verify_countermodel(hit.countermodel, renamed.sigma, renamed.phi)

    def test_unknown_never_cached(self):
        cache = ImplicationCache()
        result = solve(
            _hard_true_problem(), cache=cache, **_unknown_budgets()
        )
        assert result.answer is Trilean.UNKNOWN
        assert result.cache.status == "miss"
        assert "UNKNOWN" in result.cache.detail
        assert cache.stats()["memory"]["entries"] == 0
        # A later well-budgeted definite answer lands in the cache and
        # is replayed even for the budget-starved call: definite
        # answers are budget-independent facts.
        good = solve(_hard_true_problem(), cache=cache)
        assert good.answer is Trilean.TRUE
        assert good.cache.status == "store"
        starved = solve(
            _hard_true_problem(), cache=cache, **_unknown_budgets()
        )
        assert starved.cache.status == "hit"
        assert starved.answer is Trilean.TRUE

    def test_fault_injection_bypasses_cache(self):
        cache = ImplicationCache()
        solve(_true_problem(), cache=cache)  # warm
        injected = solve(
            _true_problem(),
            cache=cache,
            inject=FaultPlan.from_spec("kill:99"),
        )
        assert injected.cache.status == "bypass"
        assert cache.stats()["counters"]["bypasses"] == 1

    def test_with_proof_solves_fresh_but_stores(self):
        cache = ImplicationCache()
        warm = solve(_true_problem(), cache=cache)
        assert warm.proof is None
        proved = solve(_true_problem(), cache=cache, with_proof=True)
        assert proved.cache.status == "store"
        assert proved.proof is not None
        # ...and the cached entry still replays for plain requests.
        assert solve(_true_problem(), cache=cache).cache.status == "hit"

    def test_lru_eviction_by_entries(self):
        cache = ImplicationCache(max_entries=2)
        problems = [
            ImplicationProblem(
                [word(("a",) * (i + 1), ("b",))], word(("a",) * (i + 1), ("b",))
            )
            for i in range(3)
        ]
        keys = [canonicalize_problem(p).key for p in problems]
        assert len(set(keys)) == 3
        for p in problems:
            solve(p, cache=cache)
        stats = cache.stats()["memory"]
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        assert cache.memory.get(keys[0]) is None  # oldest evicted
        assert cache.memory.get(keys[2]) is not None

    def test_eviction_by_bytes(self):
        cache = ImplicationCache(max_bytes=400)
        solve(_true_problem(), cache=cache)
        solve(_false_problem(), cache=cache)
        assert cache.stats()["memory"]["bytes"] <= 400

    def test_strict_mode_raises_even_when_cached(self):
        from repro.errors import UndecidableProblemError

        cache = ImplicationCache()
        solve(_false_problem(), cache=cache)
        with pytest.raises(UndecidableProblemError):
            solve(_false_problem(), cache=cache, allow_semidecision=False)

    def test_thread_safety_smoke(self):
        cache = ImplicationCache()
        errors = []

        def worker():
            try:
                for _ in range(5):
                    r = solve(_true_problem(), cache=cache)
                    assert r.answer is Trilean.TRUE
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        counters = cache.stats()["counters"]
        assert counters["hits_memory"] + counters["stores"] == 20


class TestDiskTier:
    def test_persists_across_cache_instances(self, tmp_path):
        first = solve(
            _true_problem(), cache=ImplicationCache(cache_dir=tmp_path)
        )
        assert first.cache.status == "store"
        assert first.cache.tier == "disk"
        fresh = ImplicationCache(cache_dir=tmp_path)
        hit = solve(_true_problem(), cache=fresh)
        assert hit.cache.status == "hit"
        assert hit.cache.tier == "disk"
        # The disk hit was promoted into memory.
        again = solve(_true_problem(), cache=fresh)
        assert again.cache.tier == "memory"

    def test_countermodel_round_trips_through_disk(self, tmp_path):
        solve(_false_problem(), cache=ImplicationCache(cache_dir=tmp_path))
        hit = solve(
            _false_problem(), cache=ImplicationCache(cache_dir=tmp_path)
        )
        assert hit.answer is Trilean.FALSE
        assert hit.countermodel is not None
        base = _false_problem()
        assert verify_countermodel(hit.countermodel, base.sigma, base.phi)

    def test_corrupt_entry_quarantined_not_fatal(self, tmp_path):
        solve(_true_problem(), cache=ImplicationCache(cache_dir=tmp_path))
        (entry_file,) = [
            p
            for p in tmp_path.rglob("*.json")
            if p.name != "counters.json"
        ]
        entry_file.write_text('{"answer": "true", "trunc')
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = solve(
                _true_problem(), cache=ImplicationCache(cache_dir=tmp_path)
            )
        assert result.answer is Trilean.TRUE
        assert result.cache.status == "store"  # miss, re-solved, re-stored
        assert any("corrupt entry" in str(w.message) for w in caught)
        assert list(tmp_path.rglob("*.corrupt"))

    def test_stale_version_stamp_is_quarantined(self, tmp_path):
        solve(_true_problem(), cache=ImplicationCache(cache_dir=tmp_path))
        (entry_file,) = [
            p
            for p in tmp_path.rglob("*.json")
            if p.name != "counters.json"
        ]
        stale = json.loads(entry_file.read_text())
        stale["code_version"] = "0-ancient"
        entry_file.write_text(json.dumps(stale))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = solve(
                _true_problem(), cache=ImplicationCache(cache_dir=tmp_path)
            )
        assert result.cache.status == "store"
        assert any("code version" in str(w.message) for w in caught)

    def test_version_bump_orphans_old_entries(self, tmp_path, monkeypatch):
        solve(_true_problem(), cache=ImplicationCache(cache_dir=tmp_path))
        monkeypatch.setattr("repro.reasoning.cache.CODE_VERSION", "999")
        assert version_tag() == "v1-999"
        result = solve(
            _true_problem(), cache=ImplicationCache(cache_dir=tmp_path)
        )
        assert result.cache.status == "store"  # old dir never consulted
        assert (tmp_path / "v1-999").is_dir()

    def test_concurrent_writers_last_writer_wins(self, tmp_path):
        key = canonicalize_problem(_true_problem()).key
        entry_a = make_entry("true", "writer-a", True, "PTIME", "none", None)
        entry_b = make_entry("true", "writer-b", True, "PTIME", "none", None)
        a = ImplicationCache(cache_dir=tmp_path)
        b = ImplicationCache(cache_dir=tmp_path)
        a.store(key, entry_a)
        b.store(key, entry_b)
        fresh = ImplicationCache(cache_dir=tmp_path)
        entry, tier = fresh.lookup(key)
        assert tier == "disk"
        assert entry["method"] == "writer-b"

    def test_clear_removes_entries_and_counters(self, tmp_path):
        cache = ImplicationCache(cache_dir=tmp_path)
        solve(_true_problem(), cache=cache)
        cache.flush_counters()
        assert cache.clear() == 1
        assert not list(tmp_path.rglob("*.json"))
        fresh = ImplicationCache(cache_dir=tmp_path)
        assert fresh.stats()["disk"]["entries"] == 0

    def test_flush_counters_accumulates(self, tmp_path):
        cache = ImplicationCache(cache_dir=tmp_path)
        solve(_true_problem(), cache=cache)
        solve(_true_problem(), cache=cache)
        cache.flush_counters()
        other = ImplicationCache(cache_dir=tmp_path)
        solve(_true_problem(), cache=other)
        other.flush_counters()
        lifetime = ImplicationCache(cache_dir=tmp_path).stats()["disk"][
            "lifetime_counters"
        ]
        assert lifetime == {"hits": 2, "misses": 1, "stores": 1}

    def test_concurrent_counter_folds_are_exact(self, tmp_path):
        # The server folds counters from many connections; the flock
        # around the read-modify-write makes concurrent increments
        # exact, not last-writer-wins (each thread uses its own
        # _DiskTier, modelling separate connections/processes).
        import threading

        from repro.reasoning.cache import _DiskTier

        n_threads, per_thread = 8, 10
        barrier = threading.Barrier(n_threads)

        def fold():
            tier = _DiskTier(tmp_path)
            barrier.wait()
            for _ in range(per_thread):
                tier.add_counters(1, 2, 3)

        threads = [
            threading.Thread(target=fold) for _ in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        counters = _DiskTier(tmp_path).read_counters()
        assert counters == {
            "hits": total,
            "misses": 2 * total,
            "stores": 3 * total,
        }

    def test_torn_counters_file_resets_with_warning(self, tmp_path):
        from repro.reasoning.cache import _DiskTier

        tier = _DiskTier(tmp_path)
        tier.add_counters(5, 5, 5)
        # Simulate a torn write from a pre-lock version / disk-full.
        tier._counters_path.write_text('{"hits": 5, "mis')
        with pytest.warns(RuntimeWarning, match="torn/corrupt counters"):
            counters = tier.read_counters()
        assert counters == {"hits": 0, "misses": 0, "stores": 0}
        # A subsequent fold starts over cleanly instead of crashing.
        with pytest.warns(RuntimeWarning, match="torn/corrupt counters"):
            tier.add_counters(1, 0, 0)
        assert tier.read_counters()["hits"] == 1

    def test_wrong_shape_counters_resets_with_warning(self, tmp_path):
        from repro.reasoning.cache import _DiskTier

        tier = _DiskTier(tmp_path)
        tier.directory.mkdir(parents=True, exist_ok=True)
        tier._counters_path.write_text('["not", "an", "object"]')
        with pytest.warns(RuntimeWarning, match="torn/corrupt counters"):
            assert tier.read_counters() == {
                "hits": 0,
                "misses": 0,
                "stores": 0,
            }

    def test_missing_counters_file_is_silent(self, tmp_path):
        import warnings as warnings_module

        from repro.reasoning.cache import _DiskTier

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            counters = _DiskTier(tmp_path).read_counters()
        assert counters == {"hits": 0, "misses": 0, "stores": 0}


class TestEntryValidation:
    def test_make_entry_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_entry("unknown", "m", True, None, "none", None)

    def test_make_entry_rejects_bad_certificate(self):
        with pytest.raises(ValueError):
            make_entry("true", "m", True, None, "oracle", None)

    def test_cacheinfo_describe(self):
        info = CacheInfo("hit", key="ab" * 20, tier="disk")
        text = info.describe()
        assert text.startswith("hit (disk) key=")
        assert len(text) < 40


class TestResolveCacheDir:
    def test_precedence(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "env"))
        assert resolve_cache_dir(tmp_path / "explicit") == (
            tmp_path / "explicit"
        )
        assert resolve_cache_dir() == tmp_path / "env"
        monkeypatch.delenv(ENV_CACHE_DIR)
        assert resolve_cache_dir().name == "repro"


class TestCacheCheckFuzz:
    def test_sweep_reports_hits_and_zero_flips(self):
        report = fuzz(seed=3, per_fragment=3, cache_check=True)
        assert report.ok
        assert report.cache_check
        assert report.cache_flips == 0
        assert report.cache_checks == sum(
            s.instances for s in report.fragments.values()
        )
        assert report.cache_lookups == 2 * report.cache_checks
        assert report.cache_hits > 0  # replay pass guarantees hits
        data = report.to_dict()
        assert data["cache_flips"] == 0
        assert "cache check" in report.summary()

    def test_disabled_by_default(self):
        report = fuzz(seed=3, per_fragment=1, fragments=["P_w"])
        assert not report.cache_check
        assert report.cache_checks == 0


class TestCli:
    @pytest.fixture
    def sigma_file(self, tmp_path):
        path = tmp_path / "sigma.txt"
        path.write_text("a => b\nb => c\n")
        return str(path)

    def test_imply_second_run_hits_disk(self, sigma_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cli-cache")
        argv = ["imply", sigma_file, "a => c", "--cache-dir", cache_dir]
        assert main(argv) == 0
        assert "cache:      store (disk)" in capsys.readouterr().out
        assert main(argv) == 0
        assert "cache:      hit (disk)" in capsys.readouterr().out

    def test_imply_env_var_cache_dir(
        self, sigma_file, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "env-cache"))
        assert main(["imply", sigma_file, "a => c"]) == 0
        capsys.readouterr()
        assert main(["imply", sigma_file, "a => c"]) == 0
        assert "cache:      hit" in capsys.readouterr().out
        assert (tmp_path / "env-cache").is_dir()

    def test_imply_no_cache(self, sigma_file, capsys):
        assert main(["imply", sigma_file, "a => c", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "cache:" not in out

    def test_cache_stats_and_clear(self, sigma_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cli-cache")
        main(["imply", sigma_file, "a => c", "--cache-dir", cache_dir])
        main(["imply", sigma_file, "a => c", "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries:    1" in out
        assert "hits:       1" in out
        assert "stores:     1" in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared 1 entry" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries:    0" in capsys.readouterr().out

    def test_fuzz_cache_check_flag(self, capsys):
        rc = main(
            [
                "fuzz",
                "--seed",
                "1",
                "--per-fragment",
                "2",
                "--fragment",
                "P_w",
                "--cache-check",
                "--no-shrink",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "cache check:" in out
        assert "flips=0" in out
