"""Tests for RPQ containment under constraints and the RPQ-union
optimizer built on it."""

from __future__ import annotations

import pytest

from repro.constraints import parse_constraints
from repro.graph import figure1_graph
from repro.paths import Path
from repro.query import (
    QueryContainmentChecker,
    evaluate_rpq,
    evaluate_rpq_union,
    optimize_rpq_union,
)
from repro.reasoning.cache import ImplicationCache
from repro.truth import Trilean
from repro.types.examples import feature_structure_schema


def word_sigma():
    return parse_constraints(
        """
        book.author => person
        person.wrote => book
        book.ref => book
        """
    )


class TestExactWordCell:
    """EGD-free P_w: [AV97] completeness — both verdicts definite."""

    def test_true_with_proof_note(self):
        checker = QueryContainmentChecker(word_sigma())
        result = checker.contains("book.author", "person")
        assert result.verdict is Trilean.TRUE
        assert result.decidable
        assert result.method == "word-prestar-product"

    def test_false_with_witness(self):
        checker = QueryContainmentChecker(word_sigma())
        result = checker.contains("person", "book.author")
        assert result.verdict is Trilean.FALSE
        assert result.witness == Path.parse("person")

    def test_union_left_side(self):
        checker = QueryContainmentChecker(word_sigma())
        assert checker.contains(
            "book.author.wrote | person.wrote", "book"
        ).holds

    def test_star_containment_under_ref_collapse(self):
        # book.ref => book collapses ref-chains, so the starred form
        # is contained in the two-step unrolling.
        sigma = parse_constraints("book.ref => book")
        checker = QueryContainmentChecker(sigma)
        result = checker.contains(
            "book.(ref)*.author", "book.author | book.ref.author"
        )
        assert result.verdict is Trilean.TRUE

    def test_star_not_contained_without_constraint(self):
        checker = QueryContainmentChecker(())
        result = checker.contains(
            "book.(ref)*.author", "book.author | book.ref.author"
        )
        assert result.verdict is Trilean.FALSE
        # Shortest counterexample: two refs deep.
        assert result.witness == Path.parse("book.ref.ref.author")

    def test_equivalence_is_kleene_and(self):
        sigma = parse_constraints("a => b\nb => a")
        checker = QueryContainmentChecker(sigma)
        assert checker.equivalence("a", "b") is Trilean.TRUE
        assert checker.equivalence("a", "a.b") is Trilean.FALSE

    def test_verdicts_match_bruteforce_on_figure1(self):
        """Definite verdicts agree with answer-set inclusion on a
        graph satisfying Sigma (figure 1 satisfies the inverse pair)."""
        sigma = parse_constraints(
            "book.author => person\nperson.wrote => book"
        )
        checker = QueryContainmentChecker(sigma)
        g = figure1_graph()
        for left, right in [
            ("book.author", "person"),
            ("person", "book.author"),
            ("book.author.wrote", "book"),
            ("book", "person"),
        ]:
            result = checker.contains(left, right)
            assert result.verdict.is_definite
            la = evaluate_rpq(g, left).answers
            ra = evaluate_rpq(g, right).answers
            if result.verdict is Trilean.TRUE:
                assert la <= ra

    def test_cache_hits_counted(self, tmp_path):
        cache = ImplicationCache(cache_dir=str(tmp_path))
        sigma = parse_constraints("a => a.a\nb.b => ()")
        for expected_more in (False, True):
            checker = QueryContainmentChecker(
                sigma, cache=cache, deadline=0.5
            )
            checker.contains("a.b", "c")
            if expected_more:
                assert checker.stats["solve_calls"] > 0


class TestFallbackCell:
    """EGDs / guarded constraints: sound three-valued, never crashing."""

    def test_egd_sigma_never_crashes(self):
        sigma = parse_constraints("a.b => ()\nc => d")
        checker = QueryContainmentChecker(sigma)
        result = checker.contains("a.b.c", "e")
        assert result.verdict in (Trilean.FALSE, Trilean.UNKNOWN)
        assert not result.decidable

    def test_egd_rule_is_sound(self):
        # u => () gives the sound rule u.z => z: anything reached
        # through u is reached from the root again.
        sigma = parse_constraints("a.b => ()")
        checker = QueryContainmentChecker(sigma)
        result = checker.contains("a.b.c", "c")
        assert result.verdict is Trilean.TRUE
        assert result.method == "sound-word-saturation"

    def test_guarded_forward_word_image_is_sound(self):
        from repro.constraints import forward

        sigma = (forward("a", "b", "c"),)
        checker = QueryContainmentChecker(sigma)
        assert checker.contains("a.b", "a.c").verdict is Trilean.TRUE

    def test_backward_constraint_lands_in_residue_note(self):
        from repro.constraints import backward

        sigma = (backward("a", "b", "c"),)
        checker = QueryContainmentChecker(sigma)
        result = checker.contains("a.b", "a.c")
        assert result.verdict is not Trilean.TRUE
        assert any("backward" in note for note in result.notes)

    def test_chase_witness_gives_definite_false(self):
        sigma = parse_constraints("a.b => ()\nc => d")
        checker = QueryContainmentChecker(sigma)
        result = checker.contains("a", "b")
        assert result.verdict is Trilean.FALSE
        assert result.method == "chase-witness"
        assert result.witness == Path.parse("a")

    def test_never_lies_definite(self):
        """Every definite fallback verdict survives a brute check on
        the chased witness/sampled graphs (spot check)."""
        sigma = parse_constraints("a.b => ()")
        checker = QueryContainmentChecker(sigma)
        # TRUE direction is the sound saturation; FALSE carries its
        # own verified countermodel.  UNKNOWN asserts nothing.
        assert checker.contains("a.b.c", "c").holds
        refuted = checker.contains("c", "a")
        if refuted.verdict is Trilean.FALSE:
            assert refuted.witness is not None


class TestTypedM:
    def test_symmetric_word_image_true(self):
        schema = feature_structure_schema()
        sigma = parse_constraints("sentence => subject")
        checker = QueryContainmentChecker(
            sigma, context="M", schema=schema
        )
        result = checker.contains("sentence.head", "subject.head")
        assert result.verdict is Trilean.TRUE
        assert result.decidable
        # Over M the image system is symmetric: the reverse holds too.
        assert checker.contains("subject.head", "sentence.head").holds

    def test_false_with_witness(self):
        schema = feature_structure_schema()
        checker = QueryContainmentChecker((), context="M", schema=schema)
        result = checker.contains("sentence", "subject")
        assert result.verdict is Trilean.FALSE
        assert result.witness == Path.parse("sentence")

    def test_vacuous_when_premise_sorts_differ(self):
        schema = feature_structure_schema()
        sigma = parse_constraints("sentence => sentence.agreement")
        checker = QueryContainmentChecker(
            sigma, context="M", schema=schema
        )
        result = checker.contains("sentence", "subject")
        assert result.verdict is Trilean.TRUE
        assert any("vacuous" in note for note in result.notes)

    def test_patterns_restricted_to_paths_delta(self):
        schema = feature_structure_schema()
        checker = QueryContainmentChecker((), context="M", schema=schema)
        # 'bogus' is not in Paths(Delta): its language over the schema
        # is empty, so it is contained in everything.
        assert checker.contains("bogus", "sentence").holds
        assert checker.provably_empty("bogus")
        assert not checker.provably_empty("sentence.(head)*")

    def test_typed_context_requires_schema(self):
        with pytest.raises(ValueError):
            QueryContainmentChecker((), context="M")


class TestRPQUnionOptimizer:
    def test_prunes_subsumed_and_empty(self):
        schema = feature_structure_schema()
        checker = QueryContainmentChecker((), context="M", schema=schema)
        report = optimize_rpq_union(
            ["sentence.(head)*", "sentence", "bogus"], checker
        )
        assert report.optimized == ("sentence.(head)*",)
        assert report.emptied == ("bogus",)
        assert ("sentence", "sentence.(head)*") in report.pruned

    def test_duplicates_recorded(self):
        checker = QueryContainmentChecker(())
        report = optimize_rpq_union(["a", "a", "b"], checker)
        assert ("a", "a") in report.pruned
        assert report.branches_saved == 1

    def test_unknowns_keep_branches(self):
        sigma = parse_constraints("a.b => ()\nc => d")
        checker = QueryContainmentChecker(sigma)
        report = optimize_rpq_union(["a.(b)*", "c.(d)*"], checker)
        assert set(report.optimized) == {"a.(b)*", "c.(d)*"}

    def test_evaluate_rpq_union_answers_preserved(self):
        sigma = parse_constraints("book.ref => book")
        from repro.reasoning.chase import chase

        g = chase(figure1_graph(), list(sigma), max_steps=10_000).graph
        checker = QueryContainmentChecker(sigma)
        branches = [
            "book.(ref)*.author",
            "book.author",
            "book.ref.author",
        ]
        optimized, _, report = evaluate_rpq_union(g, branches, checker)
        plain, _, _ = evaluate_rpq_union(g, branches, None)
        assert optimized == plain
        assert report is not None and report.branches_saved >= 1
