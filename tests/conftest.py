"""Shared fixtures: the paper's running examples as reusable objects."""

from __future__ import annotations

import pytest

from repro.constraints import parse_constraints
from repro.graph.builders import figure1_graph, penn_bib_with_locals
from repro.monoids.presentation import MonoidPresentation
from repro.types.examples import (
    delta1_schema,
    example_3_1_schema,
    feature_structure_schema,
)


@pytest.fixture(autouse=True)
def _hermetic_cache_dir(tmp_path, monkeypatch):
    """Point the implication cache's env-resolved directory at a
    per-test tmp dir so CLI invocations never read or pollute the
    user's real ``~/.cache/repro`` (library ``solve()`` only caches
    when handed an explicit ``ImplicationCache``, so this only affects
    code going through ``resolve_cache_dir``)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def fig1():
    """The Figure 1 bibliography graph."""
    return figure1_graph()


@pytest.fixture
def penn_bib():
    """Figure 1 plus the MIT/Warner local databases of Section 1."""
    return penn_bib_with_locals()


@pytest.fixture
def section1_constraints():
    """Every constraint displayed in Section 1, in order: the inverse
    pair, the three extent word constraints, and the MIT local inverse
    pair."""
    return parse_constraints(
        """
        book :: author ~> wrote
        person :: wrote ~> author
        book.author => person
        person.wrote => book
        book.ref => book
        MIT.book :: author ~> wrote
        MIT.person :: wrote ~> author
        """
    )


@pytest.fixture
def bib_schema():
    """The Example 3.1 M+ schema."""
    return example_3_1_schema()


@pytest.fixture
def fs_schema():
    """A small M schema (feature structures)."""
    return feature_structure_schema()


@pytest.fixture
def gadget_schema():
    """Delta_1 over the two-letter alphabet {u, v}."""
    return delta1_schema(["u", "v"])


@pytest.fixture
def commutative_uv():
    """The free commutative monoid on {u, v} (letters chosen to avoid
    the Delta_1 gadget labels)."""
    return MonoidPresentation("uv", [("u.v", "v.u")])
