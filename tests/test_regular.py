"""Tests for regular path constraints (the [AV97] comparison language)."""

from __future__ import annotations

import pytest

from repro.constraints import RegularConstraint, check_regular
from repro.graph import Graph


class TestChecking:
    def test_figure1_regular_constraints(self, fig1):
        # Authors reachable through any ref-chain are persons.
        assert check_regular(fig1, "book.(ref)*.author => person").holds
        # Everything one or more ref hops away is still a book.
        assert check_regular(fig1, "book.ref+ => book").holds
        # Not every person co-authored with person1... construct a
        # violated one:
        result = check_regular(fig1, "book.(author|title) => person")
        assert not result.holds
        assert result.violating_nodes  # the title leaves

    def test_witnesses_are_exact(self, fig1):
        result = check_regular(fig1, "book.(author|title) => person")
        assert result.violating_nodes == fig1.eval_path("book.title")

    def test_word_case_agrees_with_pc_semantics(self, fig1):
        from repro.checking import check
        from repro.constraints import word

        for lhs, rhs in [("book.author", "person"), ("book.ref", "person")]:
            regular = RegularConstraint(lhs, rhs).check(fig1).holds
            pc = check(fig1, word(lhs, rhs)).holds
            assert regular == pc

    def test_parse(self):
        c = RegularConstraint.parse(" a.(b|c)* =>  d ")
        assert c.lhs == "a.(b|c)*"
        assert c.rhs == "d"
        with pytest.raises(ValueError):
            RegularConstraint.parse("a.b.c")

    def test_str(self):
        assert str(RegularConstraint("a*", "b")) == "a* => b"


class TestLanguageContainment:
    def test_containment_implies_validity_everywhere(self, fig1):
        c = RegularConstraint("book.ref.ref", "book.(ref)*")
        assert c.language_containment({"book", "ref"})
        assert c.check(fig1).holds  # trivially

    def test_containment_is_strictly_stronger(self, fig1):
        # Valid on Figure 1 but not a language containment.
        c = RegularConstraint("book.author", "person")
        assert not c.language_containment({"book", "author", "person"})
        assert c.check(fig1).holds

    def test_non_containment(self):
        c = RegularConstraint("a*", "a.a*")
        assert not c.language_containment({"a"})  # epsilon missing
        c2 = RegularConstraint("a.a*", "a*")
        assert c2.language_containment({"a"})


class TestOnCycles:
    def test_star_on_cyclic_graph(self):
        g = Graph(root="r")
        g.add_edge("r", "a", "x")
        g.add_edge("x", "a", "r")
        result = check_regular(g, "a.a.a.a => a*")
        assert result.holds
        assert check_regular(g, "(a.a)* => ()").holds  # even loops hit r
        assert not check_regular(g, "a* => ()").holds
