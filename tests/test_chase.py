"""Tests for the P_c chase and chase-based semi-decision."""

from __future__ import annotations

from repro.checking import check
from repro.checking.engine import satisfies_all
from repro.constraints import backward, forward, parse_constraint, parse_constraints, word
from repro.graph import Graph
from repro.reasoning import chase, chase_implication
from repro.reasoning.chase import tableau_for
from repro.truth import Trilean


class TestTableau:
    def test_forward_shape(self):
        phi = parse_constraint("p.q :: a.b => c")
        graph, x, y = tableau_for(phi)
        assert graph.eval_path("p.q") == frozenset({x})
        assert graph.eval_path("a.b", start=x) == frozenset({y})

    def test_word_constraint_tableau(self):
        phi = parse_constraint("a => b")
        graph, x, y = tableau_for(phi)
        assert x == graph.root
        assert graph.eval_path("a") == frozenset({y})

    def test_empty_hypothesis(self):
        phi = parse_constraint("p :: () => q")
        graph, x, y = tableau_for(phi)
        assert x == y


class TestChaseRepair:
    def test_repairs_word_constraint(self, fig1):
        sigma = parse_constraints("book.title => official")
        outcome = chase(fig1, sigma, max_steps=100)
        assert outcome.fixpoint
        assert satisfies_all(outcome.graph, sigma)
        # Original graph untouched.
        assert not satisfies_all(fig1, sigma)

    def test_repairs_inverse_constraints(self):
        g = Graph(root="r")
        g.add_edge("r", "book", "b")
        g.add_edge("b", "author", "p")
        sigma = [backward("book", "author", "wrote")]
        outcome = chase(g, sigma, max_steps=10)
        assert outcome.fixpoint
        assert outcome.graph.has_edge("p", "wrote", "b")

    def test_merge_on_empty_conclusion(self):
        g = Graph(root="r")
        g.add_edge("r", "p", "x")
        g.add_edge("x", "a", "y")
        sigma = [forward("p", "a", "")]  # a-successors collapse into x
        outcome = chase(g, sigma, max_steps=10)
        assert outcome.fixpoint
        assert outcome.merges == 1
        assert outcome.resolve("y") == outcome.resolve("x")
        assert check(outcome.graph, sigma[0]).holds

    def test_divergent_chase_hits_budget(self):
        # x => x.a forces an infinite a-chain.
        sigma = [word("a", "a.a")]
        g = Graph(root="r")
        g.add_edge("r", "a", "n")
        outcome = chase(g, sigma, max_steps=25)
        assert not outcome.fixpoint
        assert outcome.steps == 25

    def test_chase_counts_steps(self, fig1):
        outcome = chase(fig1, parse_constraints("book.title => t2"), max_steps=50)
        assert outcome.steps == 3  # one repair per title leaf


class TestChaseImplication:
    def test_positive_word(self):
        sigma = parse_constraints("a => b\nb.c => d")
        result = chase_implication(sigma, parse_constraint("a.c => d"))
        assert result.answer is Trilean.TRUE

    def test_positive_with_inverse(self):
        sigma = parse_constraints("book :: author ~> wrote")
        # If y is an author of book x, then x is reachable from y:
        # author.wrote from x comes back to x... phrased as forward:
        phi = parse_constraint("book :: author.wrote => ()")
        # Chase: tableau book-x, author-y; sigma adds wrote(y, x); now
        # author.wrote from x reaches x: conclusion epsilon... but also
        # other wrote edges may exist; here implication DOES NOT hold in
        # general (y could write several books).  The chase must say
        # FALSE with a counter-model or UNKNOWN, never TRUE.
        result = chase_implication(sigma, phi)
        assert result.answer is not Trilean.TRUE

    def test_negative_with_countermodel(self):
        sigma = parse_constraints("a => b")
        result = chase_implication(sigma, parse_constraint("b => a"))
        assert result.answer is Trilean.FALSE
        assert result.countermodel is not None
        assert satisfies_all(result.countermodel, sigma)
        assert not check(
            result.countermodel, parse_constraint("b => a")
        ).holds

    def test_unknown_on_divergence(self):
        sigma = parse_constraints("a => a.a\na.a => b")
        # The chase on the tableau of any query about `a` diverges.
        result = chase_implication(
            sigma, parse_constraint("a => c"), max_steps=30
        )
        assert result.answer is Trilean.UNKNOWN

    def test_egd_merging_proves_equality_consequence(self):
        # p :: a => () and p :: b => () force a- and b-successors to
        # coincide with x, hence with each other.
        sigma = parse_constraints("p :: a => ()\np :: b => ()")
        result = chase_implication(sigma, parse_constraint("p :: a => b"))
        # After merging, b(x, y) holds iff b(x, x): needs b-edge; the
        # tableau has an a-path only, so the hypothesis b never fires...
        # test the sharper query with both paths present:
        result = chase_implication(sigma, parse_constraint("p :: () => ()"))
        assert result.answer is Trilean.TRUE

    def test_backward_query_positive(self):
        sigma = parse_constraints("book :: author ~> wrote")
        result = chase_implication(
            sigma, parse_constraint("book :: author ~> wrote")
        )
        assert result.answer is Trilean.TRUE

    def test_certificate_carries_outcome(self):
        sigma = parse_constraints("a => b")
        result = chase_implication(sigma, parse_constraint("a.c => b.c"))
        assert result.certificate is not None
        assert result.certificate.graph is not None


class TestNodeIdentityRegression:
    """Regression for the copy/fresh-counter resurrection bug: a chase
    that merges away an integer node and then allocates fresh nodes
    must not rebirth the merged id, or ``ChaseOutcome.resolve`` would
    silently redirect a live node."""

    @staticmethod
    def _merge_then_allocate_outcome():
        g = Graph(root="r")
        n_a = g.fresh_node()  # 0 — will be merged into the root
        n_b = g.fresh_node()  # 1 — target of the generated path
        g.add_edge("r", "a", n_a)
        g.add_edge("r", "b", n_b)
        sigma = [
            forward("", "a", ""),     # EGD: every a-successor equals r
            forward("", "b", "c.d"),  # TGD: allocates a fresh midpoint
        ]
        return chase(g, sigma, max_steps=100), n_a

    def test_merged_ids_stay_dead(self):
        outcome, n_a = self._merge_then_allocate_outcome()
        assert outcome.fixpoint
        assert outcome.merges >= 1
        assert n_a in outcome.node_map
        # The heart of the bug: a node id recorded as merged away must
        # not reappear in the chased graph as a fresh allocation.
        reborn = set(outcome.node_map) & set(outcome.graph.nodes)
        assert not reborn, f"merged ids resurrected: {reborn}"

    def test_resolve_targets_are_live(self):
        outcome, n_a = self._merge_then_allocate_outcome()
        assert outcome.resolve(n_a) == "r"
        for node in outcome.node_map:
            assert outcome.graph.has_node(outcome.resolve(node))
