"""Fault-tolerance stress tests: real pools, real worker deaths.

The acceptance properties of the supervised runtime, exercised
end-to-end:

* a worker calling ``os._exit(1)`` mid-shard never surfaces as a bare
  ``BrokenProcessPool`` — the pool respawns and the race still returns
  the correct verdict;
* a payload that raises in ``__reduce__`` (unpicklable) is degraded to
  an in-process run and still produces a value;
* ``KeyboardInterrupt`` during a race tears the pool down without
  orphaning worker processes;
* injected faults can demote definite answers to UNKNOWN but never
  flip them, and every degraded solve carries a populated ``faults``
  record.

All tests are ``stress``-marked (``scripts/bench.sh`` selects the
marker explicitly); they are kept fast enough to also run in tier-1.
"""

import multiprocessing
import time

import pytest

from repro.constraints import parse_constraint, parse_constraints
from repro.errors import ReproError
from repro.reasoning import Context, ImplicationProblem
from repro.reasoning.faultinject import FaultPlan
from repro.reasoning.portfolio import (
    Budget,
    parallel_countermodel_search,
    run_portfolio,
)
from repro.reasoning.runtime import WorkerSupervisor, retire_warm_pool
from repro.truth import Trilean

pytestmark = pytest.mark.stress

# The chase diverges on this instance (fresh nodes forever), but a
# 3-node counter-model exists, so the portfolio's answer is FALSE and
# must survive any injected infrastructure failure.
DIVERGENT_SIGMA = (
    "() => K\n"
    "K :: () => a.a.a\n"
    "K :: a.a.a => ()\n"
    "a :: a => a"
)
DIVERGENT_PHI = "K :: a => ()"


def _divergent_problem():
    return ImplicationProblem(
        parse_constraints(DIVERGENT_SIGMA),
        parse_constraint(DIVERGENT_PHI),
        Context.SEMISTRUCTURED,
    )


def _assert_no_orphans(deadline=10.0):
    """Every pool worker must be reaped shortly after teardown.

    Warm-pool workers legitimately outlive a solve now, so retire the
    pool first — what must never survive is a worker the supervisor
    lost track of.
    """
    retire_warm_pool()
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        children = [
            p for p in multiprocessing.active_children()
            if "Process" in type(p).__name__
        ]
        if not children:
            return
        time.sleep(0.05)
    raise AssertionError(f"orphan worker processes: {children}")


def _typename(payload):
    return type(payload).__name__


def _sleep_forever():
    time.sleep(3600)


class _RaisesInReduce:
    """Unpicklable on purpose — a genuine payload bug, not an injected
    one, so the supervisor must handle it without the injection layer."""

    def __reduce__(self):
        raise ValueError("cannot cross the process boundary")


class TestWorkerDeath:
    def test_os_exit_mid_shard_keeps_the_verdict(self):
        # kill:1 murders the first counter-model shard's worker; the
        # supervisor respawns the pool, resubmits the shard from its
        # (start, stop) range, and the race still settles FALSE.
        # execution="pool" bypasses the cost model (which would route
        # this small instance inline) so injection hits real workers.
        result = run_portfolio(
            _divergent_problem(),
            jobs=2,
            fault_plan=FaultPlan.from_spec("kill:1"),
            execution="pool",
        )
        assert result.answer is Trilean.FALSE
        assert not result.faults.clean
        kinds = {e.kind for e in result.faults.events}
        assert "injected" in kinds
        _assert_no_orphans()

    def test_killed_worker_mid_race_within_deadline(self):
        # Acceptance: a killed worker mid-race still returns the
        # correct verdict under the original deadline semantics.
        began = time.monotonic()
        result = run_portfolio(
            _divergent_problem(),
            jobs=2,
            budget=Budget.from_seconds(60.0),
            fault_plan=FaultPlan.from_spec("kill:0,kill:1"),
            execution="pool",
        )
        assert result.answer is Trilean.FALSE
        assert time.monotonic() - began < 60.0
        assert result.faults.answered_by in {"chase", "countermodel"}
        _assert_no_orphans()

    def test_shard_restart_preserves_determinism(self):
        sigma = parse_constraints(DIVERGENT_SIGMA)
        phi = parse_constraint(DIVERGENT_PHI)
        clean = parallel_countermodel_search(sigma, phi, max_nodes=3, jobs=1)
        shaken = parallel_countermodel_search(
            sigma,
            phi,
            max_nodes=3,
            jobs=2,
            fault_plan=FaultPlan.from_spec("kill:0"),
            execution="pool",
        )
        assert clean.graph is not None and shaken.graph is not None
        assert clean.graph.node_count() == shaken.graph.node_count()
        _assert_no_orphans()

    def test_respawns_exhausted_degrades_and_reports(self):
        # With max_respawns=0 the first crash forces in-process
        # degradation; the value survives and the fault report says
        # how it was obtained.  (Driven through the supervisor
        # directly so the crash cannot be raced away by a fast
        # winning engine.)
        plan = FaultPlan.from_spec("kill:0")
        with WorkerSupervisor(jobs=2, plan=plan, max_respawns=0) as sup:
            task = sup.submit(_typename, 7, engine="victim")
            sup.wait_any([task])
        assert task.result() == "int"
        kinds = {e.kind for e in sup.events}
        assert "worker-crash" in kinds and "pool-degraded" in kinds
        assert "task-degraded" in kinds
        assert sup.fault_report().degradations >= 1
        _assert_no_orphans()


class TestUnpicklablePayload:
    def test_reduce_raising_payload_degrades_in_process(self):
        with WorkerSupervisor(jobs=2) as sup:
            task = sup.submit(_typename, _RaisesInReduce(), engine="demo")
            sup.wait_any([task])
        assert task.settled and not task.failed
        assert task.result() == "_RaisesInReduce"
        report = sup.fault_report()
        assert report.degradations >= 1
        assert "task-degraded" in {e.kind for e in report.events}
        _assert_no_orphans()

    def test_injected_corrupt_payload_recovers(self):
        result = run_portfolio(
            _divergent_problem(),
            jobs=2,
            fault_plan=FaultPlan.from_spec("corrupt:0,corrupt:1"),
            execution="pool",
        )
        assert result.answer is Trilean.FALSE
        assert not result.faults.clean
        _assert_no_orphans()


class TestInterruptAndTeardown:
    def test_keyboard_interrupt_reaps_all_workers(self):
        # Satellite (c): the pool is torn down on *every* exception
        # path; after a KeyboardInterrupt mid-race no child processes
        # survive.
        with pytest.raises(KeyboardInterrupt):
            with WorkerSupervisor(jobs=2) as sup:
                sup.submit(_sleep_forever, engine="straggler")
                raise KeyboardInterrupt
        _assert_no_orphans()

    def test_fuzz_absorbs_keyboard_interrupt_into_aborted_report(self):
        from repro.diffcheck import fuzz

        calls = {"n": 0}

        def interrupting_engine(inst, cfg):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise KeyboardInterrupt
            return None

        sink = {}
        report = fuzz(
            seed=0,
            per_fragment=2,
            fragments=["P_w"],
            shrink=False,
            extra={"interrupter": interrupting_engine},
            report_sink=sink,
        )
        assert report.aborted
        assert sink["report"] is report
        # Partial tallies up to the interrupt survive.
        assert report.fragments["P_w"].instances >= 1


class TestInjectionSoundness:
    def test_injected_faults_never_flip_the_fuzzer(self):
        from repro.diffcheck import fuzz
        from repro.diffcheck.oracles import OracleConfig

        report = fuzz(
            seed=5,
            per_fragment=3,
            fragments=["P_c"],
            config=OracleConfig(portfolio_jobs=(1, 2)),
            shrink=False,
            inject_rate=0.4,
            inject_seed=5,
        )
        assert report.injected_runs > 0
        flips = [
            d for d in report.disagreements
            if d.kind in {"injected-flip", "unrecorded-fault"}
        ]
        assert not flips, [d.to_dict() for d in flips]
        _assert_no_orphans()

    def test_imply_with_injection_never_leaks_pool_errors(self):
        # A hostile targeted plan across the first six ordinals: every
        # outcome must be a clean ImplicationResult or a typed
        # ReproError — never a bare BrokenProcessPool.
        plan = FaultPlan.from_spec(
            "kill:0,raise:1,corrupt:2,kill:3,delay:4:0.05,raise:5"
        )
        try:
            result = run_portfolio(
                _divergent_problem(), jobs=2, fault_plan=plan,
                execution="pool",
            )
        except ReproError:
            pass  # typed failure is an acceptable outcome
        else:
            assert result.answer in (
                Trilean.FALSE,
                Trilean.UNKNOWN,
            )
            if result.answer is Trilean.FALSE:
                assert result.countermodel is not None or (
                    result.certificate is not None
                    or result.faults.answered_by == "chase"
                )
        _assert_no_orphans()


class TestAtomicReport:
    def test_json_out_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "report.json"
        code = main(
            [
                "fuzz",
                "--seed",
                "1",
                "--per-fragment",
                "1",
                "--fragment",
                "P_w",
                "--portfolio-jobs",
                "1",
                "--no-shrink",
                "--json-out",
                str(out),
            ]
        )
        assert code == 0
        import json

        data = json.loads(out.read_text())
        assert data["ok"] is True
        assert data["aborted"] is False
        leftovers = [
            p for p in tmp_path.iterdir() if p.name != "report.json"
        ]
        assert not leftovers

    def test_atomic_writer_replaces_not_truncates(self, tmp_path):
        from repro.cli import _write_json_atomic

        target = tmp_path / "r.json"
        target.write_text("old")
        _write_json_atomic(str(target), "new")
        assert target.read_text() == "new"
        assert list(tmp_path.iterdir()) == [target]
