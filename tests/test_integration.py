"""End-to-end scenarios straight from the paper's narrative.

Each test walks one of the paper's stories through the public API:
the Penn-bib database with its constraints (Sections 1-2), the typed
Example 3.1 pipeline (XML-Data text -> M+ schema -> instance -> graph
-> checking), and the two headline interaction results exercised
through the dispatcher.
"""

from __future__ import annotations

from repro import Graph, parse_constraint, parse_constraints
from repro.checking import check_all
from repro.constraints.classes import is_prefix_bounded_set
from repro.paths import EPSILON
from repro.reasoning import (
    Context,
    ImplicationProblem,
    ProblemClass,
    classify,
    implies_local_extent,
    solve,
)
from repro.reductions import encode_mplus, encode_pwk, figure2_structure, figure4_structure
from repro.monoids import MonoidPresentation
from repro.monoids.finite import find_separating_homomorphism
from repro.truth import Trilean
from repro.types.instances import Instance, Oid
from repro.types.typecheck import check_type_constraint
from repro.xml import document_to_graph, parse_xml, schema_from_xml_data


class TestPennBibStory:
    """Sections 1 and 2.2 as an executable narrative."""

    def test_database_satisfies_its_constraints(
        self, penn_bib, section1_constraints
    ):
        assert check_all(penn_bib, section1_constraints).ok

    def test_phi0_question(self, penn_bib):
        """Section 2.2's instance: does Sigma_0 imply phi_0?"""
        sigma0 = parse_constraints(
            """
            MIT :: book.author => person
            MIT :: person.wrote => book
            Warner.book :: author ~> wrote
            Warner.person :: wrote ~> author
            """
        )
        phi0 = parse_constraint("MIT :: book.ref => book")
        # The instance is exactly a local-extent implication problem.
        assert is_prefix_bounded_set(sigma0 + [phi0], EPSILON, "MIT")
        assert classify(sigma0, phi0) is ProblemClass.LOCAL_EXTENT
        # Decidable in PTIME (Theorem 5.1) and the answer is "no":
        result = solve(ImplicationProblem(sigma0, phi0))
        assert result.decidable and result.complexity == "PTIME"
        assert result.answer is Trilean.FALSE
        # A model of Sigma_0 violating phi_0 exists in the wild: take
        # Penn-bib and add an unmatched MIT ref edge.
        assert result.answer is Trilean.FALSE

    def test_countermodel_for_phi0_concrete(self, penn_bib):
        sigma0 = parse_constraints(
            """
            MIT :: book.author => person
            MIT :: person.wrote => book
            """
        )
        phi0 = parse_constraint("MIT :: book.ref => book")
        mit_root = next(iter(penn_bib.eval_path("MIT")))
        book = next(iter(penn_bib.eval_path("MIT.book")))
        rogue = penn_bib.add_edge(book, "ref", "rogue-book")
        report = check_all(penn_bib, sigma0)
        assert report.ok
        from repro.checking import check

        assert not check(penn_bib, phi0).holds
        assert (mit_root, rogue) in check(penn_bib, phi0).violating_pairs


class TestTypedPipeline:
    """XML-Data text -> M+ schema -> typed instance -> abstraction ->
    constraint checking, the full Section 3 pipeline."""

    XML_DATA = """
    <schema>
      <elementType id="book">
        <attribute name="author" range="#person"/>
        <attribute name="ref" range="#book"/>
        <element type="#title"/>
      </elementType>
      <elementType id="person">
        <attribute name="wrote" range="#book"/>
        <element type="#name"/>
      </elementType>
      <elementType id="title"><string/></elementType>
      <elementType id="name"><string/></elementType>
    </schema>
    """

    def test_full_pipeline(self):
        schema = schema_from_xml_data(self.XML_DATA)
        b, p = Oid("b"), Oid("p")
        instance = Instance(
            schema,
            oids={"Book": {b}, "Person": {p}},
            values={
                b: {"title": "t", "author": frozenset({p}),
                    "ref": frozenset()},
                p: {"name": "n", "wrote": frozenset({b})},
            },
            entry={"book": frozenset({b}), "person": frozenset({p})},
        )
        instance.validate()
        graph = instance.to_graph()
        assert check_type_constraint(schema, graph).ok
        inverse = parse_constraint(
            "book.member :: author.member ~> wrote.member"
        )
        assert instance.satisfies(inverse)

    def test_document_vs_schema_views_agree(self):
        """The untyped document graph and the typed instance graph
        satisfy the same inverse constraint, each in its own path
        vocabulary."""
        doc = parse_xml(
            """
            <bib>
              <book id="b" author="p"><title>T</title></book>
              <person id="p" wrote="b"><name>N</name></person>
            </bib>
            """
        )
        untyped = document_to_graph(
            doc, reference_attributes={"author", "wrote"}
        )
        from repro.checking import check

        assert check(
            untyped, parse_constraint("book :: author ~> wrote")
        ).holds


class TestHeadlineResults:
    """The two interaction theorems, exercised end to end."""

    def test_types_help(self, fs_schema):
        """Theorem 4.2 direction: a P_c instance that is undecidable-
        class untyped becomes decidable (and differently answered!)
        over M."""
        sigma = parse_constraints("sentence.head => subject")
        phi = parse_constraint("subject => sentence.head")
        untyped = solve(ImplicationProblem(sigma, phi))
        typed = solve(
            ImplicationProblem(sigma, phi, context=Context.M, schema=fs_schema)
        )
        # Untyped: word-constraint implication (PTIME) answers no.
        assert untyped.answer is Trilean.FALSE
        # Over M: commutativity applies, answer is yes, in cubic time.
        assert typed.answer is Trilean.TRUE
        assert typed.complexity == "cubic"

    def test_types_hurt(self):
        """Theorem 5.2 direction: a local-extent instance decidable
        untyped (PTIME, answer no) whose typed counterpart over
        Delta_1 encodes a word problem whose answer is yes."""
        pres = MonoidPresentation("uv", [("u.v", "v.u")])
        enc = encode_mplus(pres)
        phi = enc.test_constraint("u.v", "v.u")
        untyped = implies_local_extent(
            list(enc.sigma), phi, rho=enc.rho, guard=enc.guard
        )
        assert untyped.decidable and untyped.answer is Trilean.FALSE
        # Typed: the dispatcher reports the cell undecidable and the
        # chase-based semi-decision cannot refute (no typed counter-
        # model exists for an equal pair).
        problem = ImplicationProblem(
            list(enc.sigma), phi, context=Context.M_PLUS, schema=enc.schema
        )
        from repro.reasoning import table1_cell

        decidable, _ = table1_cell(
            classify(list(enc.sigma), phi), problem.context
        )
        assert not decidable

    def test_theorem_43_instance(self):
        """The P_w(K) encoding of a word-problem instance, checked on
        both sides: separable pair -> Figure 2 counter-model exists;
        the same structure models every encoded constraint."""
        pres = MonoidPresentation("uv", [("u.u", "u")])
        enc = encode_pwk(pres)
        hom = find_separating_homomorphism(pres, "u", "v")
        assert hom is not None
        g = figure2_structure(pres, hom)
        assert enc.verify_countermodel(g, "u", "v")
        # And the instance classifies into the undecidable fragment.
        phi1, _ = enc.test_constraints("u", "v")
        assert classify(list(enc.sigma), phi1) is ProblemClass.PW_K

    def test_figure4_consistency_with_dispatcher(self):
        pres = MonoidPresentation("uv", [])
        enc = encode_mplus(pres)
        phi = enc.test_constraint("u.v", "v.u")
        hom = find_separating_homomorphism(pres, "u.v", "v.u")
        graph = figure4_structure(pres, hom)
        assert enc.verify_countermodel(graph, "u.v", "v.u")
