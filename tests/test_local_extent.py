"""Tests for the local-extent decision procedure (Theorem 5.1).

Includes the paper's worked Section 2.2 instance: Sigma_0 (MIT extent
constraints + Warner inverse constraints) implying phi_0
(``MIT :: book.ref => book``)... which does NOT follow, while genuine
consequences of the MIT part do.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import parse_constraint, parse_constraints, word
from repro.constraints.ast import forward
from repro.paths import EPSILON, Path
from repro.reasoning import implies_local_extent
from repro.reasoning.chase import chase_implication
from repro.reasoning.local_extent import g1, g2, reduce_to_word_problem
from repro.truth import Trilean

SIGMA0 = """
MIT :: book.author => person
MIT :: person.wrote => book
Warner.book :: author ~> wrote
Warner.person :: wrote ~> author
"""


class TestReductionFunctions:
    def test_g1_strips_rho(self):
        sigma = parse_constraints("MIT.K :: a => b")
        out = g1(sigma, "MIT")
        assert out == [parse_constraint("K :: a => b")]

    def test_g2_yields_word_constraints(self):
        out = g2([parse_constraint("K :: a.b => c")], "K")
        assert out == [word("a.b", "c")]

    def test_g2_rejects_unguarded(self):
        with pytest.raises(ValueError):
            g2([parse_constraint("J :: a => b")], "K")

    def test_full_reduction_on_sigma0(self):
        sigma = parse_constraints(SIGMA0)
        phi = parse_constraint("MIT :: book.ref => book")
        words, phi2 = reduce_to_word_problem(sigma, phi, EPSILON, "MIT")
        # Warner constraints are dropped; MIT ones become word
        # constraints.
        assert set(words) == {
            word("book.author", "person"),
            word("person.wrote", "book"),
        }
        assert phi2 == word("book.ref", "book")

    def test_reduction_validates_query_boundedness(self):
        sigma = parse_constraints(SIGMA0)
        with pytest.raises(ValueError):
            reduce_to_word_problem(
                sigma, parse_constraint("a => b"), EPSILON, "MIT"
            )

    def test_reduction_validates_sigma(self):
        bad = parse_constraints("MIT.more :: a => b")
        with pytest.raises(ValueError):
            reduce_to_word_problem(
                bad, parse_constraint("MIT :: x => y"), EPSILON, "MIT"
            )


class TestDecision:
    def test_phi0_not_implied(self):
        # Section 2.2 asks whether Sigma_0 implies phi_0; the MIT
        # extent constraints say nothing about ref, so it does not.
        result = implies_local_extent(
            parse_constraints(SIGMA0),
            parse_constraint("MIT :: book.ref => book"),
        )
        assert result.answer is Trilean.FALSE
        assert result.decidable and result.complexity == "PTIME"

    def test_genuine_consequence_implied(self):
        result = implies_local_extent(
            parse_constraints(SIGMA0),
            parse_constraint("MIT :: book.author.wrote => book"),
        )
        assert result.answer is Trilean.TRUE

    def test_bounds_inferred_from_query(self):
        # No explicit (rho, K): inferred as (epsilon, MIT).
        result = implies_local_extent(
            parse_constraints(SIGMA0),
            parse_constraint("MIT :: book.author.wrote.author => person"),
        )
        assert result.answer is Trilean.TRUE
        assert result.certificate["guard"] == "MIT"
        assert result.certificate["rho"] == EPSILON

    def test_deep_rho(self):
        sigma = parse_constraints(
            """
            edu.MIT :: book.author => person
            edu.Stanford :: whatever => person
            """
        )
        result = implies_local_extent(
            sigma,
            parse_constraint("edu.MIT :: book.author => person"),
            rho="edu",
            guard="MIT",
        )
        assert result.answer is Trilean.TRUE

    def test_sigma_r_does_not_interact(self):
        """Lemma 5.3's punchline: adding arbitrary constraints on other
        local databases never changes the answer."""
        base = parse_constraints(
            """
            MIT :: book.author => person
            MIT :: person.wrote => book
            """
        )
        decoys = parse_constraints(
            """
            Warner.book :: author ~> wrote
            Warner :: person.wrote => book
            Harvard.x :: y => z
            """
        )
        queries = [
            parse_constraint("MIT :: book.author.wrote => book"),
            parse_constraint("MIT :: book.ref => book"),
            parse_constraint("MIT :: person.wrote.author => person"),
        ]
        for phi in queries:
            with_decoys = implies_local_extent(base + decoys, phi)
            without = implies_local_extent(list(base), phi)
            assert with_decoys.answer == without.answer


class TestAgainstChase:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.lists(st.sampled_from("ab"), min_size=1, max_size=2),
                st.lists(st.sampled_from("ab"), min_size=0, max_size=2),
            ),
            min_size=0,
            max_size=3,
        ),
        st.lists(st.sampled_from("ab"), min_size=1, max_size=2),
        st.lists(st.sampled_from("ab"), min_size=0, max_size=2),
    )
    def test_agrees_with_chase(self, rules, q_lhs, q_rhs):
        """Local-extent decisions match the chase semi-decider on the
        *original* (unreduced) constraints whenever the chase is
        definite."""
        guard = "K"
        sigma = [
            forward(Path.single(guard), Path(lhs), Path(rhs))
            for lhs, rhs in rules
            if lhs  # beta non-empty per Definition 2.3
        ]
        phi = forward(Path.single(guard), Path(q_lhs), Path(q_rhs))
        try:
            result = implies_local_extent(sigma, phi, rho=EPSILON, guard=guard)
        except Exception as exc:  # documented escape hatch only
            from repro.errors import IncompleteFragmentError

            assert isinstance(exc, IncompleteFragmentError)
            return
        chased = chase_implication(sigma, phi, max_steps=400)
        if chased.answer.is_definite:
            assert chased.answer == result.answer, (
                [str(c) for c in sigma],
                str(phi),
            )
