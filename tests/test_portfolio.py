"""Tests for the canonical enumeration layer and the portfolio solver.

Two families:

* **canonical layer** — the isomorphism-pruned code enumeration of
  :mod:`repro.reasoning.models` must be provably complete: orbit sizes
  over canonical representatives reconcile with the full space
  ``2^(L*n^2)``, the bit-level constraint checker agrees with the
  Definition 2.1 evaluator, and every brute-force counter-model is
  reachable through its canonical form;
* **portfolio** — racing engines must not cost determinism: the same
  counter-model comes back at any ``jobs``, budgets expire into honest
  UNKNOWNs, and per-engine stats are attached to every result.
"""

from __future__ import annotations

import pickle

import pytest

from repro.checking import check
from repro.checking.engine import satisfies_all
from repro.constraints import parse_constraint, parse_constraints
from repro.reasoning import (
    Budget,
    ImplicationProblem,
    parallel_find_countermodel,
    solve,
)
from repro.reasoning.models import (
    CodeSpace,
    _is_countermodel,
    all_graphs,
    brute_force_countermodel,
    find_countermodel,
    infer_alphabet,
    scan_codes,
)
from repro.reasoning.portfolio import _plan_shards
from repro.truth import Trilean

# A refutable P_c instance whose smallest counter-model has 3 nodes
# (the `a :: a => a` tautology keeps two distinct guards => GENERAL
# without touching the alphabet, so the code space stays 2^(2*n^2)).
DIVERGENT_SIGMA = "() => K\nK :: () => a.a.a\nK :: a.a.a => ()\na :: a => a"
DIVERGENT_PHI = "K :: a => ()"


def _divergent_problem() -> ImplicationProblem:
    return ImplicationProblem(
        parse_constraints(DIVERGENT_SIGMA), parse_constraint(DIVERGENT_PHI)
    )


def _edge_set(graph):
    return sorted(graph.edges())


class TestCanonicalCompleteness:
    @pytest.mark.parametrize(
        "node_count,labels",
        [
            (1, ("a",)),
            (2, ("a",)),
            (3, ("a",)),
            (1, ("a", "b")),
            (2, ("a", "b")),
            (3, ("a", "b")),
        ],
    )
    def test_orbit_sizes_cover_whole_space(self, node_count, labels):
        # Burnside bookkeeping: one representative per isomorphism
        # class, orbit sizes summing to 2^(L*n^2) — no graph is lost
        # and none is double-counted.
        space = CodeSpace(node_count, labels)
        classes = list(space.canonical_classes())
        assert sum(size for _, size in classes) == space.total
        assert len({code for code, _ in classes}) == len(classes)
        assert all(space.is_canonical(code) for code, _ in classes)

    def test_canonical_form_is_orbit_minimum(self):
        space = CodeSpace(3, ("a",))
        for code in range(space.total):
            canon = space.canonical_form(code)
            assert canon == min(space.orbit(code))
            assert space.is_canonical(canon)

    def test_orbits_partition_the_space(self):
        space = CodeSpace(3, ("a",))
        seen: set[int] = set()
        for code, size in space.canonical_classes():
            orbit = space.orbit(code)
            assert len(orbit) == size
            assert not (orbit & seen)
            seen |= orbit
        assert len(seen) == space.total

    def test_every_brute_force_countermodel_has_canonical_hit(self):
        # Soundness of pruning: for every counter-model found by the
        # unpruned seed enumeration, its canonical form must itself be
        # a counter-model (isomorphism preserves P_c satisfaction), so
        # the canonical scan cannot miss a refutation.
        sigma = parse_constraints("a :: b ~> b")
        phi = parse_constraint("b :: a ~> b")
        labels = infer_alphabet(sigma, phi)
        space = CodeSpace(2, labels)
        hits = 0
        for code in range(space.total):
            graph = space.to_graph(code)
            if _is_countermodel(graph, sigma, phi):
                hits += 1
                canon = space.canonical_form(code)
                assert _is_countermodel(space.to_graph(canon), sigma, phi)
                assert space.is_canonical(canon)
        assert hits > 0  # the instance is genuinely refutable

    def test_bit_checker_agrees_with_reference_checker(self):
        # The compiled bitmask evaluator and the Definition 2.1
        # evaluator must classify every 2-node candidate identically.
        sigma = parse_constraints("a :: b ~> b")
        phi = parse_constraint("b :: a ~> b")
        labels = infer_alphabet(sigma, phi)
        space = CodeSpace(2, labels)
        report = scan_codes(
            space, sigma, phi, require_reachable=False
        )
        from repro.reasoning.models import (
            _code_is_countermodel,
            compile_constraints,
        )

        compiled_sigma = compile_constraints(sigma, space.labels)
        (compiled_phi,) = compile_constraints([phi], space.labels)
        for code in range(space.total):
            adj, radj = space.adjacency(code)
            fast = _code_is_countermodel(adj, radj, compiled_sigma, compiled_phi)
            slow = _is_countermodel(space.to_graph(code), sigma, phi)
            assert fast == slow, f"checker drift at code {code}"
        assert report.hit is not None

    def test_scan_matches_brute_force_verdict(self):
        cases = [
            ("a => b", "b => a", False),        # refutable
            ("a => b", "a.c => b.c", True),     # implied
            ("", "p :: a ~> w", False),         # backward refutable
        ]
        for sigma_text, phi_text, implied in cases:
            sigma = parse_constraints(sigma_text)
            phi = parse_constraint(phi_text)
            brute = brute_force_countermodel(sigma, phi, max_nodes=2)
            fast = find_countermodel(sigma, phi, max_nodes=2)
            assert (brute is None) == implied
            assert (fast is None) == (brute is None)
            if fast is not None:
                assert satisfies_all(fast, sigma)
                assert not check(fast, phi).holds


class TestShardPlanning:
    def test_ranges_are_contiguous_and_cover(self):
        for total, shards in [(10, 3), (16, 4), (5, 8), (1, 1), (7, 7)]:
            ranges = _plan_shards(total, shards)
            assert ranges[0][0] == 0
            assert ranges[-1][1] == total
            for (_, stop), (start, _) in zip(ranges, ranges[1:]):
                assert stop == start
            assert all(start < stop for start, stop in ranges)

    def test_shard_union_equals_sequential_scan(self):
        sigma = parse_constraints(DIVERGENT_SIGMA)
        phi = parse_constraint(DIVERGENT_PHI)
        labels = infer_alphabet(sigma, phi)
        space = CodeSpace(3, labels)
        whole = scan_codes(space, sigma, phi)
        assert whole.hit is not None
        # Scanning the same space in 8 contiguous shards and taking the
        # first hit (all earlier shards exhausted hitless) must land on
        # the identical code.
        first_hit = None
        for start, stop in _plan_shards(space.total, 8):
            part = scan_codes(space, sigma, phi, start, stop)
            assert part.exhausted
            if part.hit is not None:
                first_hit = part.hit
                break
        assert first_hit == whole.hit


class TestPortfolioDeterminism:
    def test_same_countermodel_any_jobs(self):
        sigma = parse_constraints(DIVERGENT_SIGMA)
        phi = parse_constraint(DIVERGENT_PHI)
        sequential = parallel_find_countermodel(sigma, phi, jobs=1)
        assert sequential is not None
        assert sequential.node_count() == 3
        parallel = parallel_find_countermodel(sigma, phi, jobs=4)
        assert parallel is not None
        assert _edge_set(sequential) == _edge_set(parallel)

    def test_solve_identical_at_jobs_1_and_4(self):
        # Starve the chase so the counter-model engine decides in both
        # modes; answer, method and counter-model must coincide.
        results = [
            solve(_divergent_problem(), chase_steps=2, jobs=jobs)
            for jobs in (1, 4)
        ]
        assert all(r.answer is Trilean.FALSE for r in results)
        assert {r.method for r in results} == {"bounded-countermodel"}
        seq, par = results
        assert _edge_set(seq.countermodel) == _edge_set(par.countermodel)

    def test_countermodel_is_genuine(self):
        result = solve(_divergent_problem(), chase_steps=2, jobs=2)
        sigma = parse_constraints(DIVERGENT_SIGMA)
        phi = parse_constraint(DIVERGENT_PHI)
        assert satisfies_all(result.countermodel, sigma)
        assert not check(result.countermodel, phi).holds


class TestPortfolioBudgets:
    def test_expired_budget_is_unknown(self):
        result = solve(_divergent_problem(), chase_steps=2, deadline=0.0)
        assert result.answer is Trilean.UNKNOWN
        assert any("budget" in note for note in result.notes)

    def test_expired_budget_is_unknown_parallel(self):
        result = solve(
            _divergent_problem(), chase_steps=2, deadline=0.0, jobs=2
        )
        assert result.answer is Trilean.UNKNOWN

    def test_budget_from_seconds(self):
        assert Budget.from_seconds(None).deadline is None
        assert Budget.from_seconds(None).remaining() is None
        assert not Budget.from_seconds(None).expired
        tight = Budget.from_seconds(0.0)
        assert tight.expired
        assert tight.remaining() == 0.0
        loose = Budget.from_seconds(3600.0)
        assert not loose.expired
        assert loose.remaining() > 3000.0


class TestPortfolioStats:
    def test_stats_present_sequential(self):
        result = solve(_divergent_problem(), chase_steps=2)
        engines = {s.engine for s in result.stats}
        assert engines == {"chase", "countermodel"}
        chase_stats = next(s for s in result.stats if s.engine == "chase")
        assert chase_stats.outcome == "unknown"
        search = next(s for s in result.stats if s.engine == "countermodel")
        assert search.outcome == "hit"
        assert search.candidates > 0
        assert "engine[" in result.describe()

    def test_stats_present_parallel(self):
        result = solve(_divergent_problem(), chase_steps=2, jobs=4)
        engines = {s.engine for s in result.stats}
        assert engines == {"chase", "countermodel"}

    def test_chase_win_keeps_portfolio_notes(self):
        problem = ImplicationProblem(
            parse_constraints("() => K\nK :: a => b"),
            parse_constraint("a => b"),
        )
        result = solve(problem, jobs=1)
        assert result.answer is Trilean.TRUE
        assert "chase" in result.method
        assert any("undecidable" in note for note in result.notes)
        assert any(s.engine == "chase" for s in result.stats)


class TestTypedPortfolio:
    def test_typed_countermodel_same_any_jobs(self, bib_schema):
        sigma = parse_constraints("book.member.author => person")
        phi = parse_constraint("person => book.member.author")
        results = [
            solve(
                ImplicationProblem(
                    sigma, phi, context="M+", schema=bib_schema
                ),
                typed_search_limit=2000,
                jobs=jobs,
            )
            for jobs in (1, 4)
        ]
        assert all(r.answer is Trilean.FALSE for r in results)
        seq, par = results
        assert _edge_set(seq.countermodel) == _edge_set(par.countermodel)

    def test_chase_true_transfers_parallel(self, bib_schema):
        sigma = parse_constraints("book.member.author => person")
        phi = parse_constraint("book.member.author.member => person.member")
        result = solve(
            ImplicationProblem(sigma, phi, context="M+", schema=bib_schema),
            jobs=4,
        )
        assert result.answer is Trilean.TRUE
        assert result.method == "chase(untyped, transfers)"


class TestWorkerPayloadPickling:
    """Everything crossing the process boundary must pickle."""

    def test_constraints_and_graphs(self):
        sigma = parse_constraints(DIVERGENT_SIGMA)
        phi = parse_constraint(DIVERGENT_PHI)
        assert pickle.loads(pickle.dumps(sigma)) == sigma
        assert pickle.loads(pickle.dumps(phi)) == phi
        graph = parallel_find_countermodel(sigma, phi, jobs=1)
        clone = pickle.loads(pickle.dumps(graph))
        assert _edge_set(clone) == _edge_set(graph)

    def test_schema_roundtrip(self, bib_schema):
        clone = pickle.loads(pickle.dumps(bib_schema))
        assert clone.class_names == bib_schema.class_names
        assert clone.db_type == bib_schema.db_type

    def test_budget_roundtrip(self):
        budget = Budget(deadline=12345.0)
        assert pickle.loads(pickle.dumps(budget)) == budget
