"""Tests for the interaction-report API (the paper's headline as code)."""

from __future__ import annotations

from repro.constraints import parse_constraint, parse_constraints
from repro.reasoning import InteractionKind, interaction_report
from repro.reductions import encode_mplus
from repro.monoids import MonoidPresentation
from repro.truth import Trilean


class TestTypesHelp:
    def test_commutativity_flip(self, fs_schema):
        report = interaction_report(
            parse_constraints("sentence.head => subject"),
            parse_constraint("subject => sentence.head"),
            fs_schema,
        )
        assert report.typed_context.value == "M"
        assert report.untyped.answer is Trilean.FALSE
        assert report.typed.answer is Trilean.TRUE
        assert report.kind is InteractionKind.TYPES_HELP
        assert "types-help" in report.describe()

    def test_undecidable_becomes_cubic(self, fs_schema):
        # A general P_c instance: undecidable untyped, cubic over M.
        sigma = parse_constraints("sentence :: head ~> head")
        phi = parse_constraint("sentence :: head.head => ()")
        report = interaction_report(sigma, phi, fs_schema)
        assert report.typed.decidable
        assert not report.untyped.decidable
        assert report.kind is InteractionKind.TYPES_HELP

    def test_neutral_when_same_answer(self, fs_schema):
        sigma = parse_constraints("sentence => subject")
        phi = parse_constraint("sentence.head => subject.head")
        report = interaction_report(sigma, phi, fs_schema)
        # Both sides say yes (right-congruence is untyped-sound).
        assert report.untyped.answer is Trilean.TRUE
        assert report.typed.answer is Trilean.TRUE
        assert report.kind is InteractionKind.NEUTRAL


class TestTypesHurt:
    def test_delta1_instance(self):
        pres = MonoidPresentation("uv", [("u.v", "v.u")])
        enc = encode_mplus(pres)
        phi = enc.test_constraint("u.v", "v.u")
        report = interaction_report(
            list(enc.sigma), phi, enc.schema, typed_search_limit=200
        )
        assert report.typed_context.value == "M+"
        # Untyped: decidable (local extent), answer FALSE.
        assert report.untyped.decidable
        assert report.untyped.answer is Trilean.FALSE
        # Typed: the cell is undecidable; no typed counter-model exists
        # for this equal pair, so the semi-decision abstains (or, if the
        # chase happens to confirm, answers TRUE — either way the cell
        # itself is undecidable and the interaction is "hurt").
        assert not report.typed.decidable
        assert report.kind is InteractionKind.TYPES_HURT
