"""Tests for the XML frontend: parser, graphization, schema import."""

from __future__ import annotations

import pytest

from repro.checking import check
from repro.constraints import parse_constraint
from repro.errors import SchemaError, XMLSyntaxError
from repro.types import ClassRef, SetType
from repro.xml import document_to_graph, parse_xml, schema_from_xml_data

BIB_XML = """
<bib>
  <book id="b1" author="p1" ref="b2">
    <title>Foundations of Databases</title>
    <ISBN>111</ISBN>
  </book>
  <book id="b2" author="p1 p2">
    <title>Semistructured Data</title>
    <ISBN>222</ISBN>
  </book>
  <person id="p1" wrote="b1 b2"><name>Ada</name></person>
  <person id="p2" wrote="b2"><name>Bob</name></person>
</bib>
"""

#: The paper's Section 1 XML-Data declarations (verbatim structure).
XML_DATA_SCHEMA = """
<schema>
  <elementType id="book">
    <attribute name="author" range="#person"/>
    <attribute name="ref" range="#book"/>
    <element type="#ISBN"/>
    <element type="#title"/>
    <element type="#year" occurs="optional"/>
  </elementType>
  <elementType id="person">
    <attribute name="wrote" range="#book"/>
    <element type="#SSN"/>
    <element type="#name"/>
    <element type="#age" occurs="optional"/>
  </elementType>
  <elementType id="title"><string/></elementType>
  <elementType id="ISBN"><string/></elementType>
  <elementType id="year"><int/></elementType>
  <elementType id="SSN"><string/></elementType>
  <elementType id="name"><string/></elementType>
  <elementType id="age"><int/></elementType>
</schema>
"""


class TestParser:
    def test_nested_elements(self):
        root = parse_xml("<a><b><c/></b><b/></a>")
        assert root.tag == "a"
        assert len(root.find_all("b")) == 2
        assert root.children[0].find("c") is not None

    def test_attributes(self):
        root = parse_xml('<a x="1" y=\'two\'/>')
        assert root.attributes == {"x": "1", "y": "two"}

    def test_text_content(self):
        root = parse_xml("<a>hello <b>world</b></a>")
        assert root.text == "hello"
        assert root.find("b").text == "world"

    def test_entities_unescaped(self):
        root = parse_xml('<a x="&lt;&amp;&gt;">&quot;q&quot;</a>')
        assert root.attributes["x"] == "<&>"
        assert root.text == '"q"'

    def test_comments_and_declaration_skipped(self):
        root = parse_xml('<?xml version="1.0"?><!-- note --><a/>')
        assert root.tag == "a"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "<a>",
            "<a></b>",
            "<a/><b/>",
            "text only",
            '<a x="1" x="2"/>',
            "<a><b></a></b>",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(XMLSyntaxError):
            parse_xml(bad)

    def test_iter_depth_first(self):
        root = parse_xml("<a><b><c/></b><d/></a>")
        assert [e.tag for e in root.iter()] == ["a", "b", "c", "d"]


class TestGraphize:
    def test_bibliography_document(self):
        graph = document_to_graph(
            parse_xml(BIB_XML), reference_attributes={"author", "ref", "wrote"}
        )
        assert len(graph.eval_path("book")) == 2
        assert len(graph.eval_path("person")) == 2
        assert len(graph.eval_path("book.author")) == 2
        assert len(graph.eval_path("book.ref")) == 1
        assert len(graph.eval_path("book.author.wrote.title")) == 2

    def test_inverse_constraints_checkable(self):
        graph = document_to_graph(
            parse_xml(BIB_XML), reference_attributes={"author", "ref", "wrote"}
        )
        assert check(
            graph, parse_constraint("book :: author ~> wrote")
        ).holds
        assert check(
            graph, parse_constraint("book.author => person")
        ).holds

    def test_plain_attributes_become_leaves(self):
        graph = document_to_graph(parse_xml('<a><b isbn="1"/></a>'))
        leaves = graph.eval_path("b.isbn")
        assert len(leaves) == 1
        leaf = next(iter(leaves))
        assert graph.sort_of(leaf) == "value:1"

    def test_duplicate_id_rejected(self):
        with pytest.raises(XMLSyntaxError, match="duplicate id"):
            document_to_graph(parse_xml('<a><b id="x"/><c id="x"/></a>'))

    def test_dangling_reference_rejected(self):
        with pytest.raises(XMLSyntaxError, match="dangling"):
            document_to_graph(
                parse_xml('<a><b ref="ghost"/></a>'),
                reference_attributes={"ref"},
            )


class TestSchemaImport:
    def test_paper_example_schema(self):
        schema = schema_from_xml_data(XML_DATA_SCHEMA)
        assert schema.class_names == frozenset({"Book", "Person"})
        book = schema.body_of("Book")
        # Relationships are set-valued class references.
        assert book.field("author") == SetType(ClassRef("Person"))
        assert book.field("ref") == SetType(ClassRef("Book"))
        # Required elements are singleton atomics, optional ones sets.
        assert repr(book.field("title")) == "string"
        assert repr(book.field("year")) == "{int}"
        # The DB type collects extents.
        assert repr(schema.db_type.field("book")) == "{Book}"

    def test_matches_example_3_1(self):
        """The XML-Data import reproduces Example 3.1's schema up to
        the set-vs-atom choice for required strings (Example 3.1 keeps
        title atomic; so does the import)."""
        from repro.types.examples import example_3_1_schema

        imported = schema_from_xml_data(XML_DATA_SCHEMA)
        reference = example_3_1_schema()
        for cls in ("Book", "Person"):
            imported_labels = set(imported.body_of(cls).labels)
            reference_labels = set(reference.body_of(cls).labels)
            assert imported_labels == reference_labels

    def test_rejects_missing_declarations(self):
        with pytest.raises(SchemaError):
            schema_from_xml_data("<schema/>")

    def test_rejects_dangling_reference(self):
        with pytest.raises(SchemaError, match="undeclared"):
            schema_from_xml_data(
                """
                <schema>
                  <elementType id="a">
                    <attribute name="x" range="#ghost"/>
                  </elementType>
                </schema>
                """
            )

    def test_rejects_bad_range_syntax(self):
        with pytest.raises(SchemaError, match="#"):
            schema_from_xml_data(
                """
                <schema>
                  <elementType id="a">
                    <attribute name="x" range="a"/>
                  </elementType>
                </schema>
                """
            )
