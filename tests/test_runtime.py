"""Unit tests for the supervised execution runtime.

Covers the monotonic :class:`Budget` (the clock regression the
portfolio's cross-process deadline threading depends on), the
deterministic fault-plan parser, and the in-process (inline) paths of
:class:`WorkerSupervisor` — retry, injection, exhaustion, accounting.
Pool-backed crash scenarios live in ``test_fault_tolerance.py``.
"""

import pickle
import time

import pytest

from repro.errors import InjectedFault, ReproError, RetryExhausted
from repro.reasoning.faultinject import (
    NO_FAULT,
    CorruptPayload,
    FaultAction,
    FaultPlan,
    plan_from_env,
)
from repro.reasoning.result import FaultEvent, FaultReport
from repro.reasoning.runtime import Budget, WorkerSupervisor


# Top-level so the pool tests elsewhere can share them; the inline
# tests here call them in-process.
def _double(x):
    return 2 * x


def _always_raises():
    raise ValueError("engine bug")


class TestBudgetMonotonic:
    def test_from_seconds_is_on_the_monotonic_clock(self):
        # Regression for the time.time() -> time.monotonic() switch: a
        # deadline must be an absolute monotonic instant, not wall
        # clock.  The two clocks' epochs differ by decades on any real
        # system, so a mixed comparison would misbehave immediately.
        budget = Budget.from_seconds(5.0)
        assert budget.deadline == pytest.approx(
            time.monotonic() + 5.0, abs=1.0
        )
        assert not budget.expired
        assert 0.0 < budget.remaining() <= 5.0

    def test_unlimited_budget(self):
        budget = Budget()
        assert budget.deadline is None
        assert not budget.expired
        assert budget.remaining() is None

    def test_expiry_and_clamped_remaining(self):
        budget = Budget(deadline=time.monotonic() - 1.0)
        assert budget.expired
        assert budget.remaining() == 0.0

    def test_absolute_deadline_pickles_for_workers(self):
        # The portfolio ships the absolute deadline into pool workers;
        # Linux CLOCK_MONOTONIC is system-wide, so the value survives
        # the process boundary as-is.
        budget = Budget(deadline=12345.0)
        assert pickle.loads(pickle.dumps(budget)) == budget


class TestFaultPlan:
    def test_targeted_spec_roundtrip(self):
        plan = FaultPlan.from_spec("kill:3,delay:2:0.5,corrupt:1,raise:0")
        assert plan.active
        assert plan.action_for(3) == FaultAction("kill")
        assert plan.action_for(2) == FaultAction("delay", 0.5)
        assert plan.action_for(1) == FaultAction("corrupt")
        assert plan.action_for(0) == FaultAction("raise")
        assert plan.action_for(7) is NO_FAULT

    def test_rate_plan_is_deterministic(self):
        plan = FaultPlan.at_rate(0.5, seed=11)
        actions = [plan.action_for(i) for i in range(50)]
        again = [plan.action_for(i) for i in range(50)]
        assert actions == again
        assert any(a.fires for a in actions)
        assert any(not a.fires for a in actions)

    def test_different_seeds_differ(self):
        a = [FaultPlan.at_rate(0.5, seed=1).action_for(i) for i in range(60)]
        b = [FaultPlan.at_rate(0.5, seed=2).action_for(i) for i in range(60)]
        assert a != b

    @pytest.mark.parametrize(
        "spec",
        ["kill", "kill:x", "delay:1", "frobnicate:2", "rate:1.5", "rate"],
    )
    def test_malformed_specs_are_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(spec)

    def test_empty_spec_is_inactive(self):
        plan = FaultPlan.from_spec("")
        assert not plan.active
        assert plan.action_for(0) is NO_FAULT

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT", "kill:2")
        assert plan_from_env().action_for(2) == FaultAction("kill")
        monkeypatch.delenv("REPRO_INJECT")
        assert not plan_from_env().active

    def test_corrupt_payload_cannot_pickle(self):
        with pytest.raises(InjectedFault):
            pickle.dumps(CorruptPayload())


class TestInlineSupervisor:
    def test_inline_submit_is_synchronous_and_poolless(self):
        with WorkerSupervisor(jobs=1) as sup:
            task = sup.submit(_double, 21, engine="demo")
            assert task.settled and task.result() == 42
            assert sup._pool is None
        report = sup.fault_report(answered_by="demo")
        assert report.clean
        assert report.answered_by == "demo"

    def test_exhausted_retries_settle_with_typed_error(self):
        with WorkerSupervisor(jobs=1, max_task_retries=2) as sup:
            task = sup.submit(_always_raises, engine="buggy")
        assert task.failed
        assert isinstance(task.error, RetryExhausted)
        assert isinstance(task.error, ReproError)
        assert isinstance(task.error.__cause__, ValueError)
        report = sup.fault_report()
        assert not report.clean
        assert report.retries == 2
        kinds = [e.kind for e in report.events]
        assert "task-error" in kinds and "retry-exhausted" in kinds

    def test_injected_raise_fires_once_then_recovers(self):
        plan = FaultPlan.from_spec("raise:0")
        with WorkerSupervisor(jobs=1, plan=plan) as sup:
            task = sup.submit(_double, 5, engine="demo")
        # First attempt hits the injected fault; the retry runs clean.
        assert task.result() == 10
        report = sup.fault_report()
        assert report.retries == 1
        assert [e.kind for e in report.events][0] == "injected"

    def test_injected_kill_is_downgraded_in_process(self):
        # An in-process kill must not take the caller down; the
        # injection layer downgrades it to a raise, and the retry
        # recovers the value.
        plan = FaultPlan.from_spec("kill:0")
        with WorkerSupervisor(jobs=1, plan=plan) as sup:
            task = sup.submit(_double, 4, engine="demo")
        assert task.result() == 8

    def test_wait_any_returns_settled_inline_tasks(self):
        with WorkerSupervisor(jobs=1) as sup:
            a = sup.submit(_double, 1, engine="a")
            b = sup.submit(_double, 2, engine="b")
            done = sup.wait_any([a, b])
        assert done == {a, b}

    def test_cancel_marks_task(self):
        with WorkerSupervisor(jobs=1) as sup:
            task = sup.submit(_double, 1, engine="a")
            sup.cancel(task)  # already settled: no-op
            assert task.result() == 2


class TestFaultReport:
    def test_describe_and_to_dict(self):
        report = FaultReport(
            events=(FaultEvent("task-retry", "chase", 1, "boom"),),
            retries=1,
            degradations=0,
            answered_by="chase",
        )
        assert not report.clean
        text = report.describe()
        assert "retries=1" in text and "task-retry@chase#1" in text
        data = report.to_dict()
        assert data["answered_by"] == "chase"
        assert data["events"][0]["kind"] == "task-retry"

    def test_empty_report_is_clean(self):
        assert FaultReport().clean
