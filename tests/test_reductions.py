"""Tests for the executable undecidability reductions (Figures 2-4).

These are the checkable halves of Lemmas 4.5 and 5.4 and of the
Figure 3 step in Lemma 5.3: every counter-model the constructions
produce is verified against the actual constraint/type semantics, and
reduction answers are compared with the monoid-side word-problem
semi-decider across a corpus of presentations.
"""

from __future__ import annotations

import pytest

from repro.checking import check
from repro.checking.engine import satisfies_all
from repro.checking.satisfaction import violations
from repro.constraints import parse_constraint, word
from repro.constraints.classes import is_in_pw_k, is_prefix_bounded_set
from repro.graph import Graph
from repro.monoids import FiniteMonoid, Homomorphism, MonoidPresentation
from repro.monoids.finite import find_separating_homomorphism
from repro.monoids.word_problem import decide_word_problem
from repro.paths import Path
from repro.reasoning.chase import chase_implication
from repro.reasoning.local_extent import implies_local_extent
from repro.reductions import (
    attach_prefix,
    encode_mplus,
    encode_pwk,
    figure2_structure,
    figure3_structure,
    figure4_structure,
)
from repro.truth import Trilean
from repro.types.typecheck import check_type_constraint

#: A corpus of (presentation, equal-pair, unequal-pair) fixtures.
CORPUS = [
    (
        MonoidPresentation("uv", [("u.v", "v.u")]),  # free commutative
        ("u.v.u", "u.u.v"),
        ("u.v", "v.v"),
    ),
    (
        MonoidPresentation("u", [("u.u.u", "")]),  # cyclic Z3
        ("u.u.u.u", "u"),
        ("u.u", "u"),
    ),
    (
        MonoidPresentation("uv", [("u.u", "u"), ("v.v", "v")]),  # idempotent
        ("u.u.v", "u.v"),
        ("u.v", "v.u"),
    ),
    (
        MonoidPresentation("uv", []),  # free
        ("u.v", "u.v"),
        ("u.v", "v.u"),
    ),
]


class TestPwkEncoding:
    def test_encoding_is_in_pwk(self, commutative_uv):
        enc = encode_pwk(commutative_uv)
        assert all(is_in_pw_k(phi, "K") for phi in enc.sigma)
        phi1, phi2 = enc.test_constraints("u.v", "v.u")
        assert is_in_pw_k(phi1, "K") and is_in_pw_k(phi2, "K")

    def test_guard_must_be_fresh(self, commutative_uv):
        with pytest.raises(ValueError):
            encode_pwk(commutative_uv, guard="u")

    def test_encoding_shape_matches_paper(self, commutative_uv):
        enc = encode_pwk(commutative_uv)
        assert word(Path.empty(), Path.single("K")) in enc.sigma
        assert word("K.u", "K") in enc.sigma
        assert word("K.v", "K") in enc.sigma
        assert parse_constraint("K :: u.v => v.u") in enc.sigma
        assert parse_constraint("K :: v.u => u.v") in enc.sigma
        assert len(enc.sigma) == 1 + 2 + 2

    @pytest.mark.parametrize("pres,equal,unequal", CORPUS)
    def test_figure2_countermodel_for_unequal(self, pres, equal, unequal):
        hom = find_separating_homomorphism(pres, *unequal)
        assert hom is not None, "corpus pair should be separable"
        graph = figure2_structure(pres, hom)
        enc = encode_pwk(pres)
        assert enc.verify_countermodel(graph, *unequal)

    @pytest.mark.parametrize("pres,equal,unequal", CORPUS)
    def test_figure2_models_equal_pairs(self, pres, equal, unequal):
        """The same structure must NOT violate the test constraints of
        a provably equal pair (otherwise the encoding would be
        unsound)."""
        hom = find_separating_homomorphism(pres, *unequal)
        graph = figure2_structure(pres, hom)
        enc = encode_pwk(pres)
        phi1, phi2 = enc.test_constraints(*equal)
        assert check(graph, phi1).holds and check(graph, phi2).holds

    def test_figure2_rejects_disrespectful_hom(self, commutative_uv):
        t2 = FiniteMonoid.transformation(2)
        bad = None
        for hom in Homomorphism.enumerate(t2, commutative_uv.alphabet):
            if not hom.respects(commutative_uv):
                bad = hom
                break
        assert bad is not None
        with pytest.raises(ValueError):
            figure2_structure(commutative_uv, bad)

    @pytest.mark.parametrize("pres,equal,unequal", CORPUS)
    def test_chase_confirms_equal_pairs(self, pres, equal, unequal):
        """Forward direction of Lemma 4.5 sampled through the chase:
        when the monoid side PROVES equality, the encoded implication
        must not be refutable — and on these small instances the chase
        confirms it positively."""
        verdict = decide_word_problem(pres, *equal)
        assert verdict.answer is Trilean.TRUE
        enc = encode_pwk(pres)
        phi1, phi2 = enc.test_constraints(*equal)
        for phi in (phi1, phi2):
            result = chase_implication(list(enc.sigma), phi, max_steps=3000)
            assert result.answer is not Trilean.FALSE
            # All corpus cases happen to converge:
            assert result.answer is Trilean.TRUE, (str(phi), result.notes)


class TestFigure3:
    def test_structure_shape(self):
        g = Graph(root=0)
        g.add_edge(0, "a", 1)
        h = figure3_structure(g)
        assert h.root == "rH"
        assert h.has_edge("rH", "K", "rH")
        assert ("g", 0) in h.eval_path("K")
        assert h.eval_path("K.a") == frozenset({("g", 1)})

    def test_h_models_lifted_constraints(self):
        """The Lemma 5.3 step, executed: a counter-model of the word
        problem lifts through Figure 3 to a counter-model of the
        K-guarded problem, with decoy Sigma_r constraints still
        satisfied vacuously."""
        sigma2 = [word("a.b", "c")]  # Sigma^2_K
        phi2 = word("a", "c")  # not implied
        # A finite model of sigma2 violating phi2:
        g = Graph(root=0)
        g.add_edge(0, "a", 1)
        g.add_edge(1, "b", 2)
        g.add_edge(0, "c", 2)
        assert satisfies_all(g, sigma2)
        assert violations(g, phi2, limit=1)

        h = figure3_structure(g)
        sigma1_k = [parse_constraint("K :: a.b => c")]
        sigma1_r = [parse_constraint("Other :: x => y")]
        phi1 = parse_constraint("K :: a => c")
        assert satisfies_all(h, sigma1_k + sigma1_r)
        assert violations(h, phi1, limit=1)

    def test_attach_prefix(self):
        g = Graph(root=0)
        g.add_edge(0, "a", 1)
        wrapped = attach_prefix(g, "MIT.bib")
        assert len(wrapped.eval_path("MIT.bib.a")) == 1
        assert wrapped.eval_path("a") == frozenset()

    def test_attach_empty_prefix_is_copy(self):
        g = Graph(root=0)
        g.add_edge(0, "a", 1)
        wrapped = attach_prefix(g, "")
        assert len(wrapped.eval_path("a")) == 1


class TestMplusEncoding:
    def test_encoding_is_prefix_bounded(self, commutative_uv):
        enc = encode_mplus(commutative_uv)
        phi = enc.test_constraint("u.v", "v.u")
        assert is_prefix_bounded_set(
            list(enc.sigma) + [phi], enc.rho, enc.guard
        )

    def test_encoding_shape_matches_paper(self, commutative_uv):
        enc = encode_mplus(commutative_uv)
        texts = {str(c) for c in enc.sigma}
        assert "l.K :: a => b.member" in texts
        assert "l.K :: b.member.u => b.member" in texts
        assert "l.K :: b.member.v => b.member" in texts
        assert "l.b.member :: u.v => v.u" in texts
        assert "l :: () => K" in texts
        assert len(enc.sigma) == 5

    def test_paths_valid_in_delta1(self, commutative_uv):
        from repro.types.siggen import SchemaSignature

        enc = encode_mplus(commutative_uv)
        sig = SchemaSignature(enc.schema)
        for phi in enc.sigma:
            assert sig.is_valid_path(phi.prefix)
            assert sig.is_valid_path(phi.prefix.concat(phi.lhs))
            assert sig.is_valid_path(phi.prefix.concat(phi.rhs))

    @pytest.mark.parametrize("pres,equal,unequal", CORPUS)
    def test_figure4_typed_countermodel(self, pres, equal, unequal):
        hom = find_separating_homomorphism(pres, *unequal)
        assert hom is not None
        graph = figure4_structure(pres, hom)
        enc = encode_mplus(pres)
        report = check_type_constraint(enc.schema, graph)
        assert report.ok, report.summary()
        assert enc.verify_countermodel(graph, *unequal)

    @pytest.mark.parametrize("pres,equal,unequal", CORPUS)
    def test_figure4_models_equal_pairs(self, pres, equal, unequal):
        hom = find_separating_homomorphism(pres, *unequal)
        graph = figure4_structure(pres, hom)
        enc = encode_mplus(pres)
        phi = enc.test_constraint(*equal)
        assert check(graph, phi).holds

    def test_untyped_vs_typed_divergence(self, commutative_uv):
        """Theorem 5.2's crux, executed: the *untyped* local-extent
        decider (which provably ignores Sigma_r) answers FALSE for an
        equal pair, yet over Delta_1 the implication holds — no typed
        counter-model exists because Phi(Delta_1) forces the Figure 4
        shape where the equation constraints bite."""
        enc = encode_mplus(commutative_uv)
        phi = enc.test_constraint("u.v", "v.u")  # equal in the monoid
        untyped = implies_local_extent(
            list(enc.sigma), phi, rho=enc.rho, guard=enc.guard
        )
        assert untyped.answer is Trilean.FALSE
        # Typed side: every Figure 4 structure from every respecting
        # homomorphism into the library satisfies phi (sampled check of
        # Lemma 5.4's forward direction).
        for monoid in [FiniteMonoid.cyclic(2), FiniteMonoid.transformation(2)]:
            for hom in Homomorphism.enumerate(monoid, commutative_uv.alphabet):
                if hom.respects(commutative_uv):
                    graph = figure4_structure(commutative_uv, hom)
                    assert check(graph, phi).holds
