"""Cross-cutting soundness properties, hypothesis-driven.

These tie the proof system, the deciders and the semantics together:

* every rule of I_r that claims untyped soundness preserves truth on
  arbitrary graphs;
* every M-only rule preserves truth on structures of U(Delta);
* decided implications are never refuted by random models of Sigma;
* the chase never reports a "fixpoint counter-model" that fails Sigma.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking import check
from repro.checking.engine import satisfies_all
from repro.constraints import parse_constraints, word
from repro.graph import random_graph
from repro.paths import Path
from repro.reasoning import WordImplicationDecider
from repro.reasoning.chase import chase, chase_implication
from repro.truth import Trilean

labels = st.sampled_from(["a", "b"])
words_st = st.lists(labels, min_size=0, max_size=3).map(Path)
nonempty_words = st.lists(labels, min_size=1, max_size=3).map(Path)
word_constraints = st.builds(word, words_st, nonempty_words)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(word_constraints, max_size=3),
    word_constraints,
    st.integers(2, 5),
    st.integers(0, 10_000),
)
def test_decided_implication_never_refuted_by_models(sigma, phi, n, seed):
    """If the decider says Sigma |= phi, then every random graph
    satisfying Sigma satisfies phi."""
    if not WordImplicationDecider(sigma).implies(phi):
        return
    graph = random_graph(n, ["a", "b"], edge_probability=0.3, seed=seed)
    if satisfies_all(graph, sigma):
        assert check(graph, phi).holds, (
            f"sigma={list(map(str, sigma))} phi={phi} seed={seed}"
        )


@settings(max_examples=40, deadline=None)
@given(
    st.lists(word_constraints, max_size=3),
    st.integers(2, 5),
    st.integers(0, 10_000),
)
def test_chase_fixpoint_models_sigma(sigma, n, seed):
    """A chase that reaches fixpoint produces a model of Sigma."""
    graph = random_graph(n, ["a", "b"], edge_probability=0.25, seed=seed)
    outcome = chase(graph, sigma, max_steps=400)
    if outcome.fixpoint:
        assert satisfies_all(outcome.graph, sigma)


@settings(max_examples=40, deadline=None)
@given(st.lists(word_constraints, max_size=3), word_constraints)
def test_chase_false_certificates_check_out(sigma, phi):
    """FALSE chase answers carry a counter-model that actually models
    Sigma and violates phi."""
    result = chase_implication(sigma, phi, max_steps=400)
    if result.answer is Trilean.FALSE:
        assert result.countermodel is not None
        assert satisfies_all(result.countermodel, sigma)
        assert not check(result.countermodel, phi).holds


@settings(max_examples=30, deadline=None)
@given(st.lists(word_constraints, min_size=1, max_size=3), word_constraints)
def test_proofs_conclusions_hold_on_models(sigma, phi):
    """Whatever the proof builder derives holds on every random model
    of its assumptions (soundness of the untyped rule subset)."""
    decider = WordImplicationDecider(sigma)
    proof = decider.prove(phi)
    if proof is None:
        return
    assert proof.uses_only_sound_rules("untyped")
    for seed in range(3):
        graph = random_graph(4, ["a", "b"], edge_probability=0.35, seed=seed)
        if satisfies_all(graph, list(proof.assumptions)):
            assert check(graph, proof.conclusion).holds


@settings(max_examples=25, deadline=None)
@given(st.lists(word_constraints, max_size=2), words_st, st.integers(1, 3))
def test_consequences_are_sound(sigma, source, max_length):
    """Every word in consequences(source) is a semantic consequence:
    random models of Sigma keep eval(source) inside eval(target)."""
    decider = WordImplicationDecider(sigma)
    targets = decider.consequences(source, max_length=max_length, max_count=8)
    for seed in range(2):
        graph = random_graph(4, ["a", "b"], edge_probability=0.35, seed=seed)
        if not satisfies_all(graph, sigma):
            continue
        source_nodes = graph.eval_path(source)
        for target in targets:
            assert source_nodes <= graph.eval_path(target), (
                f"sigma={list(map(str, sigma))} {source}=>{target}"
            )


class TestMOnlyRulesSoundOverM:
    """Commutativity & friends hold on U(Delta) members but can fail on
    arbitrary graphs — checked concretely."""

    def test_commutativity_fails_untyped(self):
        from repro.graph import Graph

        g = Graph(root="r")
        g.add_edge("r", "a", "x")
        g.add_edge("r", "b", "x")
        g.add_edge("r", "a", "y")
        # a => b fails (y), b => a holds; commutativity would be unsound.
        assert check(g, word("b", "a")).holds
        assert not check(g, word("a", "b")).holds

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 500))
    def test_commutativity_holds_on_deterministic_total_graphs(self, seed):
        """On deterministic, label-total graphs (the shape Phi(Delta)
        forces over M), word constraints are symmetric — the semantic
        core of Lemma 4.6."""
        import random as _random

        rng = _random.Random(seed)
        n = rng.randint(1, 4)
        from repro.graph import Graph

        g = Graph(root=0, nodes=range(n))
        for node in range(n):
            for label in ("a", "b"):
                g.add_edge(node, label, rng.randrange(n))
        for lhs_len in range(3):
            for rhs_len in range(3):
                lhs = Path([rng.choice("ab") for _ in range(lhs_len)])
                rhs = Path([rng.choice("ab") for _ in range(rhs_len)])
                forward_holds = check(g, word(lhs, rhs)).holds
                backward_holds = check(g, word(rhs, lhs)).holds
                assert forward_holds == backward_holds
