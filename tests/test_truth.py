"""Tests for the three-valued Trilean type."""

from __future__ import annotations

import pytest

from repro.truth import Trilean

T, F, U = Trilean.TRUE, Trilean.FALSE, Trilean.UNKNOWN


class TestTrilean:
    def test_of(self):
        assert Trilean.of(True) is T
        assert Trilean.of(False) is F

    def test_to_bool(self):
        assert T.to_bool() is True
        assert F.to_bool() is False
        with pytest.raises(ValueError):
            U.to_bool()

    def test_is_definite(self):
        assert T.is_definite and F.is_definite and not U.is_definite

    def test_negation(self):
        assert ~T is F and ~F is T and ~U is U

    def test_kleene_and(self):
        assert (T & T) is T
        assert (T & F) is F
        assert (F & U) is F  # false dominates
        assert (T & U) is U
        assert (U & U) is U

    def test_kleene_or(self):
        assert (F | F) is F
        assert (T | U) is T  # true dominates
        assert (F | U) is U
        assert (U | U) is U

    def test_de_morgan(self):
        for a in Trilean:
            for b in Trilean:
                assert ~(a & b) is (~a | ~b)
                assert ~(a | b) is (~a & ~b)
