"""Tests for the typed-M decision procedure (Theorems 4.2/4.9).

Cross-validations:

* Lemmas 4.7/4.8 (forward/backward <-> word equivalence over M) are
  checked on concrete structures of U(Delta);
* commutativity is checked semantically: over M, word implication is
  symmetric, and the typed decider must differ from the untyped one
  exactly there;
* decided answers agree with brute-force search over structures of
  U_f(Delta).
"""

from __future__ import annotations

import itertools

import pytest

from repro.checking import check
from repro.constraints import backward, forward, parse_constraint, parse_constraints, word
from repro.errors import ModelRestrictionError, PathNotInSchemaError
from repro.graph import Graph
from repro.paths import Path
from repro.reasoning import TypedImplicationDecider, implies_typed_m
from repro.reasoning.axioms import check_proof
from repro.reasoning.typed_m import word_image
from repro.reasoning.word import WordImplicationDecider
from repro.truth import Trilean
from repro.types.examples import chain_m_schema, feature_structure_schema
from repro.types.typecheck import check_type_constraint


def fs_structures(max_cats: int = 2):
    """Enumerate small members of U_f(Delta) for the feature-structure
    schema: choose cat/agr node counts and all field assignments."""
    for cat_count in range(1, max_cats + 1):
        cats = [f"cat{i}" for i in range(cat_count)]
        agrs = ["agr0"]
        for sentence, subject in itertools.product(cats, repeat=2):
            for heads in itertools.product(cats, repeat=cat_count):
                g = Graph(root="r")
                g.add_edge("r", "sentence", sentence)
                g.add_edge("r", "subject", subject)
                for cat, head in zip(cats, heads):
                    g.add_edge(cat, "head", head)
                    g.add_edge(cat, "agreement", "agr0")
                    g.add_edge(cat, "phon", f"phon-{cat}")
                for agr in agrs:
                    g.add_edge(agr, "number", "num")
                    g.add_edge(agr, "person", "pers")
                # Keep only fully reachable structures: unreachable
                # parts never influence root-anchored constraints, and
                # sort inference requires reachability.
                if g.reachable() == g.nodes:
                    yield g


class TestGuards:
    def test_requires_m_schema(self, bib_schema):
        with pytest.raises(ModelRestrictionError):
            TypedImplicationDecider(bib_schema, [])

    def test_paths_must_be_in_schema(self, fs_schema):
        with pytest.raises(PathNotInSchemaError):
            TypedImplicationDecider(
                fs_schema, parse_constraints("sentence.bogus => subject")
            )
        decider = TypedImplicationDecider(fs_schema, [])
        with pytest.raises(PathNotInSchemaError):
            decider.implies(parse_constraint("bogus => subject"))

    def test_backward_rhs_validated(self, fs_schema):
        # For a backward constraint the conclusion runs from the
        # hypothesis target, so prefix.lhs.rhs must be valid.
        with pytest.raises(PathNotInSchemaError):
            TypedImplicationDecider(
                fs_schema,
                [backward("sentence", "head", "number")],
            )


class TestWordImage:
    def test_forward_image(self):
        phi = forward("p", "a", "b")
        assert word_image(phi) == (Path.parse("p.a"), Path.parse("p.b"))

    def test_backward_image(self):
        phi = backward("p", "a", "w")
        assert word_image(phi) == (Path.parse("p"), Path.parse("p.a.w"))

    def test_word_image_is_identity(self):
        phi = word("a.b", "c")
        assert word_image(phi) == (Path.parse("a.b"), Path.parse("c"))


class TestDecisions:
    def test_symmetry_over_m(self, fs_schema):
        sigma = parse_constraints("sentence.head => subject")
        decider = TypedImplicationDecider(fs_schema, sigma)
        # The same query fails untyped (word implication is directed)...
        assert not WordImplicationDecider(sigma).implies(
            parse_constraint("subject => sentence.head")
        )
        # ...but holds over M (commutativity / Lemma 4.6).
        assert decider.implies(parse_constraint("subject => sentence.head"))

    def test_congruence_consequences(self, fs_schema):
        sigma = parse_constraints("sentence => subject")
        decider = TypedImplicationDecider(fs_schema, sigma)
        assert decider.implies(
            parse_constraint("sentence.head.agreement => subject.head.agreement")
        )

    def test_forward_and_word_forms_equivalent(self, fs_schema):
        # Lemma 4.7 at the decider level: the P_c form and its word
        # image are interchangeable as premises and queries.
        forward_form = parse_constraint("sentence :: head => head.head")
        word_form = word("sentence.head", "sentence.head.head")
        for premise in (forward_form, word_form):
            decider = TypedImplicationDecider(fs_schema, [premise])
            for query in (forward_form, word_form):
                assert decider.implies(query)

    def test_backward_and_word_forms_equivalent(self, fs_schema):
        backward_form = parse_constraint("sentence :: head ~> head")
        word_form = word("sentence", "sentence.head.head")
        for premise in (backward_form, word_form):
            decider = TypedImplicationDecider(fs_schema, [premise])
            for query in (backward_form, word_form):
                assert decider.implies(query), (premise, query)

    def test_non_implication(self, fs_schema):
        decider = TypedImplicationDecider(
            fs_schema, parse_constraints("sentence.head => subject")
        )
        assert not decider.implies(parse_constraint("sentence => subject"))
        assert not decider.implies(
            parse_constraint("sentence.agreement => subject.agreement")
        )

    def test_unsatisfiable_premises_imply_everything(self, fs_schema):
        # sentence (Cat) can never equal sentence.phon (string):
        # distinct sorts, so no structure of U(Delta) models Sigma.
        sigma = parse_constraints("sentence => sentence.phon")
        decider = TypedImplicationDecider(fs_schema, sigma)
        assert not decider.premises_satisfiable
        assert decider.implies(parse_constraint("sentence => subject"))
        result = implies_typed_m(
            fs_schema, sigma, parse_constraint("sentence => subject")
        )
        assert result.answer is Trilean.TRUE
        assert any("unsatisfiable" in note for note in result.notes)

    def test_type_inconsistent_query_not_implied(self, fs_schema):
        decider = TypedImplicationDecider(
            fs_schema, parse_constraints("sentence.head => subject")
        )
        assert not decider.implies(
            parse_constraint("sentence => sentence.phon")
        )

    def test_recursive_schema_loops(self):
        schema = chain_m_schema(2)
        sigma = parse_constraints("f1 => f1.f2.back")
        decider = TypedImplicationDecider(schema, sigma)
        # Unrolling the loop twice is still forced.
        assert decider.implies(
            parse_constraint("f1 => f1.f2.back.f2.back")
        )
        assert not decider.implies(parse_constraint("f1 => f1.f2.back.f2"))

    def test_equivalent_paths_enumeration(self, fs_schema):
        decider = TypedImplicationDecider(
            fs_schema, parse_constraints("sentence.head => subject")
        )
        out = decider.equivalent_paths("subject", max_length=2)
        assert Path.parse("sentence.head") in out
        assert Path.parse("subject") in out


class TestProofs:
    def test_proof_for_backward_query(self, fs_schema):
        sigma = parse_constraints("sentence :: head ~> head")
        decider = TypedImplicationDecider(fs_schema, sigma)
        query = parse_constraint("sentence :: head.head => ()")
        # head.head from sentence returns to sentence: head o head = id.
        assert decider.implies(query)
        proof = decider.prove(query)
        assert proof is not None
        assert check_proof(proof) == query

    def test_proof_uses_m_rules(self, fs_schema):
        sigma = parse_constraints("sentence.head => subject")
        decider = TypedImplicationDecider(fs_schema, sigma)
        query = parse_constraint("subject => sentence.head")
        proof = decider.prove(query)
        assert proof is not None
        assert check_proof(proof) == query
        assert proof.uses_only_sound_rules("M")
        assert not proof.uses_only_sound_rules("untyped")

    def test_no_proof_for_vacuous_implication(self, fs_schema):
        sigma = parse_constraints("sentence => sentence.phon")
        decider = TypedImplicationDecider(fs_schema, sigma)
        assert decider.prove(parse_constraint("sentence => subject")) is None


class TestAgainstStructures:
    """Semantic cross-validation on enumerated members of U_f(Delta)."""

    def _models_of(self, sigma):
        for g in fs_structures(max_cats=2):
            if all(check(g, phi).holds for phi in sigma):
                yield g

    @pytest.mark.parametrize(
        "sigma_text,phi_text,expected",
        [
            ("sentence.head => subject", "subject => sentence.head", True),
            ("sentence.head => subject", "sentence => subject", False),
            ("sentence => subject", "sentence.head => subject.head", True),
            ("sentence :: head ~> head", "sentence :: head.head => ()", True),
            ("sentence.head => sentence", "sentence.head.head => sentence", True),
        ],
    )
    def test_decider_matches_enumeration(
        self, fs_schema, sigma_text, phi_text, expected
    ):
        sigma = parse_constraints(sigma_text)
        phi = parse_constraint(phi_text)
        decider = TypedImplicationDecider(fs_schema, sigma)
        assert decider.implies(phi) == expected
        # Enumerated finite models must agree with a TRUE answer, and a
        # FALSE answer must be witnessed by some enumerated model.
        witnesses = list(self._models_of(sigma))
        assert witnesses, "enumeration produced no models of sigma"
        if expected:
            assert all(check(g, phi).holds for g in witnesses)
        else:
            assert any(not check(g, phi).holds for g in witnesses)

    def test_enumerated_structures_are_typed(self, fs_schema):
        for g in itertools.islice(fs_structures(max_cats=2), 12):
            assert check_type_constraint(fs_schema, g).ok
