"""Tests for constraint satisfaction (G |= phi) and batch validation."""

from __future__ import annotations

from repro.checking import check, check_all, violations
from repro.checking.engine import satisfies_all
from repro.constraints import backward, forward, parse_constraint, word
from repro.graph import Graph


class TestFigure1Semantics:
    """Every Section 1 constraint against the Figure 1 graph."""

    def test_extent_constraints_hold(self, fig1):
        assert check(fig1, parse_constraint("book.author => person")).holds
        assert check(fig1, parse_constraint("person.wrote => book")).holds
        assert check(fig1, parse_constraint("book.ref => book")).holds

    def test_inverse_constraints_hold(self, fig1):
        assert check(fig1, parse_constraint("book :: author ~> wrote")).holds
        assert check(fig1, parse_constraint("person :: wrote ~> author")).holds

    def test_section1_set_holds(self, penn_bib, section1_constraints):
        report = check_all(penn_bib, section1_constraints)
        assert report.ok, report.summary()

    def test_local_inverse_on_mit(self, penn_bib):
        assert check(
            penn_bib, parse_constraint("MIT.book :: author ~> wrote")
        ).holds

    def test_violation_detected_with_witness(self, fig1):
        fig1.add_edge("r", "book", "rogue")
        fig1.add_edge("rogue", "author", "stranger")
        phi = parse_constraint("book.author => person")
        result = check(fig1, phi)
        assert not result.holds
        assert ("r", "stranger") in result.violating_pairs

    def test_backward_violation_witness(self, fig1):
        fig1.add_edge("book1", "author", "lonely")
        phi = parse_constraint("book :: author ~> wrote")
        result = check(fig1, phi)
        assert not result.holds
        assert ("book1", "lonely") in result.violating_pairs


class TestSemanticsEdgeCases:
    def test_vacuous_when_prefix_empty_image(self):
        g = Graph(root="r")
        assert check(g, forward("ghost", "a", "b")).holds

    def test_vacuous_when_hypothesis_empty(self):
        g = Graph(root="r")
        g.add_edge("r", "p", "x")
        assert check(g, forward("p", "a", "b")).holds

    def test_empty_prefix_means_root(self):
        g = Graph(root="r")
        g.add_edge("r", "a", "x")
        # word(a, b): a(r, x) holds, b(r, x) doesn't.
        assert not check(g, word("a", "b")).holds
        g.add_edge("r", "b", "x")
        assert check(g, word("a", "b")).holds

    def test_empty_hypothesis_path(self):
        # p :: () => q means q(x, x) for every p-node x.
        g = Graph(root="r")
        g.add_edge("r", "p", "x")
        phi = forward("p", "", "q")
        assert not check(g, phi).holds
        g.add_edge("x", "q", "x")
        assert check(g, phi).holds

    def test_empty_conclusion_forward(self):
        # p :: a => () means every a-successor of x is x itself.
        g = Graph(root="r")
        g.add_edge("r", "p", "x")
        g.add_edge("x", "a", "x")
        phi = forward("p", "a", "")
        assert check(g, phi).holds
        g.add_edge("x", "a", "other")
        assert not check(g, phi).holds

    def test_empty_conclusion_backward(self):
        # Backward with empty conclusion: epsilon(y, x), i.e. x == y.
        g = Graph(root="r")
        g.add_edge("r", "p", "x")
        g.add_edge("x", "a", "x")
        assert check(g, backward("p", "a", "")).holds

    def test_backward_direction_really_reversed(self):
        g = Graph(root="r")
        g.add_edge("r", "p", "x")
        g.add_edge("x", "a", "y")
        g.add_edge("x", "w", "y")  # forward direction only
        assert check(g, forward("p", "a", "w")).holds
        assert not check(g, backward("p", "a", "w")).holds
        g.add_edge("y", "w", "x")
        assert check(g, backward("p", "a", "w")).holds

    def test_multiple_prefix_witnesses(self):
        g = Graph(root="r")
        for i in (1, 2):
            g.add_edge("r", "p", f"x{i}")
            g.add_edge(f"x{i}", "a", f"y{i}")
        g.add_edge("x1", "b", "y1")  # only x1 satisfies the conclusion
        phi = forward("p", "a", "b")
        result = check(g, phi)
        assert not result.holds
        assert result.violating_pairs == (("x2", "y2"),)
        assert result.witnesses == 2

    def test_violations_limit(self):
        g = Graph(root="r")
        for i in range(5):
            g.add_edge("r", "a", f"x{i}")
        out = violations(g, word("a", "b"), limit=2)
        assert len(out) == 2


class TestBatchEngine:
    def test_report_aggregates(self, fig1):
        from repro.constraints import parse_constraints

        constraints = parse_constraints(
            """
            book.author => person
            book.title => person
            """
        )
        report = check_all(fig1, constraints)
        assert not report.ok
        assert len(report.failed) == 1
        assert report.total_witnesses > 0
        assert "FAIL" in report.summary()

    def test_satisfies_all_short_circuit(self, fig1):
        from repro.constraints import parse_constraints

        good = parse_constraints("book.author => person")
        bad = parse_constraints("book.title => person\nbook.author => person")
        assert satisfies_all(fig1, good)
        assert not satisfies_all(fig1, bad)

    def test_empty_constraint_set(self, fig1):
        assert check_all(fig1, []).ok
