"""Unit and property tests for the Path word type."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PathSyntaxError
from repro.paths import EPSILON, Path

labels = st.text(
    alphabet="abcdxyzK", min_size=1, max_size=4
)
paths = st.lists(labels, min_size=0, max_size=6).map(Path)


class TestConstruction:
    def test_empty(self):
        assert Path.empty().is_empty()
        assert len(Path.empty()) == 0
        assert Path.empty() is EPSILON

    def test_parse_simple(self):
        assert Path.parse("book.author").labels == ("book", "author")

    def test_parse_single(self):
        assert Path.parse("book").labels == ("book",)

    @pytest.mark.parametrize("text", ["", "()", "eps", "epsilon", "  () "])
    def test_parse_epsilon_spellings(self, text):
        assert Path.parse(text).is_empty()

    @pytest.mark.parametrize("bad", ["a..b", "a b", ".a", "a.", "a.(b)"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(PathSyntaxError):
            Path.parse(bad)

    def test_labels_validated(self):
        with pytest.raises(PathSyntaxError):
            Path(["ok", "not ok"])
        with pytest.raises(PathSyntaxError):
            Path([42])  # type: ignore[list-item]

    def test_coerce(self):
        p = Path.parse("a.b")
        assert Path.coerce(p) is p
        assert Path.coerce("a.b") == p
        assert Path.coerce(["a", "b"]) == p

    def test_single(self):
        assert Path.single("K") == Path.parse("K")


class TestAlgebra:
    def test_concat(self):
        assert Path.parse("a.b") * Path.parse("c") == Path.parse("a.b.c")

    def test_concat_string(self):
        assert Path.parse("a") * "b.c" == Path.parse("a.b.c")

    def test_concat_identity(self):
        p = Path.parse("a.b")
        assert p * EPSILON == p
        assert EPSILON * p == p

    def test_prepend_append(self):
        assert Path.parse("b").prepend("a") == Path.parse("a.b")
        assert Path.parse("a").append("b") == Path.parse("a.b")

    def test_prefix_relation(self):
        assert Path.parse("a").is_prefix_of("a.b")
        assert EPSILON.is_prefix_of("a.b")
        assert Path.parse("a.b").is_prefix_of("a.b")
        assert not Path.parse("b").is_prefix_of("a.b")
        assert not Path.parse("a.b.c").is_prefix_of("a.b")

    def test_proper_prefix(self):
        assert Path.parse("a").is_proper_prefix_of("a.b")
        assert not Path.parse("a.b").is_proper_prefix_of("a.b")

    def test_strip_prefix(self):
        assert Path.parse("a.b.c").strip_prefix("a") == Path.parse("b.c")
        with pytest.raises(ValueError):
            Path.parse("a.b").strip_prefix("b")

    def test_prefixes_matches_paper_example(self):
        # Section 2.1: the prefixes of person.wrote.ref are epsilon,
        # person, person.wrote and the path itself.
        path = Path.parse("person.wrote.ref")
        assert list(path.prefixes()) == [
            EPSILON,
            Path.parse("person"),
            Path.parse("person.wrote"),
            path,
        ]

    def test_suffixes(self):
        assert list(Path.parse("a.b").suffixes()) == [
            Path.parse("a.b"),
            Path.parse("b"),
            EPSILON,
        ]

    def test_first_last(self):
        p = Path.parse("a.b.c")
        assert p.first() == "a"
        assert p.last() == "c"
        with pytest.raises(IndexError):
            EPSILON.first()
        with pytest.raises(IndexError):
            EPSILON.last()

    def test_slicing(self):
        p = Path.parse("a.b.c")
        assert p[:-1] == Path.parse("a.b")
        assert p[1] == "b"

    def test_alphabet(self):
        assert Path.parse("a.b.a").alphabet() == frozenset({"a", "b"})


class TestOrderingAndHashing:
    def test_shortlex(self):
        assert Path.parse("z") < Path.parse("a.a")
        assert Path.parse("a.a") < Path.parse("a.b")
        assert EPSILON < Path.parse("a")

    def test_hash_consistency(self):
        assert hash(Path.parse("a.b")) == hash(Path(["a", "b"]))

    def test_set_membership(self):
        s = {Path.parse("a"), Path.parse("a.b")}
        assert Path(["a"]) in s


class TestRendering:
    def test_str_roundtrip(self):
        for text in ["a", "a.b.c", "()"]:
            assert str(Path.parse(text)) == text

    def test_formula_empty(self):
        assert EPSILON.to_formula("x", "y") == "x = y"

    def test_formula_single(self):
        assert Path.parse("a").to_formula("x", "y") == "a(x, y)"

    def test_formula_nested(self):
        assert (
            Path.parse("a.b").to_formula("r", "x")
            == "exists z1 (a(r, z1) and b(z1, x))"
        )


class TestProperties:
    @given(paths, paths, paths)
    def test_concat_associative(self, p, q, r):
        assert (p * q) * r == p * (q * r)

    @given(paths, paths)
    def test_concat_length(self, p, q):
        assert len(p * q) == len(p) + len(q)

    @given(paths)
    def test_parse_str_roundtrip(self, p):
        assert Path.parse(str(p)) == p

    @given(paths, paths)
    def test_prefix_strip_inverse(self, p, q):
        assert (p * q).strip_prefix(p) == q
        assert p.is_prefix_of(p * q)

    @given(paths)
    def test_prefix_count(self, p):
        assert len(list(p.prefixes())) == len(p) + 1

    @given(paths, paths)
    def test_shortlex_total(self, p, q):
        assert (p < q) + (q < p) + (p == q) == 1
