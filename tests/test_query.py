"""Tests for regular path queries and the constraint-aware optimizer."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import parse_constraints
from repro.graph import random_graph
from repro.graph.builders import scaled_bibliography
from repro.paths import Path
from repro.query import WordQueryOptimizer, evaluate_rpq, evaluate_word
from repro.reasoning.chase import chase


class TestRPQ:
    def test_word_query_matches_eval_path(self, fig1):
        for text in ["book", "book.author", "person.wrote.ref", "nope"]:
            assert evaluate_word(fig1, text).answers == fig1.eval_path(text)

    def test_star_query(self, fig1):
        result = evaluate_rpq(fig1, "book.(ref)*")
        # All books plus everything reachable by ref-chains.
        assert result.answers == fig1.eval_path("book") | fig1.eval_path(
            "book.ref"
        )

    def test_alternation(self, fig1):
        result = evaluate_rpq(fig1, "book.(author|title)")
        assert result.answers == fig1.eval_path("book.author") | fig1.eval_path(
            "book.title"
        )

    def test_start_override(self, fig1):
        result = evaluate_rpq(fig1, "author", start="book2")
        assert result.answers == frozenset({"person1", "person2"})

    def test_statistics_populated(self, fig1):
        result = evaluate_rpq(fig1, "book.author.wrote")
        assert result.product_states_visited > 0
        assert result.edges_traversed > 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 10), st.integers(0, 10_000))
    def test_rpq_star_is_reachability(self, n, seed):
        g = random_graph(n, ["a"], seed=seed)
        result = evaluate_rpq(g, "a*")
        assert result.answers == g.reachable()


class TestOptimizer:
    def sigma(self):
        return parse_constraints(
            """
            book.author => person
            person.wrote => book
            book.ref => book
            """
        )

    def test_subsumption(self):
        optimizer = WordQueryOptimizer(self.sigma())
        assert optimizer.subsumes("book.author", "person")
        assert not optimizer.subsumes("person", "book.author")

    def test_union_pruning(self):
        optimizer = WordQueryOptimizer(self.sigma())
        report = optimizer.optimize_union(
            ["book.author", "person", "book.author.wrote.author"]
        )
        assert report.optimized == (Path.parse("person"),)
        assert report.branches_saved == 2
        assert len(report.pruned) == 2

    def test_rewrite_to_shorter_equivalent(self):
        # With ref collapsing being an equivalence under these two
        # constraints, long ref chains rewrite to the short form.
        sigma = parse_constraints("book.ref => book\nbook => book.ref")
        optimizer = WordQueryOptimizer(sigma)
        best = optimizer.shortest_equivalent("book.ref.ref.ref")
        assert best == Path.parse("book")

    def test_no_unsound_rewrite(self):
        # book.author => person alone is one-directional: person must
        # NOT be rewritten into book.author or vice versa.
        optimizer = WordQueryOptimizer(parse_constraints("book.author => person"))
        assert optimizer.shortest_equivalent("book.author") == Path.parse(
            "book.author"
        )

    def test_mutual_subsumption_keeps_one(self):
        sigma = parse_constraints("a => b\nb => a")
        optimizer = WordQueryOptimizer(sigma)
        report = optimizer.optimize_union(["a", "b"], rewrite=False)
        assert report.optimized == (Path.parse("a"),)

    def test_evaluation_answers_preserved(self):
        """Soundness end-to-end: on graphs *satisfying* Sigma, the
        optimized union returns exactly the original answers."""
        sigma = self.sigma()
        graph = scaled_bibliography(30, 10, seed=2)
        # Make sure the graph satisfies Sigma (repair with the chase).
        graph = chase(graph, sigma, max_steps=10_000).graph
        optimizer = WordQueryOptimizer(sigma)
        branches = [
            "book.author",
            "person",
            "book.ref.author",
            "book.author.wrote.author",
        ]
        optimized_answers, _, report = optimizer.evaluate_union(
            graph, branches, optimize=True
        )
        plain_answers, _, _ = optimizer.evaluate_union(
            graph, branches, optimize=False
        )
        assert optimized_answers == plain_answers
        assert report is not None and report.branches_saved >= 1

    def test_report_accounting(self):
        optimizer = WordQueryOptimizer(self.sigma())
        report = optimizer.optimize_union(["book.author", "person"])
        assert report.labels_saved >= 0
        assert report.notes


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.lists(st.sampled_from("ab"), min_size=1, max_size=2).map(Path),
            st.lists(st.sampled_from("ab"), min_size=1, max_size=2).map(Path),
        ),
        max_size=2,
    ),
    st.lists(
        st.lists(st.sampled_from("ab"), min_size=1, max_size=3).map(Path),
        min_size=1,
        max_size=3,
    ),
    st.integers(0, 1000),
)
def test_optimizer_sound_on_chased_graphs(rules, branches, seed):
    """Property: optimize_union never changes answers on any graph that
    satisfies Sigma."""
    from repro.constraints import word

    sigma = [word(l, r) for l, r in rules]
    graph = random_graph(5, ["a", "b"], seed=seed)
    outcome = chase(graph, sigma, max_steps=300)
    if not outcome.fixpoint:
        return  # divergent repair; property only claims chased graphs
    graph = outcome.graph
    optimizer = WordQueryOptimizer(sigma)
    optimized, _, _ = optimizer.evaluate_union(graph, branches, optimize=True)
    plain, _, _ = optimizer.evaluate_union(graph, branches, optimize=False)
    assert optimized == plain


class TestRegressions:
    """Pinned behaviors from the query-layer bugfix pass."""

    def test_edges_traversed_counts_each_edge_once(self, fig1):
        # figure 1 has 3 book-, 1 ref- and 4 author-edges reachable by
        # book.(ref)*.author; the product walk must count each exactly
        # once even when several NFA states visit the same node.
        result = evaluate_rpq(fig1, "book.(ref)*.author")
        assert result.edges_traversed == 8

    def test_edges_never_exceed_graph_total(self, fig1):
        total = fig1.edge_count()
        for pattern in ("book.(ref)*.author", "(book|person)*", "book"):
            assert evaluate_rpq(fig1, pattern).edges_traversed <= total

    def test_mutual_subsumption_clique_keeps_shortlex_least(self):
        sigma = parse_constraints("a => b\nb => c\nc => a")
        optimizer = WordQueryOptimizer(sigma)
        report = optimizer.optimize_union(["b", "c", "a"], rewrite=False)
        assert report.optimized == (Path.parse("a"),)
        assert report.branches_saved == 2
        assert len(report.pruned) == 2
        absorbers = {str(a) for _, a in report.pruned}
        assert absorbers == {"a"}

    def test_egd_sigma_is_conservative_not_fatal(self):
        # a => a.a diverges the chase, so with the EGD present the word
        # decider cannot settle the implication; the optimizer must keep
        # the branch and say why, not crash.
        sigma = parse_constraints("a => a.a\nb.b => ()")
        optimizer = WordQueryOptimizer(sigma, deadline=2.0)
        report = optimizer.optimize_union(["a.b", "c"], rewrite=False)
        assert set(report.optimized) == {Path.parse("a.b"), Path.parse("c")}
        assert report.branches_saved == 0
        assert any("unsettled" in note for note in report.notes)

    def test_duplicates_recorded_as_self_absorption(self):
        optimizer = WordQueryOptimizer(())
        report = optimizer.optimize_union(["a", "a", "a", "b"])
        dup = Path.parse("a")
        assert report.pruned.count((dup, dup)) == 2
        assert report.branches_saved == 2
        assert len(report.pruned) == report.branches_saved

    def test_pruned_matches_branches_saved_with_rewrites(self):
        sigma = parse_constraints(
            "book.author => person\nperson.wrote => book"
        )
        optimizer = WordQueryOptimizer(sigma)
        report = optimizer.optimize_union(
            ["book.author", "book.author", "person", "book.author.wrote"]
        )
        assert len(report.pruned) == report.branches_saved
        assert len(report.optimized) + report.branches_saved == len(
            report.original
        )

    def test_shortest_equivalent_stable_under_extra_length(self):
        # b.b == a.a.a == c in both directions: the optimum is "c" and
        # allowing longer candidate words must never change it (shortlex
        # order means a longer word cannot beat a shorter one).
        sigma = parse_constraints(
            "b.b => a.a.a\na.a.a => c\nc => a.a.a\na.a.a => b.b"
        )
        optimizer = WordQueryOptimizer(sigma)
        best = optimizer.shortest_equivalent(Path.parse("b.b"))
        assert best == Path.parse("c")
        for extra in (1, 2):
            assert (
                optimizer.shortest_equivalent(
                    Path.parse("b.b"), max_extra_length=extra
                )
                == best
            )

    def test_optimized_union_equivalent_on_figure1(self, fig1):
        sigma = parse_constraints(
            "book.author => person\nperson.wrote => book"
        )
        optimizer = WordQueryOptimizer(sigma)
        branches = ["book.author", "person", "person", "book.author.wrote"]
        optimized, _, report = optimizer.evaluate_union(
            fig1, branches, optimize=True
        )
        plain, _, _ = optimizer.evaluate_union(fig1, branches, optimize=False)
        assert optimized == plain
        assert report is not None
        assert len(report.pruned) == report.branches_saved
