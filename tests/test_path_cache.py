"""Tests for the generation-stamped path-evaluation cache.

The contract under test: ``graph.path_cache`` returns exactly what the
raw evaluators return, at every generation, no matter how the graph is
mutated between queries — while actually serving repeats from memory
(nonzero hits) within a generation.
"""

from __future__ import annotations

import random

import pytest

from repro.checking import IncrementalChecker
from repro.checking.satisfaction import violations
from repro.constraints import parse_constraints
from repro.graph import Graph, PathCache
from repro.graph.builders import figure1_graph
from repro.paths import Path


class TestGeneration:
    def test_mutators_bump_generation(self):
        g = Graph(root="r")
        gen = g.generation
        g.add_edge("r", "a", "n")
        assert g.generation > gen

        gen = g.generation
        g.remove_edge("r", "a", "n")
        assert g.generation > gen

        gen = g.generation
        g.add_node("m")
        assert g.generation > gen

        gen = g.generation
        g.set_sort("m", "thing")
        assert g.generation > gen

        g.add_edge("r", "a", "x")
        g.add_edge("x", "a", "m")
        gen = g.generation
        g.add_path("r", "b.c", dst="m")
        assert g.generation > gen

        gen = g.generation
        g.merge_nodes("x", "m")
        assert g.generation > gen

    def test_generation_monotone_over_chase_style_surgery(self):
        g = figure1_graph()
        seen = [g.generation]
        for i in range(5):
            g.add_edge("r", "extra", g.fresh_node())
            seen.append(g.generation)
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)


class TestPathCacheBasics:
    def _one_edge_graph(self):
        g = Graph(root="r")
        g.add_edge("r", "a", "n")
        return g

    def test_results_match_raw_evaluators(self):
        g = figure1_graph()
        cache = g.path_cache
        for path in ["book", "book.author", "person.wrote", "nope"]:
            assert cache.eval_path(path) == g.eval_path(path)
        person = next(iter(g.eval_path("person")))
        assert cache.eval_path_backward("person", person) == (
            g.eval_path_backward("person", person)
        )
        starts = g.eval_path("book")
        assert cache.eval_path_from_set("author", starts) == (
            g.eval_path_from_set("author", starts)
        )

    def test_hits_and_misses_counted(self):
        g = self._one_edge_graph()
        cache = g.path_cache
        assert cache.eval_path("a") == frozenset({"n"})
        assert cache.eval_path("a") == frozenset({"n"})
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.requests == 2
        assert 0 < cache.stats.hit_rate < 1

    def test_empty_image_is_cached_too(self):
        g = self._one_edge_graph()
        cache = g.path_cache
        assert cache.eval_path("ghost") == frozenset()
        assert cache.eval_path("ghost") == frozenset()
        assert cache.stats.hits == 1

    def test_mutation_invalidates(self):
        g = self._one_edge_graph()
        cache = g.path_cache
        assert cache.eval_path("a") == frozenset({"n"})
        g.add_edge("r", "a", "m")
        assert cache.eval_path("a") == frozenset({"n", "m"})
        g.remove_edge("r", "a", "n")
        assert cache.eval_path("a") == frozenset({"m"})
        assert cache.stats.invalidations > 0

    def test_satisfies_path_membership(self):
        g = self._one_edge_graph()
        cache = g.path_cache
        assert cache.satisfies_path("a", "r", "n")
        assert not cache.satisfies_path("a", "r", "r")
        # Both probes share one image.
        assert cache.stats.hits == 1

    def test_lru_eviction_bounds_entries(self):
        g = Graph(root="r")
        for i in range(10):
            g.add_edge("r", f"l{i}", f"n{i}")
        cache = g.configure_path_cache(maxsize=4)
        for i in range(10):
            cache.eval_path(f"l{i}")
        assert len(cache) == 4
        assert cache.stats.evictions == 6

    def test_maxsize_zero_is_pass_through(self):
        g = self._one_edge_graph()
        cache = g.configure_path_cache(maxsize=0)
        for _ in range(3):
            assert cache.eval_path("a") == frozenset({"n"})
        assert cache.stats.hits == 0
        assert cache.stats.misses == 3
        assert len(cache) == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            PathCache(Graph(root="r"), maxsize=-1)

    def test_cache_stats_hook(self):
        g = self._one_edge_graph()
        g.path_cache.eval_path("a")
        stats = g.cache_stats()
        assert stats.misses == 1
        assert g.path_cache.cache_stats()["misses"] == 1

    def test_copy_gets_its_own_cache(self):
        g = self._one_edge_graph()
        g.path_cache.eval_path("a")
        h = g.copy()
        assert h.cache_stats().requests == 0
        h.add_edge("r", "a", "m")
        assert g.path_cache.eval_path("a") == frozenset({"n"})
        assert h.path_cache.eval_path("a") == frozenset({"n", "m"})

    def test_copy_inherits_cache_configuration(self):
        g = self._one_edge_graph()
        g.configure_path_cache(maxsize=0)
        h = g.copy()
        h.path_cache.eval_path("a")
        h.path_cache.eval_path("a")
        assert h.cache_stats().hits == 0


SIGMA_TEXT = """
book :: author ~> wrote
person :: wrote ~> author
book.author => person
person.wrote => book
"""


class TestNoStaleImages:
    """Acceptance: mutation between queries never serves a stale image.

    Cached ``violations()`` must equal the from-scratch ground truth of
    ``IncrementalChecker.revalidate()`` (and of an uncached clone)
    after every mutation of a random edit script.
    """

    def test_random_edit_script_never_stale(self):
        rng = random.Random(20260806)
        sigma = parse_constraints(SIGMA_TEXT)
        g = Graph(root="r")
        checker = IncrementalChecker(g, sigma)
        nodes = ["r"]
        labels = ["book", "person", "author", "wrote"]
        edges: list[tuple] = []

        for step in range(120):
            if edges and rng.random() < 0.25:
                src, label, dst = edges.pop(rng.randrange(len(edges)))
                g.remove_edge(src, label, dst)
            else:
                src = rng.choice(nodes)
                label = rng.choice(labels)
                if rng.random() < 0.5 or len(nodes) < 3:
                    dst = f"n{step}"
                    nodes.append(dst)
                else:
                    dst = rng.choice(nodes)
                g.add_edge(src, label, dst)
                if (src, label, dst) not in edges:
                    edges.append((src, label, dst))

            # Cached query right after the mutation...
            cached = {c: set(violations(g, c)) for c in sigma}
            # ...against an uncached clone of the same structure...
            clone = g.copy()
            clone.configure_path_cache(maxsize=0)
            uncached = {c: set(violations(clone, c)) for c in sigma}
            assert cached == uncached, f"stale image served at step {step}"
            # ...and against the incremental checker's from-scratch
            # ground truth (revalidate recomputes everything).
            checker.revalidate()
            truth = {
                c: set(pairs)
                for c, pairs in checker.current_violations().items()
            }
            assert {c: p for c, p in cached.items() if p} == truth

    def test_interleaved_queries_and_mutations_hit_cache(self):
        g = figure1_graph()
        cache = g.path_cache
        before = g.eval_path("book.author")
        assert cache.eval_path("book.author") == before
        assert cache.eval_path("book.author") == before
        assert cache.stats.hits >= 1
        extra = g.add_edge("r", "book", g.fresh_node())
        author = g.add_edge(extra, "author", g.fresh_node())
        after = cache.eval_path("book.author")
        assert after == before | {author}


class TestSinglePassCheck:
    def test_check_counts_and_violations_consistent(self):
        from repro.checking.satisfaction import check
        from repro.constraints import parse_constraint

        g = figure1_graph()
        phi = parse_constraint("book.author => person")
        result = check(g, phi)
        assert result.holds
        # Empty prefix: the sole witness source is the root, so the
        # count is the size of the hypothesis image.
        assert result.witnesses == len(g.eval_path("book.author"))

    def test_backward_conclusion_batched_matches_per_pair(self):
        from repro.constraints.ast import backward

        g = figure1_graph()
        phi = backward("book", "author", "wrote")
        batched = set(violations(g, phi))
        per_pair = set()
        for x in g.eval_path("book"):
            for y in g.eval_path("author", start=x):
                if not g.satisfies_path("wrote", y, x):
                    per_pair.add((x, y))
        assert batched == per_pair
