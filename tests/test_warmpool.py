"""Warm persistent pool + shared-memory transport: reuse and cleanup.

Satellite (c) of the cost-model PR:

* two consecutive pooled solves must reuse the same worker processes
  (the warm pool survives across ``solve()`` calls — no respawn tax on
  the second solve);
* a worker crash mid-shard must not leak a single shared-memory
  segment, because the parent owns every segment and unlinks in a
  ``finally`` around the race.

Pool execution is forced (``execution="pool"``) throughout: on a small
instance the cost model would otherwise — correctly — refuse to spawn
processes at all.
"""

import glob
import os

import pytest

from repro.constraints import parse_constraint, parse_constraints
from repro.reasoning import Context, ImplicationProblem
from repro.reasoning.costmodel import ExecMode
from repro.reasoning.faultinject import FaultPlan
from repro.reasoning.portfolio import run_portfolio
from repro.reasoning.runtime import (
    retire_warm_pool,
    warm_pool_pids,
    warm_pool_stats,
)
from repro.reasoning.shm import active_owned_segments
from repro.truth import Trilean

# Same divergent-chase instance as the fault-tolerance suite: the
# counter-model engines must actually run (FALSE via a 3-node model).
SIGMA = (
    "() => K\n"
    "K :: () => a.a.a\n"
    "K :: a.a.a => ()\n"
    "a :: a => a"
)
PHI = "K :: a => ()"


def _problem():
    return ImplicationProblem(
        parse_constraints(SIGMA),
        parse_constraint(PHI),
        Context.SEMISTRUCTURED,
    )


def _pooled_solve(**kwargs):
    return run_portfolio(_problem(), jobs=2, execution="pool", **kwargs)


def _shm_leftovers():
    """repro-owned names still present in the kernel's shm namespace."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return glob.glob("/dev/shm/repro-scan-*") + glob.glob(
        "/dev/shm/repro-cancel-*"
    )


@pytest.fixture(autouse=True)
def _cold_start():
    retire_warm_pool()
    yield
    retire_warm_pool()


class TestWarmReuse:
    def test_two_solves_reuse_the_same_workers(self):
        first = _pooled_solve()
        pids_after_first = warm_pool_pids()
        stats_first = warm_pool_stats()
        second = _pooled_solve()
        pids_after_second = warm_pool_pids()
        stats_second = warm_pool_stats()

        assert first.answer is Trilean.FALSE
        assert second.answer is Trilean.FALSE
        assert first.execution.mode is ExecMode.POOL

        # The pool survived the first solve and served the second.
        assert pids_after_first, "warm pool empty after a pooled solve"
        assert pids_after_first == pids_after_second
        assert stats_first["alive"] and not stats_first["leased"]
        # Exactly one lease reused the pool, and nothing respawned.
        assert stats_second["reuses"] == stats_first["reuses"] + 1
        assert stats_second["spawns"] == stats_first["spawns"]

    def test_second_solve_sees_a_warm_decision(self):
        _pooled_solve()
        warmed = _pooled_solve()
        assert warmed.execution.warm

    def test_retire_reaps_the_workers(self):
        _pooled_solve()
        pids = warm_pool_pids()
        assert pids
        retire_warm_pool()
        assert warm_pool_pids() == ()
        assert not warm_pool_stats()["alive"]
        for pid in pids:
            # A reaped child is gone (or a zombie about to be joined);
            # os.kill(pid, 0) on a live unrelated reuse of the pid is
            # astronomically unlikely within this window.
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue

    def test_no_segments_survive_a_clean_solve(self):
        _pooled_solve()
        assert active_owned_segments() == ()
        assert _shm_leftovers() == []


class TestAtexitBackstop:
    """The interpreter-exit backstop for long-lived processes.

    ``repro.reasoning.runtime`` registers :func:`retire_warm_pool`
    with ``atexit`` at import time, so a daemon, REPL user or crashed
    script that never retires explicitly still cannot leak worker
    processes.  Explicit retirement must compose with the backstop:
    retiring twice (or the atexit hook firing after a clean drain
    already retired) is a no-op, never an error.
    """

    def test_retire_is_idempotent(self):
        _pooled_solve()
        assert warm_pool_pids()
        retire_warm_pool()
        stats_after_first = warm_pool_stats()
        # The backstop firing later (atexit calls the same function)
        # finds nothing to do and must not raise.
        retire_warm_pool()
        retire_warm_pool()
        assert warm_pool_pids() == ()
        assert warm_pool_stats() == stats_after_first

    def test_retire_on_cold_process_is_a_noop(self):
        retire_warm_pool()
        retire_warm_pool()
        assert not warm_pool_stats()["alive"]

    def test_atexit_backstop_reaps_on_unclean_exit(self, tmp_path):
        # A child process warms the pool and exits WITHOUT retiring;
        # the atexit registration must reap the workers anyway.
        import subprocess
        import sys
        import time

        script = (
            "import sys\n"
            "from repro.constraints import parse_constraint, "
            "parse_constraints\n"
            "from repro.reasoning import Context, ImplicationProblem\n"
            "from repro.reasoning.portfolio import run_portfolio\n"
            "from repro.reasoning.runtime import warm_pool_pids\n"
            f"sigma = parse_constraints({SIGMA!r})\n"
            f"phi = parse_constraint({PHI!r})\n"
            "problem = ImplicationProblem(sigma, phi, "
            "Context.SEMISTRUCTURED)\n"
            "run_portfolio(problem, jobs=2, execution='pool')\n"
            "pids = warm_pool_pids()\n"
            "assert pids, 'no warm pool to leak'\n"
            "print(' '.join(map(str, pids)))\n"
            # no retire_warm_pool(): the atexit backstop is on trial
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env={
                **__import__("os").environ,
                "PYTHONPATH": "src",
                "REPRO_CACHE_DIR": str(tmp_path / "cache"),
            },
        )
        assert proc.returncode == 0, proc.stderr
        pids = [int(p) for p in proc.stdout.split()]
        assert pids
        # The child has exited; its workers must be gone too (allow a
        # short grace for the OS to finish reaping).
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            alive = []
            for pid in pids:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    continue
                alive.append(pid)
            if not alive:
                break
            time.sleep(0.05)
        assert not alive, f"atexit backstop leaked workers: {alive}"


@pytest.mark.stress
class TestCrashCleanup:
    def test_os_exit_crash_mid_shard_leaks_no_segments(self):
        # kill:1 takes out a worker while shards are in flight; the
        # supervisor respawns and the verdict survives — and every
        # parent-owned segment is unlinked on the way out.
        result = _pooled_solve(fault_plan=FaultPlan.from_spec("kill:1"))
        assert result.answer is Trilean.FALSE
        assert not result.faults.clean
        assert active_owned_segments() == ()
        assert _shm_leftovers() == []

    def test_repeated_crashes_still_leak_nothing(self):
        for spec in ("kill:0", "kill:0,kill:1", "raise:0,kill:2"):
            result = _pooled_solve(fault_plan=FaultPlan.from_spec(spec))
            assert result.answer in (Trilean.FALSE, Trilean.UNKNOWN)
            assert active_owned_segments() == ()
            assert _shm_leftovers() == []
