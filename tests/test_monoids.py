"""Tests for the monoid substrate: presentations, finite monoids,
homomorphisms, and the word-problem semi-decider."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monoids import (
    FiniteMonoid,
    Homomorphism,
    MonoidPresentation,
    decide_word_problem,
)
from repro.monoids.finite import find_separating_homomorphism
from repro.monoids.presentation import (
    bicyclic_presentation,
    commutative_presentation,
    cyclic_presentation,
    free_presentation,
    idempotent_presentation,
)
from repro.monoids.word_problem import (
    abelianization_separates,
    check_thue_derivation,
    find_thue_derivation,
    lattice_contains,
    letter_counts,
)
from repro.paths import Path
from repro.truth import Trilean


class TestPresentation:
    def test_alphabet_validation(self):
        with pytest.raises(ValueError):
            MonoidPresentation("", [])
        with pytest.raises(ValueError):
            MonoidPresentation("ab", [("a.c", "b")])

    def test_one_step_rewrites_any_position(self):
        pres = MonoidPresentation("ab", [("a.b", "b.a")])
        rewrites = set(pres.one_step_rewrites(Path.parse("a.b.a.b")))
        # Both occurrences of ab rewrite, plus ba occurrences reversed.
        assert Path.parse("b.a.a.b") in rewrites
        assert Path.parse("a.b.b.a") in rewrites

    def test_one_step_rewrites_empty_pattern(self):
        pres = MonoidPresentation("a", [("a.a.a", "")])
        rewrites = set(pres.one_step_rewrites(Path.parse("a")))
        # Inserting aaa at any position of "a".
        assert Path(["a"] * 4) in rewrites

    def test_words_up_to(self):
        pres = free_presentation("ab")
        words = list(pres.words_up_to(2))
        assert len(words) == 1 + 2 + 4
        assert words[0].is_empty()


class TestFiniteMonoid:
    def test_table_validation(self):
        with pytest.raises(ValueError):
            FiniteMonoid(((1,),))  # identity law broken
        with pytest.raises(ValueError):
            # Non-associative magma on 3 elements.
            FiniteMonoid(((0, 1, 2), (1, 2, 2), (2, 2, 1)))

    def test_cyclic(self):
        z3 = FiniteMonoid.cyclic(3)
        assert z3.multiply(1, 2) == 0
        assert z3.product([1, 1, 1]) == 0

    def test_boolean_and(self):
        m = FiniteMonoid.boolean_and()
        assert m.multiply(1, 1) == 1
        assert m.multiply(0, 1) == 1

    def test_transformation_monoid_valid(self):
        for points in (2, 3):
            t = FiniteMonoid.transformation(points)
            assert t.order == points**points
            # Constructor would raise if the table were invalid; check
            # explicitly anyway.
            FiniteMonoid(t.table)

    def test_submonoid(self):
        z6 = FiniteMonoid.cyclic(6)
        assert z6.submonoid([2]) == frozenset({0, 2, 4})

    def test_all_of_order_2(self):
        tables = list(FiniteMonoid.all_of_order(2))
        # Z2 and the boolean-and semilattice.
        assert len(tables) == 2

    def test_all_of_order_validated(self):
        for monoid in FiniteMonoid.all_of_order(3):
            FiniteMonoid(monoid.table)  # revalidate


class TestHomomorphism:
    def test_image_of_word(self):
        z4 = FiniteMonoid.cyclic(4)
        h = Homomorphism(z4, {"a": 1, "b": 2})
        assert h("a.b.a") == 0
        assert h("") == 0

    def test_respects(self, commutative_uv):
        z2 = FiniteMonoid.cyclic(2)
        h = Homomorphism(z2, {"u": 1, "v": 1})
        assert h.respects(commutative_uv)
        # T2 contains non-commuting elements.
        t2 = FiniteMonoid.transformation(2)
        noncommuting = None
        for a in range(t2.order):
            for b in range(t2.order):
                if t2.multiply(a, b) != t2.multiply(b, a):
                    noncommuting = (a, b)
        assert noncommuting is not None
        h_bad = Homomorphism(
            t2, {"u": noncommuting[0], "v": noncommuting[1]}
        )
        assert not h_bad.respects(commutative_uv)

    def test_out_of_range_image(self):
        with pytest.raises(ValueError):
            Homomorphism(FiniteMonoid.cyclic(2), {"a": 5})

    def test_unknown_letter(self):
        h = Homomorphism(FiniteMonoid.cyclic(2), {"a": 1})
        with pytest.raises(ValueError):
            h("a.z")

    def test_enumerate_count(self):
        z2 = FiniteMonoid.cyclic(2)
        assert len(list(Homomorphism.enumerate(z2, ("a", "b")))) == 4

    def test_find_separating(self, commutative_uv):
        hom = find_separating_homomorphism(commutative_uv, "u", "v.v")
        assert hom is not None
        assert hom.respects(commutative_uv)
        assert hom("u") != hom("v.v")

    def test_no_separator_for_equal_words(self, commutative_uv):
        assert (
            find_separating_homomorphism(commutative_uv, "u.v", "v.u") is None
        )


class TestLattice:
    def test_zero_target(self):
        assert lattice_contains([], (0, 0))

    def test_simple_membership(self):
        assert lattice_contains([(1, -1)], (2, -2))
        assert not lattice_contains([(1, -1)], (1, 0))

    def test_divisibility(self):
        assert not lattice_contains([(2, 0)], (1, 0))
        assert lattice_contains([(2, 0), (3, 0)], (1, 0))  # gcd 1

    def test_multi_dimensional(self):
        basis = [(1, 1, 0), (0, 1, 1)]
        assert lattice_contains(basis, (1, 2, 1))
        assert not lattice_contains(basis, (0, 0, 1))

    def test_letter_counts(self):
        assert letter_counts(Path.parse("a.b.a"), ("a", "b")) == (2, 1)


class TestWordProblem:
    def test_commutative_positive(self, commutative_uv):
        verdict = decide_word_problem(commutative_uv, "u.v.u", "u.u.v")
        assert verdict.answer is Trilean.TRUE
        assert verdict.derivation is not None
        assert check_thue_derivation(commutative_uv, verdict.derivation)

    def test_commutative_negative_abelian(self, commutative_uv):
        verdict = decide_word_problem(commutative_uv, "u.v", "v.v")
        assert verdict.answer is Trilean.FALSE
        assert verdict.method == "abelianization"

    def test_cyclic(self):
        pres = cyclic_presentation(3)
        assert decide_word_problem(pres, "a.a.a", "").answer is Trilean.TRUE
        assert decide_word_problem(pres, "a", "").answer is Trilean.FALSE

    def test_idempotent(self):
        pres = idempotent_presentation("ab")
        assert (
            decide_word_problem(pres, "a.a.b.b", "a.b").answer is Trilean.TRUE
        )
        # a and b are separated by, e.g., the boolean-and monoid with
        # different images... actually by counting quotient with a==aa;
        # the semi-decider should find *some* separator.
        assert decide_word_problem(pres, "a", "b").answer is Trilean.FALSE

    def test_finite_separation_method(self):
        # Relations make abelianization useless: a=b in the
        # abelianization iff (1,-1) in the lattice of (0,0)... here the
        # presentation {aa=a, bb=b} has zero difference vectors only
        # for... choose a case where parikh vectors coincide:
        pres = MonoidPresentation("ab", [])
        verdict = decide_word_problem(pres, "a.b", "b.a")
        assert verdict.answer is Trilean.FALSE
        # Parikh vectors are equal, so this must come from a finite
        # separating monoid (a non-commutative one).
        assert verdict.method == "finite-separation"
        assert verdict.separator is not None
        assert verdict.separator("a.b") != verdict.separator("b.a")

    def test_bicyclic_divergence_is_unknown(self):
        """qp = 1 holds in every *finite* quotient of the bicyclic
        monoid but not in the bicyclic monoid itself: the general and
        finite word problems genuinely diverge, so no sound shared
        certificate can exist and the semi-decider must say UNKNOWN."""
        pres = bicyclic_presentation()
        verdict = decide_word_problem(pres, "q.p", "")
        assert verdict.answer is Trilean.UNKNOWN

    def test_identical_words(self, commutative_uv):
        assert decide_word_problem(commutative_uv, "u", "u").answer is Trilean.TRUE

    def test_free_monoid(self):
        pres = free_presentation("ab")
        assert decide_word_problem(pres, "a.b", "a.b").answer is Trilean.TRUE
        assert decide_word_problem(pres, "a", "a.a").answer is Trilean.FALSE


class TestThueDerivations:
    def test_found_derivation_checks(self, commutative_uv):
        derivation = find_thue_derivation(
            commutative_uv, Path.parse("u.v.v"), Path.parse("v.v.u")
        )
        assert derivation is not None
        assert derivation[0] == Path.parse("u.v.v")
        assert derivation[-1] == Path.parse("v.v.u")
        assert check_thue_derivation(commutative_uv, derivation)

    def test_checker_rejects_gap(self, commutative_uv):
        bad = (Path.parse("u.v"), Path.parse("v.v"))
        assert not check_thue_derivation(commutative_uv, bad)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.lists(st.sampled_from("uv"), max_size=3).map(Path),
            st.lists(st.sampled_from("uv"), max_size=3).map(Path),
        ),
        max_size=3,
    ),
    st.lists(st.sampled_from("uv"), max_size=4).map(Path),
    st.lists(st.sampled_from("uv"), max_size=4).map(Path),
)
def test_word_problem_verdicts_are_sound(equations, alpha, beta):
    """TRUE verdicts carry checkable derivations; FALSE verdicts imply
    every library homomorphism respecting the equations separates...
    at least the returned one does; abelianization FALSE implies the
    Parikh invariant separates."""
    pres = MonoidPresentation("uv", equations)
    verdict = decide_word_problem(pres, alpha, beta, max_expansions=2000)
    if verdict.answer is Trilean.TRUE and verdict.derivation is not None:
        assert verdict.derivation[0] == alpha
        assert verdict.derivation[-1] == beta
        assert check_thue_derivation(pres, verdict.derivation)
    elif verdict.answer is Trilean.FALSE:
        if verdict.separator is not None:
            assert verdict.separator.respects(pres)
            assert verdict.separator(alpha) != verdict.separator(beta)
        else:
            assert abelianization_separates(pres, alpha, beta)
