"""Tests for the differential cross-validation harness."""

from __future__ import annotations

import json

import pytest

from repro.constraints import parse_constraint, parse_constraints
from repro.diffcheck import (
    FRAGMENT_GENERATORS,
    FragmentInstance,
    emit_regression_test,
    find_disagreements,
    fuzz,
    generate_instance,
    run_engines,
    run_named_engine,
    shrink_instance,
)
from repro.diffcheck.oracles import EngineVerdict, OracleConfig
from repro.diffcheck.shrink import render_schema
from repro.reasoning.dispatcher import Context, ProblemClass, classify
from repro.truth import Trilean

#: jobs=(1,) keeps the unit tests off the process pool; the pooled
#: path is exercised once in TestFuzz.test_pool_determinism.
FAST = OracleConfig(portfolio_jobs=(1,))


class TestGenerators:
    def test_all_fragments_registered(self):
        assert list(FRAGMENT_GENERATORS) == [
            "P_w",
            "P_w+egd",
            "P_w(K)",
            "local-extent",
            "P_c",
            "typed-M",
        ]

    def test_deterministic_replay(self):
        for name in FRAGMENT_GENERATORS:
            a = generate_instance(name, seed=42, index=3)
            b = generate_instance(name, seed=42, index=3)
            assert a.sigma == b.sigma and a.phi == b.phi

    def test_seeds_differ(self):
        instances = {
            (generate_instance("P_w", seed=s, index=0).sigma,
             generate_instance("P_w", seed=s, index=0).phi)
            for s in range(8)
        }
        assert len(instances) > 1

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("P_w", ProblemClass.WORD),
            ("P_w+egd", ProblemClass.WORD),
            ("P_w(K)", ProblemClass.PW_K),
            ("local-extent", ProblemClass.LOCAL_EXTENT),
            ("P_c", ProblemClass.GENERAL),
        ],
    )
    def test_instances_land_in_their_fragment(self, name, expected):
        for index in range(10):
            inst = generate_instance(name, seed=5, index=index)
            assert classify(inst.sigma, inst.phi) is expected, (
                f"{name} index={index}: {inst.sigma} |- {inst.phi}"
            )

    def test_typed_instances_carry_m_schemas(self):
        for index in range(10):
            inst = generate_instance("typed-M", seed=5, index=index)
            assert inst.context is Context.M
            assert inst.schema is not None
            assert inst.schema.is_m_schema()

    def test_egd_generator_emits_empty_conclusions(self):
        assert any(
            any(psi.rhs.is_empty() for psi in
                generate_instance("P_w+egd", seed=1, index=i).sigma)
            for i in range(5)
        )


class TestOracles:
    def test_matrix_on_word_instance(self):
        sigma = parse_constraints(
            "book.author => person\nperson.wrote => book"
        )
        phi = parse_constraint("book.author.wrote => book")
        inst = FragmentInstance("P_w", tuple(sigma), phi)
        verdicts = run_engines(inst, FAST)
        names = {v.engine for v in verdicts}
        assert {"word", "chase", "countermodel", "portfolio-j1"} <= names
        by_name = {v.engine: v for v in verdicts}
        assert by_name["word"].answer is Trilean.TRUE
        assert by_name["word"].certificate_ok is True
        assert by_name["chase"].answer is Trilean.TRUE
        assert not find_disagreements(verdicts)

    def test_matrix_on_refuted_instance(self):
        sigma = parse_constraints("book.author => person")
        phi = parse_constraint("person => book")
        inst = FragmentInstance("P_w", tuple(sigma), phi)
        by_name = {v.engine: v for v in run_engines(inst, FAST)}
        assert by_name["word"].answer is Trilean.FALSE
        assert by_name["countermodel"].answer is Trilean.FALSE
        assert by_name["countermodel"].certificate_ok is True
        assert not find_disagreements(
            list(by_name.values())
        )

    def test_unknown_never_conflicts(self):
        verdicts = [
            EngineVerdict("a", Trilean.TRUE),
            EngineVerdict("b", Trilean.UNKNOWN),
            EngineVerdict("c", Trilean.UNKNOWN),
        ]
        assert not find_disagreements(verdicts)

    def test_definite_conflict_detected(self):
        verdicts = [
            EngineVerdict("a", Trilean.TRUE),
            EngineVerdict("b", Trilean.FALSE),
        ]
        (d,) = find_disagreements(verdicts)
        assert d.kind == "definite-conflict"
        assert d.engines == ("a", "b")

    def test_bad_certificate_detected(self):
        verdicts = [
            EngineVerdict(
                "a", Trilean.FALSE, certificate_ok=False, note="boom"
            )
        ]
        (d,) = find_disagreements(verdicts)
        assert d.kind == "bad-certificate"

    def test_run_named_engine_arbitrary_jobs(self):
        sigma = tuple(parse_constraints("book.author => person"))
        phi = parse_constraint("person => book")
        v = run_named_engine("word", sigma, phi, config=FAST)
        assert v.answer is Trilean.FALSE
        with pytest.raises(KeyError):
            run_named_engine("no-such-engine", sigma, phi, config=FAST)

    def test_local_extent_certificate_reverified(self):
        # The with_proof certificate covers the reduced word instance
        # (Lemma 5.3); the oracle must verify it there, not against
        # the original premises.
        sigma = parse_constraints("K.K :: a => b")
        phi = parse_constraint("K.K :: a => b")
        inst = FragmentInstance("local-extent", tuple(sigma), phi)
        by_name = {v.engine: v for v in run_engines(inst, FAST)}
        assert by_name["local-extent"].answer is Trilean.TRUE
        assert by_name["local-extent"].certificate_ok is True

    def test_typed_chase_false_demoted_to_unknown(self):
        # An untyped counter-model proves nothing over U(Delta): the
        # chase engine must abstain rather than report FALSE.
        inst = generate_instance("typed-M", seed=11, index=6)
        by_name = {v.engine: v for v in run_engines(inst, FAST)}
        assert by_name["chase"].answer is not Trilean.FALSE

    def test_typed_matrix_agreement(self):
        inst = generate_instance("typed-M", seed=11, index=19)
        verdicts = run_engines(inst, FAST)
        by_name = {v.engine: v for v in verdicts}
        assert by_name["typed-M"].answer is Trilean.FALSE
        assert by_name["enumerate-M"].answer is Trilean.FALSE
        assert by_name["enumerate-M"].certificate_ok is True
        assert not find_disagreements(verdicts)


def _always_true_engine(inst, cfg):
    """A deliberately broken decider: claims every implication holds."""
    if inst.context is not Context.SEMISTRUCTURED:
        return None
    return EngineVerdict(engine="always-true", answer=Trilean.TRUE)


class TestShrink:
    def test_shrinks_injected_disagreement_to_minimal(self):
        # Acceptance criterion: an intentionally injected disagreement
        # shrinks to <= 3 sigma constraints.
        report = fuzz(
            seed=5,
            per_fragment=4,
            fragments=["P_w"],
            config=FAST,
            extra={"always-true": _always_true_engine},
        )
        assert report.disagreements, "broken engine went undetected"
        for record in report.disagreements:
            assert len(record.shrunk_sigma) <= 3, record.shrunk_sigma
            assert len(record.shrunk_sigma) <= len(record.original_sigma)

    def test_shrink_preserves_predicate(self):
        sigma = tuple(
            parse_constraints(
                "a => b\nb => c\nc.a => b\na.a.a => c.c"
            )
        )
        phi = parse_constraint("a => c")

        def reproduces(s, p):
            # "bug" needs the transitive pair a=>b, b=>c and the query.
            from repro.reasoning.word import implies_word

            return implies_word(s, p).answer is Trilean.TRUE

        shrunk_sigma, shrunk_phi = shrink_instance(sigma, phi, reproduces)
        assert reproduces(shrunk_sigma, shrunk_phi)
        assert len(shrunk_sigma) == 2

    def test_shrink_returns_input_when_not_reproducing(self):
        sigma = tuple(parse_constraints("a => b"))
        phi = parse_constraint("a => c")
        out_sigma, out_phi = shrink_instance(
            sigma, phi, lambda s, p: False
        )
        assert out_sigma == sigma and out_phi is phi

    def test_shrink_survives_crashing_predicate(self):
        sigma = tuple(parse_constraints("a => b\nb => c"))
        phi = parse_constraint("a => c")
        calls = {"n": 0}

        def flaky(s, p):
            calls["n"] += 1
            if len(s) < 2:
                raise RuntimeError("candidate left the fragment")
            return True

        shrunk_sigma, _ = shrink_instance(sigma, phi, flaky)
        assert len(shrunk_sigma) == 2  # crashes treated as non-repro
        assert calls["n"] > 1

    def test_emitted_regression_test_is_executable(self):
        sigma = tuple(parse_constraints("a => b"))
        phi = parse_constraint("a => b")
        text = emit_regression_test(
            sigma, phi, ["word", "chase"], ["true", "true"]
        )
        namespace: dict = {}
        exec(text, namespace)  # noqa: S102 — the generator's own output
        [test] = [v for k, v in namespace.items() if k.startswith("test_")]
        test()  # engines agree here, so the pinned assertion passes

    def test_render_schema_round_trips(self):
        inst = generate_instance("typed-M", seed=2, index=0)
        source = render_schema(inst.schema)
        from repro.types.typesys import (  # noqa: F401 — exec namespace
            AtomicType,
            ClassRef,
            RecordType,
            Schema,
            SetType,
        )

        rebuilt = eval(source)  # noqa: S307 — our own rendering
        assert rebuilt.classes == inst.schema.classes
        assert rebuilt.db_type == inst.schema.db_type


class TestFuzz:
    def test_clean_sweep_fixed_seed(self):
        report = fuzz(seed=3, per_fragment=3, config=FAST)
        assert report.ok, [d.to_dict() for d in report.disagreements]
        assert all(
            s.instances == 3 for s in report.fragments.values()
        )

    def test_report_json_round_trip(self):
        report = fuzz(
            seed=1, per_fragment=2, fragments=["P_w"], config=FAST
        )
        data = json.loads(report.to_json())
        assert data["seed"] == 1
        assert data["ok"] is True
        assert data["fragments"]["P_w"]["instances"] == 2

    def test_deadline_cuts_sweep_short(self):
        report = fuzz(seed=0, per_fragment=50, deadline=0.0, config=FAST)
        assert report.deadline_hit
        total = sum(s.instances for s in report.fragments.values())
        assert total < 50 * len(FRAGMENT_GENERATORS)

    def test_unknown_fragment_rejected(self):
        with pytest.raises(ValueError):
            fuzz(seed=0, per_fragment=1, fragments=["P_zzz"])

    def test_pool_determinism(self):
        # jobs=1 and jobs=4 must agree on every definite answer — the
        # matrix itself enforces this, so a clean report is the check.
        report = fuzz(
            seed=9,
            per_fragment=2,
            fragments=["P_c"],
            config=OracleConfig(portfolio_jobs=(1, 4)),
        )
        assert report.ok, [d.to_dict() for d in report.disagreements]


class TestQueryFuzz:
    """The query-layer differential fragment (optimizer + containment)."""

    def test_fixed_seed_run_is_clean(self):
        from repro.diffcheck import fuzz_queries

        report = fuzz_queries(seed=0, rounds=5)
        assert report.ok
        assert report.rounds == 5
        assert not report.aborted
        assert report.optimizer_checks == 5
        assert report.containment_checks == 5
        assert report.models_checked > 0

    def test_report_shape_round_trips(self):
        import json

        from repro.diffcheck import fuzz_queries

        report = fuzz_queries(seed=1, rounds=3)
        payload = json.loads(report.to_json())
        for key in (
            "seed",
            "rounds",
            "verdicts",
            "branches_saved",
            "disagreements",
            "models_checked",
        ):
            assert key in payload
        assert "clean" in report.summary() or "disagreement" in report.summary()

    def test_deterministic_replay(self):
        from repro.diffcheck import fuzz_queries

        first = fuzz_queries(seed=7, rounds=4)
        second = fuzz_queries(seed=7, rounds=4)
        assert first.to_dict()["verdicts"] == second.to_dict()["verdicts"]
        assert first.branches_saved == second.branches_saved

    def test_deadline_cuts_run_short(self):
        from repro.diffcheck import fuzz_queries

        report = fuzz_queries(seed=0, rounds=10_000, deadline=0.5)
        assert report.deadline_hit
        assert report.rounds < 10_000
        assert report.ok
