"""Tests for the Phi(Delta) type-constraint checker (Section 3.2.2)."""

from __future__ import annotations

import pytest

from repro.graph import Graph
from repro.types import (
    AtomicType,
    ClassRef,
    MEMBERSHIP_LABEL,
    RecordType,
    Schema,
    SetType,
)
from repro.types.typecheck import check_type_constraint, infer_sorts

M = MEMBERSHIP_LABEL
STRING = AtomicType("string")


@pytest.fixture
def pair_schema():
    """DBtype = [left: C, right: C]; C = [tag: string]."""
    return Schema(
        {"C": RecordType([("tag", STRING)])},
        RecordType([("left", ClassRef("C")), ("right", ClassRef("C"))]),
    )


@pytest.fixture
def set_schema():
    """DBtype = [items: {C}]; C = [tag: string]."""
    return Schema(
        {"C": RecordType([("tag", STRING)])},
        RecordType([("items", SetType(ClassRef("C")))]),
    )


def good_pair_graph() -> Graph:
    g = Graph(root="r")
    g.add_edge("r", "left", "c1")
    g.add_edge("r", "right", "c2")
    g.add_edge("c1", "tag", "s1")
    g.add_edge("c2", "tag", "s2")
    return g


class TestInference:
    def test_infers_from_root(self, pair_schema):
        g = good_pair_graph()
        assignment, violations = infer_sorts(pair_schema, g)
        assert not violations
        assert assignment["c1"] == ClassRef("C")
        assert assignment["s1"] == STRING

    def test_conflict_detected(self, pair_schema):
        g = good_pair_graph()
        # s1 is forced to be both a string (tag target) and a C (left
        # target).
        g.add_edge("r", "left", "s1")
        _, violations = infer_sorts(pair_schema, g)
        assert any("conflict" in v.reason for v in violations)

    def test_unreachable_node(self, pair_schema):
        g = good_pair_graph()
        g.add_node("island")
        _, violations = infer_sorts(pair_schema, g)
        assert any("untyped" in v.reason for v in violations)


class TestRecordShape:
    def test_good_graph_passes(self, pair_schema):
        assert check_type_constraint(pair_schema, good_pair_graph()).ok

    def test_missing_field(self, pair_schema):
        g = good_pair_graph()
        g.remove_edge("c1", "tag", "s1")
        report = check_type_constraint(pair_schema, g)
        assert not report.ok
        assert any("0 edges" in v.reason for v in report.violations)

    def test_duplicate_field(self, pair_schema):
        g = good_pair_graph()
        g.add_edge("c1", "tag", "s2")
        report = check_type_constraint(pair_schema, g)
        assert not report.ok
        assert any("2 edges" in v.reason for v in report.violations)

    def test_unexpected_edge(self, pair_schema):
        g = good_pair_graph()
        g.add_edge("c1", "bogus", "s1")
        report = check_type_constraint(pair_schema, g)
        assert not report.ok

    def test_atomic_with_outgoing_edge(self, pair_schema):
        g = good_pair_graph()
        g.add_edge("s1", "tag", "s2")
        report = check_type_constraint(pair_schema, g)
        assert not report.ok
        assert any("atomic" in v.reason for v in report.violations)

    def test_record_extensionality_exempt_for_classes(self, pair_schema):
        # c1 and c2 share the same tag target: identical contents, but
        # classes carry object identity, so this is fine.
        g = Graph(root="r")
        g.add_edge("r", "left", "c1")
        g.add_edge("r", "right", "c2")
        g.add_edge("c1", "tag", "s")
        g.add_edge("c2", "tag", "s")
        assert check_type_constraint(pair_schema, g).ok


class TestSetShape:
    def test_good_set_graph(self, set_schema):
        g = Graph(root="r")
        g.add_edge("r", "items", "set")
        for i in range(3):
            g.add_edge("set", M, f"c{i}")
            g.add_edge(f"c{i}", "tag", f"s{i}")
        assert check_type_constraint(set_schema, g).ok

    def test_empty_set_ok(self, set_schema):
        g = Graph(root="r")
        g.add_edge("r", "items", "set")
        assert check_type_constraint(set_schema, g).ok

    def test_non_membership_edge_on_set(self, set_schema):
        g = Graph(root="r")
        g.add_edge("r", "items", "set")
        g.add_edge("set", "bogus", "x")
        report = check_type_constraint(set_schema, g)
        assert not report.ok
        assert any("non-membership" in v.reason for v in report.violations)

    def test_set_extensionality_violation(self, set_schema):
        # Two distinct {C} nodes with the same members: pure set types
        # are extensional, so this violates Phi(Delta).  Reach the
        # second set node through a second record field... the schema
        # has only one, so craft it with explicit sorts.
        g = Graph(root="r")
        g.set_sort("r", "DBtype")
        g.add_edge("r", "items", "set1")
        g.add_node("set2", sort="{C}")
        g.set_sort("set1", "{C}")
        g.add_edge("set1", M, "c")
        g.add_edge("set2", M, "c")
        g.add_node("c", sort="C")
        g.add_edge("c", "tag", "s")
        g.add_node("s", sort="string")
        report = check_type_constraint(set_schema, g)
        assert not report.ok
        assert any("extensionality" in v.reason for v in report.violations)


class TestExplicitSorts:
    def test_explicit_sorts_checked(self, pair_schema):
        g = good_pair_graph()
        g.set_sort("r", "DBtype")
        g.set_sort("c1", "C")
        g.set_sort("c2", "C")
        g.set_sort("s1", "string")
        g.set_sort("s2", "string")
        assert check_type_constraint(pair_schema, g).ok

    def test_missing_sort_flagged(self, pair_schema):
        g = good_pair_graph()
        g.set_sort("r", "DBtype")  # others unsorted
        report = check_type_constraint(pair_schema, g)
        assert not report.ok
        assert any("no sort" in v.reason for v in report.violations)

    def test_wrong_root_sort(self, pair_schema):
        g = good_pair_graph()
        for node in g.nodes:
            g.set_sort(node, "C")
        report = check_type_constraint(pair_schema, g)
        assert not report.ok
        assert any("DBtype" in v.reason for v in report.violations)

    def test_unknown_sort_name(self, pair_schema):
        g = good_pair_graph()
        for node in g.nodes:
            g.set_sort(node, "Mystery")
        report = check_type_constraint(pair_schema, g)
        assert not report.ok
        assert any("not in T(Delta)" in v.reason for v in report.violations)

    def test_ignore_graph_sorts_option(self, pair_schema):
        g = good_pair_graph()
        for node in g.nodes:
            g.set_sort(node, "Mystery")
        # With inference instead of the bogus sorts, the graph is fine.
        assert check_type_constraint(pair_schema, g, use_graph_sorts=False).ok


class TestRecursiveSchemas:
    def test_cycle_allowed(self, fs_schema):
        # Cat -> head: Cat recursion satisfied by a cyclic graph.
        g = Graph(root="r")
        g.add_edge("r", "sentence", "cat")
        g.add_edge("r", "subject", "cat")
        g.add_edge("cat", "head", "cat")
        g.add_edge("cat", "agreement", "agr")
        g.add_edge("cat", "phon", "s")
        g.add_edge("agr", "number", "s2")
        g.add_edge("agr", "person", "s3")
        assert check_type_constraint(fs_schema, g).ok

    def test_report_summary_readable(self, pair_schema):
        g = good_pair_graph()
        g.remove_edge("c1", "tag", "s1")
        report = check_type_constraint(pair_schema, g)
        assert "violation" in report.summary()
        assert not bool(report)
