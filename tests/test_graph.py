"""Tests for sigma-structures: construction, navigation, surgery."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError, UnknownNodeError
from repro.graph import Graph, Signature, from_nested_dict, random_graph
from repro.graph.builders import line_graph, penn_bib_with_locals, scaled_bibliography
from repro.graph.serialize import from_dict, to_dict, to_dot
from repro.paths import Path


class TestSignature:
    def test_membership(self):
        sig = Signature(["a", "b"])
        assert "a" in sig
        assert "c" not in sig
        assert len(sig) == 2

    def test_validate_path(self):
        sig = Signature(["a", "b"])
        assert sig.validate_path("a.b") == Path.parse("a.b")
        with pytest.raises(GraphError):
            sig.validate_path("a.c")

    def test_extend_and_union(self):
        sig = Signature(["a"]).extend(["b"])
        assert set(sig.labels) == {"a", "b"}
        merged = Signature.union(Signature(["a"]), Signature(["c"]))
        assert set(merged.labels) == {"a", "c"}

    def test_equality(self):
        assert Signature(["a", "b"]) == Signature(["b", "a"])


class TestGraphBasics:
    def test_root_exists(self):
        g = Graph(root="r")
        assert g.has_node("r")
        assert g.root == "r"

    def test_add_edge_creates_nodes(self):
        g = Graph(root="r")
        g.add_edge("r", "a", "n")
        assert g.has_node("n")
        assert g.has_edge("r", "a", "n")
        assert g.edge_count() == 1

    def test_duplicate_edge_idempotent(self):
        g = Graph(root="r")
        g.add_edge("r", "a", "n")
        g.add_edge("r", "a", "n")
        assert g.edge_count() == 1

    def test_fresh_nodes_distinct(self):
        g = Graph(root=0)
        names = {g.add_node() for _ in range(10)}
        assert len(names) == 10

    def test_remove_edge(self):
        g = Graph(root="r")
        g.add_edge("r", "a", "n")
        g.remove_edge("r", "a", "n")
        assert not g.has_edge("r", "a", "n")
        with pytest.raises(GraphError):
            g.remove_edge("r", "a", "n")

    def test_unknown_node_errors(self):
        g = Graph(root="r")
        with pytest.raises(UnknownNodeError):
            g.successors("ghost", "a")

    def test_labels_reflect_edges(self):
        g = Graph(root="r")
        g.add_edge("r", "a", "x")
        g.add_edge("x", "b", "r")
        assert g.labels() == frozenset({"a", "b"})

    def test_sorts(self):
        g = Graph(root="r")
        g.add_node("n", sort="Book")
        assert g.sort_of("n") == "Book"
        assert g.sort_of("r") is None
        assert g.nodes_of_sort("Book") == frozenset({"n"})


class TestPathEvaluation:
    def test_empty_path_is_identity(self):
        g = Graph(root="r")
        assert g.eval_path("") == frozenset({"r"})

    def test_eval_forward(self, fig1):
        assert fig1.eval_path("book.author") == frozenset(
            {"person1", "person2"}
        )

    def test_eval_from_start(self, fig1):
        assert fig1.eval_path("author", start="book2") == frozenset(
            {"person1", "person2"}
        )

    def test_eval_backward(self, fig1):
        assert fig1.eval_path_backward("book.author", "person1") == frozenset(
            {"r"}
        )
        assert fig1.eval_path_backward("author", "person1") == frozenset(
            {"book1", "book2"}
        )

    def test_eval_dead_path(self, fig1):
        assert fig1.eval_path("book.nonexistent") == frozenset()

    def test_satisfies_path(self, fig1):
        assert fig1.satisfies_path("author", "book1", "person1")
        assert not fig1.satisfies_path("author", "book1", "person2")

    def test_eval_path_from_set(self, fig1):
        out = fig1.eval_path_from_set("author", ["book1", "book3"])
        assert out == frozenset({"person1", "person2"})

    def test_reachable(self):
        g = Graph(root="r")
        g.add_edge("r", "a", "x")
        g.add_node("island")
        assert g.reachable() == frozenset({"r", "x"})

    def test_forward_backward_agree(self, fig1):
        path = Path.parse("person.wrote.ref")
        forward = {
            (x, y)
            for x in [fig1.root]
            for y in fig1.eval_path(path)
        }
        backward = {
            (x, y)
            for y in fig1.nodes
            for x in fig1.eval_path_backward(path, y)
            if x == fig1.root
        }
        assert forward == backward


class TestSurgery:
    def test_add_path_fresh(self):
        g = Graph(root="r")
        end = g.add_path("r", "a.b.c")
        assert g.eval_path("a.b.c") == frozenset({end})

    def test_add_path_to_target(self):
        g = Graph(root="r")
        g.add_node("t")
        end = g.add_path("r", "a.b", dst="t")
        assert end == "t"
        assert g.eval_path("a.b") == frozenset({"t"})

    def test_add_empty_path(self):
        g = Graph(root="r")
        assert g.add_path("r", "") == "r"
        with pytest.raises(GraphError):
            g.add_node("x")
            g.add_path("r", "", dst="x")

    def test_merge_nodes(self):
        g = Graph(root="r")
        g.add_edge("r", "a", "x")
        g.add_edge("r", "b", "y")
        g.add_edge("y", "c", "y")
        g.merge_nodes("x", "y")
        assert not g.has_node("y")
        assert g.eval_path("b") == frozenset({"x"})
        assert g.eval_path("b.c") == frozenset({"x"})  # self-loop remapped

    def test_merge_preserves_root(self):
        g = Graph(root="r")
        g.add_edge("r", "a", "x")
        with pytest.raises(GraphError):
            g.merge_nodes("x", "r")

    def test_merge_conflicting_sorts(self):
        g = Graph(root="r")
        g.add_node("x", sort="A")
        g.add_node("y", sort="B")
        with pytest.raises(GraphError):
            g.merge_nodes("x", "y")

    def test_quotient(self):
        g = Graph(root=0)
        g.add_edge(0, "a", 1)
        g.add_edge(0, "a", 2)
        g.add_edge(1, "b", 3)
        q = g.quotient([[1, 2]])
        assert q.node_count() == g.node_count() - 1
        assert len(q.eval_path("a")) == 1
        assert len(q.eval_path("a.b")) == 1

    def test_copy_independent(self, fig1):
        clone = fig1.copy()
        assert clone.same_structure(fig1)
        clone.add_edge("r", "extra", "new")
        assert not clone.same_structure(fig1)

    def test_rerooted(self, fig1):
        g2 = fig1.rerooted("book1")
        assert g2.root == "book1"
        assert g2.eval_path("author") == frozenset({"person1"})


class TestBuilders:
    def test_figure1_inverse_edges(self, fig1):
        # Every author edge has a wrote edge back (Figure 1's shape).
        for book in fig1.eval_path("book"):
            for person in fig1.eval_path("author", start=book):
                assert fig1.has_edge(person, "wrote", book)

    def test_figure1_counts(self, fig1):
        assert len(fig1.eval_path("book")) == 3
        assert len(fig1.eval_path("person")) == 2
        assert len(fig1.eval_path("book.ref")) == 1

    def test_penn_bib_locals(self, penn_bib):
        assert len(penn_bib.eval_path("MIT")) == 1
        assert len(penn_bib.eval_path("Warner.book.author")) == 1

    def test_from_nested_dict(self):
        g = from_nested_dict(
            {"book": [{"title": "A"}, {"title": "B"}], "person": {"name": "N"}}
        )
        assert len(g.eval_path("book")) == 2
        assert len(g.eval_path("book.title")) == 2
        assert len(g.eval_path("person.name")) == 1

    def test_line_graph(self):
        g = line_graph(["a", "b", "c"])
        assert len(g.eval_path("a.b.c")) == 1
        assert g.node_count() == 4

    def test_random_graph_deterministic(self):
        g1 = random_graph(10, ["a", "b"], seed=7)
        g2 = random_graph(10, ["a", "b"], seed=7)
        assert g1.same_structure(g2)
        g3 = random_graph(10, ["a", "b"], seed=8)
        assert not g1.same_structure(g3)

    def test_random_graph_connected(self):
        g = random_graph(20, ["a"], edge_probability=0.0, seed=1)
        assert g.reachable() == g.nodes

    def test_scaled_bibliography_inverse(self):
        g = scaled_bibliography(20, 8, seed=3)
        for book in g.eval_path("book"):
            for person in g.eval_path("author", start=book):
                assert g.has_edge(person, "wrote", book)


class TestSerialization:
    def test_roundtrip(self, fig1):
        assert from_dict(to_dict(fig1)).same_structure(fig1)

    def test_roundtrip_with_sorts(self):
        g = Graph(root="r")
        g.add_edge("r", "a", "x")
        g.set_sort("x", "Book")
        assert from_dict(to_dict(g)).same_structure(g)

    def test_rejects_unserializable_nodes(self):
        g = Graph(root=("tuple", "node"))
        with pytest.raises(GraphError):
            to_dict(g)

    def test_dot_output(self, fig1):
        dot = to_dot(fig1)
        assert dot.startswith("digraph")
        assert '"book1" -> "person1" [label="author"]' in dot


@given(st.integers(2, 12), st.integers(0, 2 ** 30))
def test_random_graph_eval_consistency(n, seed):
    """Forward and backward path evaluation agree on random graphs."""
    g = random_graph(n, ["a", "b"], seed=seed)
    path = Path.parse("a.b")
    forward_pairs = {
        (x, y) for x in g.nodes for y in g.eval_path(path, start=x)
    }
    backward_pairs = {
        (x, y) for y in g.nodes for x in g.eval_path_backward(path, y)
    }
    assert forward_pairs == backward_pairs


class TestFreshCounterCarry:
    """Regression: derived graphs must never reissue a node id the
    source graph has ever used (a reissued id resurrects a node that a
    merge deleted, corrupting external node maps — see the chase)."""

    def test_copy_carries_fresh_counter(self):
        g = Graph(root="r")
        n0 = g.fresh_node()
        g.add_edge("r", "a", n0)
        h = g.copy()
        h.merge_nodes("r", n0)
        assert not h.has_node(n0)
        assert h.fresh_node() != n0

    def test_rerooted_carries_fresh_counter(self):
        g = Graph(root="r")
        n0 = g.fresh_node()
        g.add_edge("r", "a", n0)
        h = g.rerooted(n0)
        assert g.fresh_node() == h.fresh_node()

    def test_quotient_carries_fresh_counter(self):
        g = Graph(root="r")
        n0, n1 = g.fresh_node(), g.fresh_node()
        g.add_edge("r", "a", n0)
        g.add_edge("r", "a", n1)
        h = g.quotient([[n0, n1]])
        assert not h.has_node(n1)  # 1 merged into the canonical 0
        assert h.fresh_node() not in (n0, n1)

    def test_explicit_int_nodes_raise_watermark(self):
        g = Graph(root=0, nodes=range(3))
        g.add_edge(0, "a", 1)
        g.add_edge(0, "a", 2)
        g.merge_nodes(0, 1)
        assert not g.has_node(1)
        assert g.fresh_node() == 3

    def test_fresh_node_never_reissued_after_merge(self):
        g = Graph(root="r")
        used = set()
        for i in range(5):
            n = g.fresh_node()
            used.add(n)
            g.add_edge("r", "a", n)
        for n in list(used)[:3]:
            g.merge_nodes("r", n)
        for _ in range(5):
            n = g.fresh_node()
            assert n not in used
            used.add(n)
            g.add_edge("r", "b", n)
