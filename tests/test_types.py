"""Tests for type ASTs, schemas, signatures and Paths(Delta)."""

from __future__ import annotations

import pytest

from repro.errors import ModelRestrictionError, PathNotInSchemaError, SchemaError
from repro.paths import Path
from repro.types import (
    AtomicType,
    ClassRef,
    MEMBERSHIP_LABEL,
    RecordType,
    Schema,
    SchemaSignature,
    SetType,
)
from repro.types.examples import (
    chain_m_schema,
    delta1_schema,
    example_3_1_schema,
    feature_structure_schema,
    random_m_schema,
)

STRING = AtomicType("string")
INT = AtomicType("int")


class TestTypeAst:
    def test_equality(self):
        assert AtomicType("int") == AtomicType("int")
        assert AtomicType("int") != AtomicType("string")
        assert ClassRef("C") != AtomicType("C")
        assert SetType(ClassRef("C")) == SetType(ClassRef("C"))

    def test_record_field_order_irrelevant(self):
        r1 = RecordType([("a", STRING), ("b", INT)])
        r2 = RecordType([("b", INT), ("a", STRING)])
        assert r1 == r2
        assert hash(r1) == hash(r2)

    def test_record_duplicate_label(self):
        with pytest.raises(SchemaError):
            RecordType([("a", STRING), ("a", INT)])

    def test_record_membership_label_reserved(self):
        with pytest.raises(SchemaError):
            RecordType([(MEMBERSHIP_LABEL, STRING)])

    def test_record_field_lookup(self):
        record = RecordType([("a", STRING)])
        assert record.field("a") == STRING
        assert "a" in record and "b" not in record

    def test_walk(self):
        tau = RecordType([("s", SetType(ClassRef("C")))])
        kinds = [type(t).__name__ for t in tau.walk()]
        assert kinds == ["RecordType", "SetType", "ClassRef"]

    def test_immutability(self):
        with pytest.raises(AttributeError):
            AtomicType("int").name = "string"  # type: ignore[misc]


class TestSchemaValidation:
    def test_class_body_must_be_structural(self):
        with pytest.raises(SchemaError):
            Schema({"C": STRING}, RecordType([("x", ClassRef("C"))]))
        with pytest.raises(SchemaError):
            Schema({"C": ClassRef("C")}, RecordType([("x", ClassRef("C"))]))

    def test_db_type_must_be_structural(self):
        with pytest.raises(SchemaError):
            Schema({}, STRING)

    def test_dangling_class(self):
        with pytest.raises(SchemaError):
            Schema({}, RecordType([("x", ClassRef("Ghost"))]))

    def test_unknown_atomic(self):
        with pytest.raises(SchemaError):
            Schema({}, RecordType([("x", AtomicType("float"))]))

    def test_body_of(self, bib_schema):
        assert bib_schema.body_of("Book").is_record()
        with pytest.raises(SchemaError):
            bib_schema.body_of("Ghost")

    def test_resolve(self, bib_schema):
        assert bib_schema.resolve(ClassRef("Book")) == bib_schema.body_of("Book")
        assert bib_schema.resolve(STRING) == STRING


class TestModelMRestriction:
    def test_example_3_1_is_m_plus_only(self, bib_schema):
        assert not bib_schema.is_m_schema()
        with pytest.raises(ModelRestrictionError):
            bib_schema.require_m()

    def test_feature_structures_are_m(self, fs_schema):
        assert fs_schema.is_m_schema()
        assert fs_schema.require_m() is fs_schema

    def test_nested_record_not_m(self):
        inner = RecordType([("x", STRING)])
        schema = Schema({"C": RecordType([("r", inner)])},
                        RecordType([("c", ClassRef("C"))]),)
        assert not schema.is_m_schema()

    def test_generated_m_schemas_are_m(self):
        assert chain_m_schema(4).is_m_schema()
        assert random_m_schema(5, 3, seed=1).is_m_schema()

    def test_delta1_is_m_plus_only(self, gadget_schema):
        assert not gadget_schema.is_m_schema()


class TestSignature:
    def test_example_3_1_signature(self, bib_schema):
        sig = SchemaSignature(bib_schema)
        # E(Delta) per Section 3.2.2's example, with membership added.
        assert sig.edge_labels == frozenset(
            {
                "person", "book", "name", "SSN", "wrote", "age", "title",
                "ISBN", "year", "ref", "author", MEMBERSHIP_LABEL,
            }
        )
        # T(Delta): DBtype, classes, atomics and the reachable set types.
        assert {"Person", "Book", "string", "DBtype"} <= sig.type_names
        assert any(name.startswith("{") for name in sig.type_names)

    def test_paths_validity(self, bib_schema):
        sig = SchemaSignature(bib_schema)
        member = MEMBERSHIP_LABEL
        assert sig.is_valid_path(f"book.{member}.author.{member}.name")
        assert sig.is_valid_path("")
        assert not sig.is_valid_path("book.author")  # needs membership hop
        assert not sig.is_valid_path(f"book.{member}.name")

    def test_type_of_path(self, fs_schema):
        sig = SchemaSignature(fs_schema)
        assert sig.type_of_path("sentence") == ClassRef("Cat")
        assert sig.type_of_path("sentence.head.head") == ClassRef("Cat")
        assert sig.type_of_path("sentence.agreement.number") == STRING
        assert sig.type_of_path("sentence.bogus") is None

    def test_require_valid_path(self, fs_schema):
        sig = SchemaSignature(fs_schema)
        with pytest.raises(PathNotInSchemaError):
            sig.require_valid_path("sentence.bogus")

    def test_paths_dfa_agrees_with_type_of_path(self, bib_schema):
        sig = SchemaSignature(bib_schema)
        dfa = sig.paths_dfa()
        for path in sig.sample_paths(3):
            assert dfa.accepts(path.labels) == sig.is_valid_path(path)
        assert not dfa.accepts(["book", "author"])

    def test_sample_paths_are_valid_and_complete(self, fs_schema):
        sig = SchemaSignature(fs_schema)
        sampled = set(sig.sample_paths(2))
        assert Path.parse("sentence.head") in sampled
        assert all(sig.is_valid_path(p) for p in sampled)
        # Completeness at depth 2: DBtype(2 fields) -> Cat(3 fields).
        assert len([p for p in sampled if len(p) == 2]) == 6

    def test_delta1_signature(self, gadget_schema):
        sig = SchemaSignature(gadget_schema)
        assert sig.edge_labels == frozenset(
            {"l", "a", "b", "K", "u", "v", MEMBERSHIP_LABEL}
        )
        assert sig.is_valid_path("l.K.K.K.a.u.v")
        assert sig.is_valid_path(f"l.b.{MEMBERSHIP_LABEL}.u")
        assert not sig.is_valid_path("l.a.a")

    def test_delta1_reserved_labels(self):
        with pytest.raises(ValueError):
            delta1_schema(["a", "x"])

    def test_root_type_name(self, bib_schema):
        sig = SchemaSignature(bib_schema)
        assert sig.sort_name(sig.root_type) == "DBtype"

    def test_chain_schema_paths(self):
        schema = chain_m_schema(3)
        sig = SchemaSignature(schema)
        assert sig.is_valid_path("f1.f2.f3.back.f2")
        assert not sig.is_valid_path("f2")
