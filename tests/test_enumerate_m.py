"""Tests for the U_f(Delta) enumerator, and the semantic
cross-validation of the typed-M decider it enables (Theorem 4.9)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking import check
from repro.checking.engine import satisfies_all
from repro.constraints import word
from repro.errors import ModelRestrictionError
from repro.paths import Path
from repro.reasoning import TypedImplicationDecider
from repro.types.enumerate_m import enumerate_m_structures, find_m_countermodel
from repro.types.examples import chain_m_schema, random_m_schema
from repro.types.siggen import SchemaSignature
from repro.types.typecheck import check_type_constraint


class TestEnumeration:
    def test_all_structures_are_typed(self, fs_schema):
        count = 0
        for graph in enumerate_m_structures(fs_schema, max_per_class=2, limit=40):
            report = check_type_constraint(fs_schema, graph)
            assert report.ok, report.summary()
            count += 1
        # Reachability filtering may exhaust the space below the limit.
        assert 0 < count <= 40

    def test_rejects_m_plus_schema(self, bib_schema):
        with pytest.raises(ModelRestrictionError):
            next(enumerate_m_structures(bib_schema))

    def test_structures_are_deterministic_and_total(self, fs_schema):
        signature = SchemaSignature(fs_schema)
        for graph in enumerate_m_structures(fs_schema, max_per_class=2, limit=20):
            assert graph.is_deterministic()
            # Lemma 4.6: every valid path reaches exactly one node.
            for path in signature.sample_paths(3):
                assert len(graph.eval_path(path)) == 1

    def test_chain_schema_enumeration(self):
        schema = chain_m_schema(2)
        graphs = list(enumerate_m_structures(schema, max_per_class=1))
        # One node per class, all edges forced: exactly one structure.
        assert len(graphs) == 1
        assert check_type_constraint(schema, graphs[0]).ok

    def test_limit_respected(self, fs_schema):
        assert len(list(enumerate_m_structures(fs_schema, limit=7))) == 7

    def test_distinct_structures(self, fs_schema):
        seen = set()
        for graph in enumerate_m_structures(fs_schema, max_per_class=2, limit=30):
            key = (frozenset(graph.nodes), frozenset(graph.edges()))
            assert key not in seen
            seen.add(key)


class TestTheorem49CrossValidation:
    """Soundness and (bounded) completeness of the typed decider
    against brute-force enumeration of U_f(Delta)."""

    def _random_instance(self, seed: int):
        rng = random.Random(seed)
        schema = random_m_schema(rng.randint(1, 2), 2, seed=seed)
        signature = SchemaSignature(schema)
        paths = [p for p in signature.sample_paths(3) if not p.is_empty()]
        by_sort: dict[object, list[Path]] = {}
        for path in paths:
            by_sort.setdefault(signature.type_of_path(path), []).append(path)
        pools = [g for g in by_sort.values() if len(g) >= 2]
        if not pools:
            return None
        def pick():
            group = rng.choice(pools)
            left, right = rng.sample(group, 2)
            return word(left, right)
        sigma = [pick() for _ in range(rng.randint(0, 2))]
        phi = pick()
        return schema, sigma, phi

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_sound_and_boundedly_complete(self, seed):
        instance = self._random_instance(seed)
        if instance is None:
            return
        schema, sigma, phi = instance
        decider = TypedImplicationDecider(schema, sigma)
        implied = decider.implies(phi)
        if implied:
            # Soundness: every enumerated model of Sigma satisfies phi.
            for graph in enumerate_m_structures(
                schema, max_per_class=2, limit=200
            ):
                if satisfies_all(graph, sigma):
                    assert check(graph, phi).holds, (
                        f"seed={seed} sigma={list(map(str, sigma))} phi={phi}"
                    )
        else:
            # Completeness evidence: a bounded counter-model usually
            # exists; when found it must be genuine.
            counter = find_m_countermodel(
                schema, sigma, phi, max_per_class=2, limit=2000
            )
            if counter is not None:
                assert satisfies_all(counter, sigma)
                assert not check(counter, phi).holds

    def test_known_false_has_countermodel(self, fs_schema):
        sigma = [word("sentence.head", "subject")]
        phi = word("sentence", "subject")
        counter = find_m_countermodel(fs_schema, sigma, phi, max_per_class=2)
        assert counter is not None
        assert check_type_constraint(fs_schema, counter).ok

    def test_known_true_has_no_countermodel(self, fs_schema):
        sigma = [word("sentence.head", "subject")]
        phi = word("subject", "sentence.head")
        assert (
            find_m_countermodel(
                fs_schema, sigma, phi, max_per_class=2, limit=5000
            )
            is None
        )
