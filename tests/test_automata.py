"""Tests for the NFA/DFA substrate and the path-regex engine."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.automata import DFA, NFA, compile_regex
from repro.automata.nfa import EPSILON
from repro.errors import RegexSyntaxError

words = st.lists(st.sampled_from(["a", "b"]), min_size=0, max_size=8)


def _abc_nfa() -> NFA:
    """(a|b)*c"""
    nfa = NFA(initial=0)
    nfa.add_transition(0, "a", 0)
    nfa.add_transition(0, "b", 0)
    nfa.add_transition(0, "c", 1)
    nfa.add_final(1)
    return nfa


class TestNFA:
    def test_word_automaton(self):
        nfa = NFA.for_word(["a", "b"])
        assert nfa.accepts(["a", "b"])
        assert not nfa.accepts(["a"])
        assert not nfa.accepts(["a", "b", "c"])

    def test_epsilon_closure(self):
        nfa = NFA(initial=0)
        nfa.add_transition(0, EPSILON, 1)
        nfa.add_transition(1, EPSILON, 2)
        assert nfa.epsilon_closure([0]) == frozenset({0, 1, 2})

    def test_epsilon_in_run(self):
        nfa = NFA(initial=0)
        nfa.add_transition(0, EPSILON, 1)
        nfa.add_transition(1, "a", 2)
        nfa.add_final(2)
        assert nfa.accepts(["a"])

    def test_add_word_path_empty(self):
        nfa = NFA(initial=0)
        nfa.add_state(1)
        nfa.add_word_path(0, [], 1)
        nfa.add_final(1)
        assert nfa.accepts([])

    def test_add_word_path(self):
        nfa = NFA(initial=0)
        nfa.add_word_path(0, ["x", "y"], 1)
        nfa.add_final(1)
        assert nfa.accepts(["x", "y"])
        assert not nfa.accepts(["x"])

    def test_is_empty(self):
        nfa = NFA(initial=0)
        assert nfa.is_empty()
        nfa.add_final(0)
        assert not nfa.is_empty()

    def test_enumerate_words_shortlex(self):
        nfa = _abc_nfa()
        words_list = list(nfa.enumerate_words(max_length=2))
        assert words_list == [("c",), ("a", "c"), ("b", "c")]

    def test_enumerate_words_respects_count(self):
        nfa = _abc_nfa()
        assert len(list(nfa.enumerate_words(5, max_count=4))) == 4

    def test_copy_independent(self):
        nfa = _abc_nfa()
        clone = nfa.copy()
        clone.add_final(0)
        assert clone.accepts([]) and not nfa.accepts([])


class TestDFA:
    def test_from_nfa_equivalent(self):
        nfa = _abc_nfa()
        dfa = DFA.from_nfa(nfa)
        for word in [[], ["c"], ["a", "c"], ["a", "b"], ["c", "c"]]:
            assert dfa.accepts(word) == nfa.accepts(word)

    def test_complement(self):
        dfa = DFA.from_nfa(NFA.for_word(["a"]))
        comp = dfa.complement(["a", "b"])
        assert not comp.accepts(["a"])
        assert comp.accepts([])
        assert comp.accepts(["b"])
        assert comp.accepts(["a", "a"])

    def test_product_and(self):
        starts_a = DFA.from_nfa(compile_regex("a._*", alphabet={"a", "b"}))
        ends_b = DFA.from_nfa(compile_regex("_*.b", alphabet={"a", "b"}))
        both = DFA.product(starts_a, ends_b, accept="and")
        assert both.accepts(["a", "b"])
        assert not both.accepts(["a", "a"])
        assert not both.accepts(["b", "b"])

    def test_equivalence(self):
        left = DFA.from_nfa(compile_regex("a*"))
        right = DFA.from_nfa(compile_regex("()|a.a*"))
        assert left.equivalent(right, alphabet={"a"})
        other = DFA.from_nfa(compile_regex("a.a*"))
        assert not left.equivalent(other, alphabet={"a"})

    def test_minimize(self):
        bloated = DFA.from_nfa(compile_regex("(a|a).(b|b)"))
        minimal = bloated.minimize()
        assert minimal.equivalent(bloated, alphabet={"a", "b"})
        assert len(minimal.states) <= len(bloated.complete({"a", "b"}).states)

    def test_run_partial(self):
        dfa = DFA.from_nfa(NFA.for_word(["a"]))
        assert dfa.run(["z"]) is None


class TestRegex:
    @pytest.mark.parametrize(
        "pattern,accepted,rejected",
        [
            ("a.b", [["a", "b"]], [["a"], ["b", "a"]]),
            ("a|b", [["a"], ["b"]], [[], ["a", "b"]]),
            ("a*", [[], ["a"], ["a"] * 5], [["b"]]),
            ("a+", [["a"], ["a", "a"]], [[]]),
            ("a?", [[], ["a"]], [["a", "a"]]),
            ("(a.b)+", [["a", "b"], ["a", "b", "a", "b"]], [["a"]]),
            ("book.(author|editor).name", [["book", "author", "name"]], [["book", "name"]]),
            ("()", [[]], [["a"]]),
        ],
    )
    def test_patterns(self, pattern, accepted, rejected):
        nfa = compile_regex(pattern)
        for word in accepted:
            assert nfa.accepts(word), (pattern, word)
        for word in rejected:
            assert not nfa.accepts(word), (pattern, word)

    def test_wildcard_needs_alphabet(self):
        with pytest.raises(RegexSyntaxError):
            compile_regex("_")
        nfa = compile_regex("_", alphabet={"a", "b"})
        assert nfa.accepts(["a"]) and nfa.accepts(["b"])
        assert not nfa.accepts(["c"])

    @pytest.mark.parametrize("bad", ["(a", "a)", "|a)", "*"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(RegexSyntaxError):
            compile_regex(bad)

    def test_empty_alternative_matches_epsilon(self):
        # `a|` has an empty right alternative, equivalent to a?.
        nfa = compile_regex("a|")
        assert nfa.accepts([]) and nfa.accepts(["a"])

    def test_plus_clone_is_independent(self):
        # a+ is a . a*; the star must not share states with the first a.
        nfa = compile_regex("(a.b)+")
        assert nfa.accepts(["a", "b", "a", "b", "a", "b"])
        assert not nfa.accepts(["a", "b", "a"])


@given(words)
def test_determinization_preserves_language(word):
    nfa = compile_regex("(a.b)*|a+", alphabet={"a", "b"})
    dfa = DFA.from_nfa(nfa)
    assert dfa.accepts(word) == nfa.accepts(word)


@given(words)
def test_minimization_preserves_language(word):
    dfa = DFA.from_nfa(compile_regex("(a|b.a)*.b?", alphabet={"a", "b"}))
    assert dfa.minimize().accepts(word) == dfa.accepts(word)


class TestCoaccessibility:
    def test_coaccessible_states(self):
        nfa = NFA(initial=0)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(1, "b", 2)
        nfa.add_transition(0, "x", 3)  # dead end
        nfa.add_final(2)
        assert nfa.coaccessible_states() == frozenset({0, 1, 2})

    def test_accepts_extension_of(self):
        nfa = compile_regex("a.b.c|a.d")
        assert nfa.accepts_extension_of(["a"])
        assert nfa.accepts_extension_of(["a", "b"])
        assert nfa.accepts_extension_of(["a", "b", "c"])
        assert not nfa.accepts_extension_of(["b"])
        assert not nfa.accepts_extension_of(["a", "c"])

    def test_extension_of_empty_prefix(self):
        nfa = NFA.for_word(["a"])
        assert nfa.accepts_extension_of([])
        empty = NFA(initial=0)
        assert not empty.accepts_extension_of([])


@given(words)
def test_extension_matches_definition(word):
    """accepts_extension_of(p) iff some accepted word extends p."""
    nfa = compile_regex("(a.b)*|a.a", alphabet={"a", "b"})
    claimed = nfa.accepts_extension_of(word)
    # Ground truth within a generous horizon.
    actual = any(
        tuple(word) == w[: len(word)]
        for w in nfa.enumerate_words(max_length=len(word) + 4)
    )
    assert claimed == actual
