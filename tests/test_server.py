"""The implication server daemon: protocol, admission, dedup, drain.

The daemon composes every robustness layer of the library under
concurrent load, so these tests exercise exactly the guarantees the
layers promise individually:

* admission control sheds instead of buffering, and a client budget
  that dies in the queue yields an honest UNKNOWN/rejected — never a
  stale definite answer (the PR's satellite requirement);
* single-flight dedup coalesces alpha-equivalent concurrent queries
  and renames the shared certificate into each requester's alphabet
  (re-verified against the Definition 2.1 checker);
* graceful drain finishes admitted work, refuses new work with a
  drain status, retires the warm pool, and exits 0 (checked end-to-end
  over SIGTERM in a subprocess).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.checking import check_all
from repro.constraints import parse_constraints
from repro.errors import ProtocolError, ServerUnavailable
from repro.graph.builders import figure1_graph
from repro.graph.serialize import from_dict, to_dict
from repro.reasoning.cache import ImplicationCache
from repro.reasoning.faultinject import FaultPlan
from repro.reasoning.runtime import retire_warm_pool, warm_pool_stats
from repro.server import (
    ImplicationServer,
    ServerClient,
    ServerConfig,
    parse_host_port,
)
from repro.server import protocol
from repro.server.singleflight import FlightOutcome, SingleFlightTable

# The divergent-chase instance of the fault/warm-pool suites: FALSE on
# an undecidable cell, so the portfolio genuinely runs.
SIGMA = ["() => K", "K :: () => a.a.a", "K :: a.a.a => ()", "a :: a => a"]
PHI = "K :: a => ()"
# The same instance under the renaming a->b, K->L: alpha-equivalent,
# so single-flight must coalesce it with SIGMA/PHI.
SIGMA_RENAMED = [
    "() => L",
    "L :: () => b.b.b",
    "L :: b.b.b => ()",
    "b :: b => b",
]
PHI_RENAMED = "L :: b => ()"

# A decidable P_w chain (complete PTIME word decider, TRUE).
WORD_SIGMA = ["a => b", "b => c"]
WORD_PHI = "a => c"


class ServerHarness:
    """Run an :class:`ImplicationServer` on a background-thread loop."""

    def __init__(self, **config_kwargs) -> None:
        self.server = ImplicationServer(ServerConfig(**config_kwargs))
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    def __enter__(self) -> "ServerHarness":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError(f"server failed to start: {self._error}")
        return self

    def __exit__(self, *exc_info) -> None:
        if self.server.state in ("serving", "draining"):
            try:
                self.client(retries=0).shutdown()
            except (ServerUnavailable, OSError):
                pass
        assert self._thread is not None
        self._thread.join(timeout=20)
        assert not self._thread.is_alive(), "server thread failed to stop"

    def _run(self) -> None:
        async def main() -> None:
            await self.server.start()
            self._ready.set()
            await self.server.wait_drained()
            await self.server.stop()

        try:
            asyncio.run(main())
        except BaseException as exc:  # pragma: no cover - surfaced above
            self._error = exc
            self._ready.set()

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    def client(self, **kwargs) -> ServerClient:
        kwargs.setdefault("timeout", 30.0)
        return ServerClient("127.0.0.1", self.port, **kwargs)


@pytest.fixture(autouse=True)
def _cold_warm_pool():
    retire_warm_pool()
    yield
    retire_warm_pool()


def _verify_countermodel(cm_dict, sigma_lines, phi_line):
    """A wire counter-model must satisfy Sigma and violate phi in the
    *requester's* alphabet — re-verifiable like any fresh refutation."""
    graph = from_dict(cm_dict)
    sigma = parse_constraints("\n".join(sigma_lines))
    phi = parse_constraints(phi_line)[0]
    assert check_all(graph, sigma).ok
    assert not check_all(graph, [phi]).ok


class TestProtocol:
    def test_request_roundtrip(self):
        frame = protocol.encode(
            {"v": 1, "op": "health", "id": "x"}
        )
        assert frame.endswith(b"\n")
        parsed = protocol.parse_request(frame)
        assert parsed["op"] == "health"

    def test_rejects_wrong_version(self):
        with pytest.raises(ProtocolError, match="protocol version"):
            protocol.parse_request(b'{"v": 99, "op": "health"}')
        with pytest.raises(ProtocolError, match="protocol version"):
            protocol.parse_request(b'{"op": "health"}')

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown operation"):
            protocol.parse_request(b'{"v": 1, "op": "solve"}')

    def test_rejects_non_json_and_non_object(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            protocol.parse_request(b"imply please\n")
        with pytest.raises(ProtocolError, match="not a JSON object"):
            protocol.parse_request(b"[1, 2]\n")

    def test_rejects_oversized_frame(self):
        big = b'{"v": 1, "op": "health", "pad": "' + b"x" * (
            protocol.MAX_LINE_BYTES
        ) + b'"}'
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.parse_request(big)

    def test_response_validation(self):
        ok = protocol.encode(protocol.ok_response("id1", answer="true"))
        assert protocol.parse_response(ok)["status"] == "ok"
        with pytest.raises(ProtocolError, match="status"):
            protocol.parse_response(b'{"v": 1, "status": "maybe"}')

    def test_parse_host_port(self):
        assert parse_host_port("localhost:8747") == ("localhost", 8747)
        for bad in ("localhost", ":80", "host:notaport", "host:0"):
            with pytest.raises(ValueError):
                parse_host_port(bad)


class TestSingleFlightTable:
    def test_join_resolve_and_abandon(self):
        async def scenario():
            table = SingleFlightTable()
            lead, flight = table.join_or_lead("k1")
            follow, same = table.join_or_lead("k1")
            assert lead and not follow and same is flight
            assert flight.followers == 1
            assert table.inflight() == 1
            table.resolve("k1", FlightOutcome(kind="solved"))
            assert (await flight.future).kind == "solved"
            assert table.inflight() == 0
            # A new flight under the same key after resolution.
            lead2, flight2 = table.join_or_lead("k1")
            assert lead2 and flight2 is not flight
            table.abandon("k1")
            assert (await flight2.future).kind == "error"
            assert table.coalesced == 1 and table.led == 2

        asyncio.run(scenario())


class TestImplyOverTheWire:
    def test_decidable_word_instance(self):
        with ServerHarness(port=0) as harness:
            with harness.client() as client:
                response = client.imply(WORD_SIGMA, WORD_PHI)
        assert response["status"] == "ok"
        assert response["answer"] == "true"
        assert response["fragment"] == "P_w"
        assert response["decidable"] is True
        assert response["faults"]["events"] == []

    def test_undecidable_cell_with_countermodel(self):
        with ServerHarness(port=0) as harness:
            with harness.client() as client:
                response = client.imply(SIGMA, PHI)
        assert response["status"] == "ok"
        assert response["answer"] == "false"
        assert response["decidable"] is False
        _verify_countermodel(response["countermodel"], SIGMA, PHI)

    def test_bad_request_is_an_error_not_a_crash(self):
        with ServerHarness(port=0) as harness:
            with harness.client() as client:
                bad = client.imply(["this is not a constraint"], PHI)
                assert bad["status"] == "error"
                assert "bad imply request" in bad["error"]
                # The connection and server both survive.
                good = client.imply(WORD_SIGMA, WORD_PHI)
                assert good["status"] == "ok"

    def test_malformed_frames_survive_the_connection(self):
        with ServerHarness(port=0) as harness:
            with socket.create_connection(
                ("127.0.0.1", harness.port), timeout=10
            ) as sock:
                reader = sock.makefile("rb")
                sock.sendall(b"not json at all\n")
                first = json.loads(reader.readline())
                assert first["status"] == "error"
                sock.sendall(b'{"v": 1, "op": "nope"}\n')
                second = json.loads(reader.readline())
                assert second["status"] == "error"
                sock.sendall(
                    protocol.encode({"v": 1, "op": "health", "id": 7})
                )
                third = json.loads(reader.readline())
                assert third["status"] == "ok" and third["id"] == 7

    def test_check_op(self):
        with ServerHarness(port=0) as harness:
            with harness.client() as client:
                response = client.check(
                    to_dict(figure1_graph()),
                    ["book.author => person"],
                )
        assert response["status"] == "ok"
        assert response["ok"] is True
        assert response["checked"] == 1

    def test_cache_shared_across_connections(self, tmp_path):
        cache = ImplicationCache(cache_dir=tmp_path / "cache")
        with ServerHarness(port=0, cache=cache) as harness:
            with harness.client() as first:
                stored = first.imply(SIGMA, PHI)
            with harness.client() as second:
                hit = second.imply(SIGMA, PHI)
            with harness.client() as renamed:
                alpha = renamed.imply(SIGMA_RENAMED, PHI_RENAMED)
        assert stored["cache"]["status"] == "store"
        assert hit["cache"]["status"] == "hit"
        # An alpha-renamed repeat is a hit too, and its replayed
        # certificate re-verifies in the renamed alphabet.
        assert alpha["cache"]["status"] == "hit"
        _verify_countermodel(
            alpha["countermodel"], SIGMA_RENAMED, PHI_RENAMED
        )

    def test_faults_travel_over_the_wire(self):
        with ServerHarness(
            port=0, inject=FaultPlan.from_spec("raise:0,raise:1")
        ) as harness:
            with harness.client() as client:
                response = client.imply(SIGMA, PHI, jobs=2)
        assert response["status"] == "ok"
        # Faults may demote to UNKNOWN but never flip: the clean
        # answer is FALSE, so TRUE is the one forbidden outcome.
        assert response["answer"] in ("false", "unknown")
        kinds = {e["kind"] for e in response["faults"]["events"]}
        assert "injected" in kinds


class TestSingleFlightDedup:
    def _concurrent_imply(self, harness, specs):
        """Fire imply requests concurrently; returns responses in
        ``specs`` order.  Each spec is (sigma, phi, extra_kwargs)."""
        responses: dict[int, dict] = {}
        errors: list[BaseException] = []

        def ask(index, sigma, phi, kwargs):
            try:
                with harness.client() as client:
                    responses[index] = client.imply(sigma, phi, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=ask, args=(i, s, p, k))
            for i, (s, p, k) in enumerate(specs)
        ]
        threads[0].start()
        time.sleep(0.15)  # let the leader enter the solver first
        for thread in threads[1:]:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors
        return [responses[i] for i in range(len(specs))]

    def test_alpha_equivalent_requests_coalesce(self):
        with ServerHarness(
            port=0, solver_threads=1, allow_delay=True
        ) as harness:
            specs = [
                (SIGMA, PHI, {"delay_ms": 400}),
                (SIGMA, PHI, {}),
                (SIGMA_RENAMED, PHI_RENAMED, {}),
            ]
            responses = self._concurrent_imply(harness, specs)
            with harness.client() as client:
                stats = client.stats()
        roles = [r["dedup"]["role"] for r in responses]
        assert roles[0] == "leader"
        assert roles[1:] == ["follower", "follower"]
        assert [r["answer"] for r in responses] == ["false"] * 3
        # Every requester gets the certificate in its own alphabet.
        _verify_countermodel(responses[0]["countermodel"], SIGMA, PHI)
        _verify_countermodel(responses[1]["countermodel"], SIGMA, PHI)
        _verify_countermodel(
            responses[2]["countermodel"], SIGMA_RENAMED, PHI_RENAMED
        )
        assert stats["dedup"]["coalesced"] == 2
        assert stats["dedup"]["hit_rate"] > 0

    def test_no_dedup_opts_out(self):
        with ServerHarness(
            port=0, solver_threads=2, allow_delay=True
        ) as harness:
            specs = [
                (SIGMA, PHI, {"delay_ms": 300, "no_dedup": True}),
                (SIGMA, PHI, {"no_dedup": True}),
            ]
            responses = self._concurrent_imply(harness, specs)
        assert [r["dedup"]["role"] for r in responses] == ["solo", "solo"]


class TestAdmissionControl:
    def test_queue_full_sheds_with_retry_hint(self):
        with ServerHarness(
            port=0, solver_threads=1, max_queue=1, allow_delay=True
        ) as harness:
            statuses: list[str] = []
            lock = threading.Lock()

            def ask(delay):
                try:
                    with harness.client(retries=0) as client:
                        response = client.imply(
                            SIGMA, PHI, delay_ms=delay, no_dedup=True
                        )
                    status = response["status"]
                except ServerUnavailable as exc:
                    assert exc.retry_after_ms is None or (
                        exc.retry_after_ms >= 1
                    )
                    status = "overloaded"
                with lock:
                    statuses.append(status)

            slow = threading.Thread(target=ask, args=(500,))
            slow.start()
            time.sleep(0.15)
            rest = [
                threading.Thread(target=ask, args=(0,)) for _ in range(4)
            ]
            for thread in rest:
                thread.start()
            for thread in [slow, *rest]:
                thread.join(timeout=30)
        # 1 in-flight + 1 queued get through; the rest are shed.
        assert statuses.count("ok") == 2
        assert statuses.count("overloaded") == 3

    def test_client_retry_eventually_admits(self):
        with ServerHarness(
            port=0, solver_threads=1, max_queue=1, allow_delay=True
        ) as harness:
            blocker = threading.Thread(
                target=lambda: harness.client().imply(
                    SIGMA, PHI, delay_ms=400, no_dedup=True
                )
            )
            filler = threading.Thread(
                target=lambda: harness.client().imply(
                    SIGMA, PHI, delay_ms=200, no_dedup=True
                )
            )
            blocker.start()
            time.sleep(0.1)
            filler.start()
            time.sleep(0.05)
            # Queue is now full; a retrying client must get through
            # once the blocker finishes.
            with harness.client(
                retries=8, backoff_base=0.1, jitter_seed=7
            ) as client:
                response = client.imply(SIGMA, PHI, no_dedup=True)
            blocker.join(timeout=30)
            filler.join(timeout=30)
        assert response["status"] == "ok"

    def test_deadline_exceeded_while_queued_rejects(self):
        """Satellite: a request admitted with a 50ms budget that waits
        ~300ms in the queue must come back UNKNOWN/rejected — never a
        stale definite answer."""
        with ServerHarness(
            port=0, solver_threads=1, allow_delay=True
        ) as harness:
            blocker = threading.Thread(
                target=lambda: harness.client().imply(
                    SIGMA, PHI, delay_ms=300, no_dedup=True
                )
            )
            blocker.start()
            time.sleep(0.1)
            with harness.client() as client:
                response = client.imply(
                    SIGMA_RENAMED,
                    PHI_RENAMED,
                    budget_ms=50,
                    no_dedup=True,
                )
            blocker.join(timeout=30)
            with harness.client() as client:
                stats = client.stats()
        assert response["status"] == "rejected"
        assert response["answer"] == "unknown"
        assert "while queued" in response["reason"]
        assert "countermodel" not in response
        assert stats["counters"]["rejected_deadline"] == 1

    def test_budget_propagates_to_solver(self):
        # The injected delay eats the whole budget before the solve
        # starts, so the honest outcome is rejected/UNKNOWN — the
        # server must never spend a dead budget on a definite answer.
        with ServerHarness(port=0, allow_delay=True) as harness:
            with harness.client() as client:
                response = client.imply(
                    SIGMA,
                    PHI,
                    budget_ms=50,
                    delay_ms=300,
                    no_dedup=True,
                )
        assert response["status"] == "rejected"
        assert response["answer"] == "unknown"
        assert "before the solve started" in response["reason"]

    def test_generous_budget_still_solves(self):
        with ServerHarness(port=0) as harness:
            with harness.client() as client:
                response = client.imply(
                    SIGMA, PHI, budget_ms=30_000, no_dedup=True
                )
        assert response["status"] == "ok"
        assert response["answer"] == "false"


class TestHealthStatsDrain:
    def test_health_and_stats(self):
        with ServerHarness(port=0) as harness:
            with harness.client() as client:
                health = client.health()
                client.imply(WORD_SIGMA, WORD_PHI)
                stats = client.stats()
        assert health["status"] == "ok"
        assert health["state"] == "serving"
        assert health["uptime_ms"] >= 0
        assert stats["counters"]["imply"] == 1
        assert stats["counters"]["solved"] == 1
        assert stats["queue"]["max"] == 64
        assert stats["ewma_solve_ms"] is not None
        assert "warm_pool" in stats

    def test_shutdown_drains_and_refuses_new_work(self):
        with ServerHarness(
            port=0, solver_threads=1, allow_delay=True
        ) as harness:
            inflight_response: dict = {}

            def slow():
                with harness.client() as client:
                    inflight_response.update(
                        client.imply(SIGMA, PHI, delay_ms=500)
                    )

            thread = threading.Thread(target=slow)
            thread.start()
            time.sleep(0.15)
            with harness.client() as client:
                ack = client.shutdown()
                assert ack["state"] == "draining"
                refused = client.imply(WORD_SIGMA, WORD_PHI)
                health = client.health()
            thread.join(timeout=30)
        # The in-flight solve completed and was answered.
        assert inflight_response["status"] == "ok"
        assert inflight_response["answer"] == "false"
        # New work was refused while health stayed answerable.
        assert refused["status"] == "draining"
        assert health["status"] == "ok"
        assert health["state"] == "draining"
        # The drained daemon retired the warm pool.
        assert not warm_pool_stats()["alive"]


class TestClientRobustness:
    def test_connection_refused_raises_server_unavailable(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        client = ServerClient(
            "127.0.0.1", free_port, retries=1, backoff_base=0.01
        )
        with pytest.raises(ServerUnavailable, match="failed after 2"):
            client.health()

    def test_client_reconnects_after_server_restart(self):
        with ServerHarness(port=0) as harness:
            port = harness.port
            client = ServerClient(
                "127.0.0.1", port, retries=4, backoff_base=0.05
            )
            assert client.health()["status"] == "ok"
            client.shutdown()
        # Server gone: the same client object now fails honestly.
        with pytest.raises(ServerUnavailable):
            client.imply(WORD_SIGMA, WORD_PHI)
        client.close()


@pytest.mark.stress
class TestSigtermDrainSubprocess:
    def test_sigterm_mid_flight_drains_cleanly(self, tmp_path):
        """SIGTERM during an in-flight solve: the solve completes and
        is answered, new work gets the drain status, the process exits
        0 (the CLI exit-code contract for a clean drain)."""
        port_file = tmp_path / "port"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--port-file",
                str(port_file),
                "--solver-threads",
                "1",
                "--allow-delay",
                "--no-cache",
            ],
            env={
                **os.environ,
                "PYTHONPATH": "src",
                "REPRO_CACHE_DIR": str(tmp_path / "cache"),
            },
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 15
            while not port_file.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            port = int(port_file.read_text())

            inflight: dict = {}

            def slow():
                with ServerClient("127.0.0.1", port, timeout=30) as c:
                    inflight.update(c.imply(SIGMA, PHI, delay_ms=800))

            thread = threading.Thread(target=slow)
            thread.start()
            time.sleep(0.3)
            proc.send_signal(signal.SIGTERM)
            time.sleep(0.1)
            # While draining, new work is refused but answered.
            with ServerClient("127.0.0.1", port, timeout=30) as c:
                refused = c.imply(WORD_SIGMA, WORD_PHI)
            thread.join(timeout=30)
            returncode = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait(timeout=10)
        assert inflight["status"] == "ok"
        assert inflight["answer"] == "false"
        assert refused["status"] == "draining"
        assert returncode == 0


class TestQueryOverTheWire:
    def test_contains_word_cell(self):
        with ServerHarness(port=0) as harness:
            with harness.client() as client:
                response = client.query_contains(
                    WORD_SIGMA, "a", "c"
                )
                assert response["status"] == "ok"
                assert response["verdict"] == "true"
                assert response["method"] == "word-prestar-product"
                assert response["decidable"] is True

                refuted = client.query_contains(WORD_SIGMA, "c", "a")
                assert refuted["verdict"] == "false"
                assert refuted["witness"] == "c"

    def test_optimize_word_union(self):
        with ServerHarness(port=0) as harness:
            with harness.client() as client:
                response = client.query_optimize(
                    WORD_SIGMA, ["a", "a", "b", "c"]
                )
                assert response["status"] == "ok"
                assert response["branches_saved"] >= 1
                assert len(response["pruned"]) == response[
                    "branches_saved"
                ]
                assert "c" in response["optimized"]

    def test_optimize_rpq_branches(self):
        with ServerHarness(port=0) as harness:
            with harness.client() as client:
                response = client.query_optimize(
                    ["book.ref => book"],
                    ["book.(ref)*.author", "book.author"],
                )
                assert response["status"] == "ok"
                assert response["optimized"] == ["book.(ref)*.author"]
                assert response["branches_saved"] == 1

    def test_bad_action_is_error_not_disconnect(self):
        with ServerHarness(port=0) as harness:
            with harness.client() as client:
                response = client.request(
                    "query", action="teleport", sigma=[], left="a",
                    right="b",
                )
                assert response["status"] == "error"
                # The connection survives a bad request.
                assert client.health()["status"] == "ok"

    def test_counter_and_budget(self):
        with ServerHarness(port=0) as harness:
            with harness.client() as client:
                client.query_contains(WORD_SIGMA, "a", "c")
                client.query_optimize(WORD_SIGMA, ["a", "b"])
                stats = client.stats()
                assert stats["counters"]["query"] == 2
                # An over-tight budget degrades to unknown, not error.
                response = client.query_contains(
                    ["a => a.a", "b.b => ()"], "a.b", "c", budget_ms=1
                )
                assert response["status"] in ("ok", "rejected")
                if response["status"] == "ok":
                    assert response["verdict"] == "unknown"


# ---------------------------------------------------------------------------
# Hostile wire input, straight at the daemon (no proxy in between)
# ---------------------------------------------------------------------------


def _frame(**fields) -> bytes:
    fields.setdefault("v", protocol.PROTOCOL_VERSION)
    return json.dumps(fields).encode() + b"\n"


class TestHostileWire:
    def test_mid_frame_disconnect_does_not_wedge_the_daemon(self):
        with ServerHarness(port=0) as harness:
            payload = _frame(op="imply", sigma=SIGMA, phi=PHI, id=1)
            with socket.create_connection(
                ("127.0.0.1", harness.port), timeout=5
            ) as sock:
                sock.sendall(payload[: len(payload) // 2])
            # The half-frame connection is gone; a fresh client must
            # be served as if nothing happened.
            with harness.client() as client:
                assert client.health()["status"] == "ok"
                response = client.imply(SIGMA, PHI, jobs=1)
                assert response["answer"] == "false"

    def test_slow_loris_request_is_answered(self):
        with ServerHarness(port=0) as harness:
            payload = _frame(op="health", id=7)
            with socket.create_connection(
                ("127.0.0.1", harness.port), timeout=10
            ) as sock:
                for offset in range(0, len(payload), 3):
                    sock.sendall(payload[offset : offset + 3])
                    time.sleep(0.02)
                reply = sock.makefile("rb").readline()
            response = protocol.parse_response(reply)
            assert response["status"] == "ok" and response["id"] == 7

    def test_garbage_then_valid_frame_on_one_connection(self):
        with ServerHarness(port=0) as harness:
            with socket.create_connection(
                ("127.0.0.1", harness.port), timeout=10
            ) as sock:
                reader = sock.makefile("rb")
                sock.sendall(b"\xff\xfe this is not a frame\n")
                error = protocol.parse_response(reader.readline())
                assert error["status"] == "error"
                # Keep-alive survives the hostile line: the next valid
                # frame on the same connection is answered normally.
                sock.sendall(_frame(op="health", id=9))
                response = protocol.parse_response(reader.readline())
                assert response["status"] == "ok" and response["id"] == 9
            stats_client = harness.client()
            with stats_client:
                stats = stats_client.stats()
            assert stats["counters"]["protocol_errors"] >= 1


# ---------------------------------------------------------------------------
# The hung-solve watchdog over the wire
# ---------------------------------------------------------------------------


class TestHungSolveWatchdog:
    def test_wedged_solves_answer_unknown_and_capacity_recovers(self):
        # The PR's acceptance scenario: wedge as many consecutive
        # solves as there are solver threads; each must come back an
        # honest UNKNOWN carrying a hung_solve fault event, and a
        # subsequent clean solve must be answered at full capacity.
        threads = 2
        with ServerHarness(
            port=0,
            solver_threads=threads,
            allow_delay=True,
            watchdog_grace_ms=200,
            watchdog_hard_grace_ms=100,
        ) as harness:
            with harness.client(retries=0) as client:
                for _ in range(threads):
                    wedged = client.imply(
                        SIGMA, PHI, jobs=1, budget_ms=100,
                        no_dedup=True, wedge=True,
                    )
                    assert wedged["status"] == "rejected"
                    assert wedged["answer"] == "unknown"
                    kinds = [
                        event["kind"]
                        for event in wedged["faults"]["events"]
                    ]
                    assert "hung_solve" in kinds
                fresh = client.imply(SIGMA, PHI, jobs=1, no_dedup=True)
                assert fresh["status"] == "ok"
                assert fresh["answer"] == "false"
                stats = client.stats()
                assert stats["counters"]["hung_solves"] == threads
                pool = stats["solver_pool"]
                assert pool["retired"] == threads
                assert pool["threads"] == threads
                watchdog = stats["watchdog"]
                assert watchdog["hangs"] == threads

    def test_wedge_is_refused_without_allow_delay(self):
        # Without the testing instrument enabled, a wedge field is
        # inert: the solve runs normally.
        with ServerHarness(
            port=0, solver_threads=1, watchdog_grace_ms=200
        ) as harness:
            with harness.client(retries=0) as client:
                response = client.imply(
                    SIGMA, PHI, jobs=1, no_dedup=True, wedge=True
                )
                assert response["status"] == "ok"
                assert response["answer"] == "false"

    def test_cooperative_cancel_during_delay(self):
        # A delayed (cooperative) solve past its budget is cancelled
        # at the soft grace; no thread needs to be retired for it.
        with ServerHarness(
            port=0,
            solver_threads=1,
            allow_delay=True,
            watchdog_grace_ms=150,
            watchdog_hard_grace_ms=5_000,
        ) as harness:
            with harness.client(retries=0) as client:
                start = time.monotonic()
                response = client.imply(
                    SIGMA, PHI, jobs=1, budget_ms=100,
                    no_dedup=True, delay_ms=30_000,
                )
                elapsed = time.monotonic() - start
                assert response["status"] == "rejected"
                assert response["answer"] == "unknown"
                assert elapsed < 10.0
                stats = client.stats()
                assert stats["solver_pool"]["retired"] == 0

    def test_watchdog_disabled_keeps_legacy_behavior(self):
        with ServerHarness(
            port=0, solver_threads=1, watchdog_grace_ms=0
        ) as harness:
            with harness.client(retries=0) as client:
                response = client.imply(SIGMA, PHI, jobs=1)
                assert response["status"] == "ok"
                stats = client.stats()
                assert "watchdog" not in stats


# ---------------------------------------------------------------------------
# Client failover, frame cap, retry_after carry
# ---------------------------------------------------------------------------


class _ScriptedServer:
    """A hand-rolled one-thread server for client-side edge cases.

    ``script`` is a list of callables, one per accepted connection;
    each receives the connected socket and does whatever hostile or
    degenerate thing the test needs.
    """

    def __init__(self, script) -> None:
        self.script = list(script)
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.port = self.listener.getsockname()[1]
        self.accepted = 0
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def __enter__(self) -> "_ScriptedServer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            self.listener.close()
        except OSError:
            pass
        self._thread.join(timeout=5)

    def _serve(self) -> None:
        for act in self.script:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            self.accepted += 1
            try:
                act(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass


def _read_request(conn) -> dict:
    data = conn.makefile("rb").readline()
    return json.loads(data)


class TestClientFailoverAndFraming:
    def test_failover_to_second_endpoint_after_kill(self):
        with ServerHarness(port=0, solver_threads=1) as first, \
                ServerHarness(port=0, solver_threads=1) as second:
            client = ServerClient(
                endpoints=[
                    ("127.0.0.1", first.port),
                    ("127.0.0.1", second.port),
                ],
                retries=4,
                backoff_base=0.01,
                backoff_cap=0.1,
                jitter_seed=0,
                failure_threshold=1,
                cooldown_s=0.5,
            )
            with client:
                assert client.imply(WORD_SIGMA, WORD_PHI)["answer"] == "true"
                assert client.port == first.port
                first.client(retries=0).shutdown()
                deadline = time.monotonic() + 10
                while (
                    first.server.state != "stopped"
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.02)
                response = client.imply(
                    WORD_SIGMA, WORD_PHI, no_dedup=True
                )
                assert response["status"] == "ok"
                assert response["answer"] == "true"
                assert client.port == second.port
                states = client.endpoint_states()
                assert states[0]["open"] is True
                assert states[1]["open"] is False

    def test_circuit_breaker_half_opens_after_cooldown(self):
        # Endpoint A is dead from the start; after the cool-down the
        # client probes it again (half-open) rather than never
        # returning — a revived A must be rediscovered.
        with ServerHarness(port=0, solver_threads=1) as alive:
            dead = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            dead.bind(("127.0.0.1", 0))
            dead_port = dead.getsockname()[1]
            dead.close()  # nothing listens here
            client = ServerClient(
                endpoints=[
                    ("127.0.0.1", dead_port),
                    ("127.0.0.1", alive.port),
                ],
                retries=3,
                backoff_base=0.01,
                backoff_cap=0.05,
                jitter_seed=1,
                failure_threshold=1,
                cooldown_s=0.05,
            )
            with client:
                assert client.health()["status"] == "ok"
                assert client.port == alive.port
                time.sleep(0.1)
                # Past the cool-down the breaker is half-open again.
                states = client.endpoint_states()
                assert states[0]["open"] is False

    def test_oversize_response_frame_is_protocol_error(self):
        def huge(conn):
            _read_request(conn)
            conn.sendall(b"x" * (protocol.MAX_LINE_BYTES + 64) + b"\n")

        with _ScriptedServer([huge]) as server:
            client = ServerClient(
                "127.0.0.1", server.port, retries=0, timeout=10
            )
            with client:
                with pytest.raises(ServerUnavailable) as excinfo:
                    client.health()
            assert "exceeds" in str(excinfo.value)

    def test_mismatched_response_id_is_desync_not_an_answer(self):
        def wrong_id(conn):
            request = _read_request(conn)
            frame = {
                "v": protocol.PROTOCOL_VERSION,
                "status": "ok",
                "id": request["id"] + 1000,
                "answer": "true",
            }
            conn.sendall(json.dumps(frame).encode() + b"\n")

        with _ScriptedServer([wrong_id]) as server:
            client = ServerClient(
                "127.0.0.1", server.port, retries=0, timeout=10
            )
            with client:
                with pytest.raises(ServerUnavailable) as excinfo:
                    client.health()
            assert "desynchronized" in str(excinfo.value)

    def test_retry_after_hint_survives_final_transport_failure(self):
        # Attempt 1 gets an overloaded response with a hint; attempt 2
        # dies on transport.  The final ServerUnavailable must still
        # carry the hint — it is the only pacing signal the caller
        # has.
        def overloaded(conn):
            request = _read_request(conn)
            frame = {
                "v": protocol.PROTOCOL_VERSION,
                "status": "overloaded",
                "id": request["id"],
                "retry_after_ms": 1234,
            }
            conn.sendall(json.dumps(frame).encode() + b"\n")

        def slam(conn):
            _read_request(conn)

        with _ScriptedServer([overloaded, slam]) as server:
            client = ServerClient(
                "127.0.0.1",
                server.port,
                retries=1,
                backoff_base=0.01,
                backoff_cap=0.02,
                jitter_seed=0,
                timeout=10,
            )
            with client:
                with pytest.raises(ServerUnavailable) as excinfo:
                    client.health()
            assert excinfo.value.retry_after_ms == 1234

    def test_parse_endpoints_grammar(self):
        from repro.server import parse_endpoints

        assert parse_endpoints("h:1") == [("h", 1)]
        assert parse_endpoints("h1:1, h2:2") == [("h1", 1), ("h2", 2)]
        with pytest.raises(ValueError):
            parse_endpoints("")
        with pytest.raises(ValueError):
            parse_endpoints("h1:1,nonsense")
