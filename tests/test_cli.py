"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graph import figure1_graph
from repro.graph.serialize import from_dict, to_dict

SIGMA = """
# bibliography constraints
book :: author ~> wrote
book.author => person
person.wrote => book
"""


@pytest.fixture
def workspace(tmp_path):
    graph_file = tmp_path / "fig1.json"
    graph_file.write_text(json.dumps(to_dict(figure1_graph())))
    sigma_file = tmp_path / "sigma.txt"
    sigma_file.write_text(SIGMA)
    return tmp_path, str(graph_file), str(sigma_file)


class TestCheck:
    def test_passing_graph(self, workspace, capsys):
        _, graph, sigma = workspace
        assert main(["check", graph, sigma]) == 0
        assert "0 failed" in capsys.readouterr().out

    def test_failing_graph(self, workspace, capsys):
        tmp, _, sigma = workspace
        g = figure1_graph()
        g.add_edge("book1", "author", "ghost")
        bad = tmp / "bad.json"
        bad.write_text(json.dumps(to_dict(g)))
        assert main(["check", str(bad), sigma]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestImply:
    def test_word_implication(self, workspace, capsys):
        tmp, _, _ = workspace
        words = tmp / "words.txt"
        words.write_text("book.author => person\nperson.wrote => book\n")
        rc = main(["imply", str(words), "book.author.wrote => book"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "answer:     true" in out
        assert "P_w" in out and "PTIME" in out

    def test_countermodel_dump(self, workspace, capsys):
        tmp, _, sigma = workspace
        dump = tmp / "cm.json"
        rc = main(
            [
                "imply", sigma, "person => book",
                "--dump-countermodel", str(dump),
            ]
        )
        assert rc == 0
        assert "answer:     false" in capsys.readouterr().out
        # The dumped counter-model loads and is a real graph.
        graph = from_dict(json.loads(dump.read_text()))
        assert graph.node_count() >= 1

    def test_typed_context(self, workspace, tmp_path, capsys):
        schema_file = tmp_path / "schema.xml"
        schema_file.write_text(
            """
            <schema>
              <elementType id="cat">
                <element type="#head"/>
              </elementType>
              <elementType id="head"><string/></elementType>
            </schema>
            """
        )
        sigma_file = tmp_path / "s.txt"
        sigma_file.write_text("cat.member.head => cat.member.head\n")
        rc = main(
            [
                "imply", str(sigma_file), "cat => cat",
                "--context", "M+", "--schema", str(schema_file),
            ]
        )
        assert rc in (0, 2)  # definite or honest abstention

    def test_strict_mode_refuses_undecidable(self, workspace, capsys):
        _, _, sigma = workspace
        rc = main(["imply", sigma, "person :: wrote ~> author", "--strict"])
        assert rc == 3
        assert "error:" in capsys.readouterr().err

    def test_jobs_and_deadline_flags(self, workspace, capsys):
        _, _, sigma = workspace
        rc = main(
            [
                "imply", sigma, "person :: wrote ~> author",
                "--jobs", "2", "--deadline", "30",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "answer:     false" in out
        assert "engine:" in out
        assert "portfolio: jobs=2" in out

    def test_deadline_zero_reports_unknown(self, workspace, capsys):
        _, _, sigma = workspace
        rc = main(
            ["imply", sigma, "person :: wrote ~> author", "--deadline", "0"]
        )
        out = capsys.readouterr().out
        assert rc == 2  # UNKNOWN exit code
        assert "answer:     unknown" in out

    def test_missing_schema_for_typed_context(self, workspace):
        _, _, sigma = workspace
        rc = main(["imply", sigma, "a => b", "--context", "M"])
        assert rc == 3


class TestClassify:
    def test_reports_all_contexts(self, workspace, capsys):
        _, _, sigma = workspace
        assert main(["classify", sigma, "book :: author ~> wrote"]) == 0
        out = capsys.readouterr().out
        assert "fragment: P_c" in out
        assert "M+f" in out
        assert out.count("undecidable") == 3


class TestChaseAndDot:
    def test_chase_writes_repaired_graph(self, workspace, capsys):
        tmp, _, sigma = workspace
        g = figure1_graph()
        g.add_edge("book1", "author", "ghost")
        broken = tmp / "broken.json"
        broken.write_text(json.dumps(to_dict(g)))
        out_file = tmp / "fixed.json"
        rc = main(["chase", str(broken), sigma, "-o", str(out_file)])
        assert rc == 0
        fixed = from_dict(json.loads(out_file.read_text()))
        from repro.checking.engine import satisfies_all
        from repro.constraints import parse_constraints

        assert satisfies_all(fixed, parse_constraints(SIGMA))

    def test_dot_output(self, workspace, capsys):
        _, graph, _ = workspace
        assert main(["dot", graph]) == 0
        assert capsys.readouterr().out.startswith("digraph")


class TestErrorHandling:
    def test_missing_file(self, capsys):
        assert main(["check", "/nonexistent.json", "/nope.txt"]) == 3

    def test_bad_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        sigma = tmp_path / "s.txt"
        sigma.write_text("a => b")
        assert main(["check", str(bad), str(sigma)]) == 3

    def test_bad_constraint_syntax(self, workspace, tmp_path):
        _, graph, _ = workspace
        bad = tmp_path / "bad.txt"
        bad.write_text("this is not a constraint")
        assert main(["check", graph, str(bad)]) == 3


class TestImplyExitCodesAndHints:
    def test_definite_true_exits_zero(self, workspace, tmp_path):
        words = tmp_path / "w.txt"
        words.write_text("a => b\n")
        assert main(["imply", str(words), "a.c => b.c"]) == 0

    def test_unknown_exits_two(self, workspace, capsys):
        _, _, sigma = workspace
        rc = main(
            ["imply", sigma, "person :: wrote ~> author", "--deadline", "0"]
        )
        assert rc == 2
        assert "answer:     unknown" in capsys.readouterr().out

    def test_parse_error_exits_three(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("this is not a constraint !!!\n")
        assert main(["imply", str(bad), "a => b"]) == 3
        assert "error:" in capsys.readouterr().err

    def test_hint_shown_without_dump_flag(self, workspace, capsys):
        _, _, sigma = workspace
        rc = main(["imply", sigma, "person => book"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "use --dump-countermodel to save" in out

    def test_hint_suppressed_when_dumping(self, workspace, capsys, tmp_path):
        _, _, sigma = workspace
        dump = tmp_path / "cm.json"
        rc = main(
            [
                "imply", sigma, "person => book",
                "--dump-countermodel", str(dump),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "use --dump-countermodel to save" not in out
        assert f"written to {dump}" in out

    def test_jobs_warning_on_decidable_cell(self, tmp_path, capsys):
        words = tmp_path / "w.txt"
        words.write_text("a => b\n")
        rc = main(["imply", str(words), "a.c => b.c", "--jobs", "4"])
        err = capsys.readouterr().err
        assert rc == 0
        assert "warning: --jobs ignored" in err

    def test_no_jobs_warning_on_undecidable_cell(self, workspace, capsys):
        _, _, sigma = workspace
        rc = main(
            [
                "imply", sigma, "person :: wrote ~> author",
                "--jobs", "2", "--deadline", "10",
            ]
        )
        assert rc == 0
        assert "warning:" not in capsys.readouterr().err

    def test_deadline_honored_on_word_cell_no_warning(
        self, tmp_path, capsys
    ):
        # --deadline reaches the P_w chase fallback now, so it must
        # NOT warn on semistructured decidable cells.
        words = tmp_path / "w.txt"
        words.write_text("a => b\n")
        rc = main(["imply", str(words), "a.c => b.c", "--deadline", "5"])
        assert rc == 0
        assert "warning:" not in capsys.readouterr().err


class TestChaseExitCode:
    def test_non_fixpoint_exits_one(self, workspace, capsys):
        tmp, graph, _ = workspace
        sigma = tmp / "diverge.txt"
        # Forces unbounded node creation; one step cannot reach a
        # fixpoint.
        sigma.write_text("book => book.author\n")
        rc = main(
            ["chase", graph, str(sigma), "--max-steps", "1"]
        )
        assert rc == 1
        assert "fixpoint=False" in capsys.readouterr().out


class TestFuzzCommand:
    def test_clean_sweep_exits_zero(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        rc = main(
            [
                "fuzz", "--seed", "3", "--per-fragment", "2",
                "--fragment", "P_w", "--portfolio-jobs", "1",
                "--json-out", str(out_file),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 disagreement(s)" in out
        report = json.loads(out_file.read_text())
        assert report["ok"] is True
        assert report["fragments"]["P_w"]["instances"] == 2

    def test_unknown_fragment_exits_three(self, capsys):
        rc = main(["fuzz", "--per-fragment", "1", "--fragment", "nope"])
        assert rc == 3
        assert "error:" in capsys.readouterr().err


class TestQuery:
    def test_run_prints_answers(self, workspace, capsys):
        _, graph, _ = workspace
        assert main(["query", "run", graph, "book.(ref)*.author"]) == 0
        captured = capsys.readouterr()
        assert "8 edge(s) traversed" in captured.err
        assert captured.out.strip()

    def test_contains_true_exit_zero(self, workspace, capsys):
        _, _, sigma = workspace
        rc = main(
            ["query", "contains", sigma, "book.author", "person",
             "--no-cache"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict:    true" in out
        # The workspace Sigma carries a backward constraint, so the
        # checker lands on the sound-incomplete cell and says so.
        assert "sound-word-saturation" in out
        assert "sound-incomplete" in out

    def test_contains_false_exit_zero_with_witness(
        self, workspace, capsys
    ):
        _, _, sigma = workspace
        rc = main(
            ["query", "contains", sigma, "person", "book.author",
             "--no-cache"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict:    false" in out
        assert "witness:" in out

    def test_contains_unknown_exit_two(self, tmp_path, capsys):
        sigma = tmp_path / "egd.txt"
        sigma.write_text("a => a.a\nb.b => ()\n")
        rc = main(
            ["query", "contains", str(sigma), "a.b", "c",
             "--deadline", "1", "--no-cache"]
        )
        assert rc == 2
        assert "unknown" in capsys.readouterr().out

    def test_contains_bad_pattern_exit_three(self, workspace, capsys):
        _, _, sigma = workspace
        rc = main(
            ["query", "contains", sigma, "book.((", "person",
             "--no-cache"]
        )
        assert rc == 3
        assert "error:" in capsys.readouterr().err

    def test_optimize_reports_pruning(self, workspace, capsys):
        _, _, sigma = workspace
        rc = main(
            ["query", "optimize", sigma,
             "book.author", "book.author", "person", "--no-cache"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "saved:" in out
        assert "duplicate" in out

    def test_fuzz_clean_run(self, tmp_path, capsys):
        report_file = tmp_path / "fuzz.json"
        rc = main(
            ["query", "fuzz", "--seed", "0", "--rounds", "3",
             "--json-out", str(report_file)]
        )
        assert rc == 0
        payload = json.loads(report_file.read_text())
        assert payload["rounds"] == 3
        assert payload["disagreements"] == []
