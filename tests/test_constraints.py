"""Tests for the P_c constraint AST, parser and fragment classes."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constraints import (
    Direction,
    PathConstraint,
    backward,
    forward,
    infer_bounds,
    is_bounded_by,
    is_in_pw,
    is_in_pw_k,
    is_prefix_bounded_set,
    parse_constraint,
    parse_constraints,
    partition_bounded,
    word,
)
from repro.constraints.classes import check_prefix_bounded_set, is_in_pw_rho
from repro.errors import ConstraintSyntaxError
from repro.paths import EPSILON, Path

labels = st.sampled_from(["a", "b", "c", "K", "MIT", "book", "author"])
paths = st.lists(labels, min_size=0, max_size=4).map(Path)
nonempty_paths = st.lists(labels, min_size=1, max_size=4).map(Path)
directions = st.sampled_from([Direction.FORWARD, Direction.BACKWARD])
constraints = st.builds(PathConstraint, paths, paths, paths, directions)


class TestAst:
    def test_components(self):
        phi = forward("MIT", "book.ref", "book")
        assert phi.prefix == Path.parse("MIT")
        assert phi.lhs == Path.parse("book.ref")
        assert phi.rhs == Path.parse("book")
        assert phi.is_forward() and not phi.is_backward()

    def test_word_constraint_detection(self):
        assert word("a", "b").is_word_constraint()
        assert not forward("p", "a", "b").is_word_constraint()
        assert not backward("", "a", "b").is_word_constraint()

    def test_as_word_pair(self):
        assert word("a.b", "c").as_word_pair() == (
            Path.parse("a.b"),
            Path.parse("c"),
        )
        with pytest.raises(ValueError):
            backward("", "a", "b").as_word_pair()

    def test_with_strip_prefix_roundtrip(self):
        phi = forward("K", "a", "b")
        lifted = phi.with_prefix("MIT")
        assert lifted.prefix == Path.parse("MIT.K")
        assert lifted.strip_prefix("MIT") == phi

    def test_equality_and_hash(self):
        assert forward("p", "a", "b") == PathConstraint("p", "a", "b")
        assert forward("p", "a", "b") != backward("p", "a", "b")
        assert len({word("a", "b"), word("a", "b")}) == 1

    def test_alphabet(self):
        phi = backward("MIT.book", "author", "wrote")
        assert phi.alphabet() == frozenset({"MIT", "book", "author", "wrote"})

    def test_direction_type_checked(self):
        with pytest.raises(TypeError):
            PathConstraint("p", "a", "b", "forward")  # type: ignore[arg-type]


class TestFormulas:
    def test_word_formula_matches_paper(self):
        # Section 1: forall x (book.author(r,x) -> person(r,x)).
        phi = word("book.author", "person")
        assert phi.to_formula() == (
            "forall x (exists z1 (book(r, z1) and author(z1, x)) "
            "-> person(r, x))"
        )

    def test_inverse_formula_matches_paper(self):
        # Section 1: forall x (book(r,x) -> forall y (author(x,y) ->
        # wrote(y,x))).
        phi = backward("book", "author", "wrote")
        assert phi.to_formula() == (
            "forall x (book(r, x) -> forall y (author(x, y) -> wrote(y, x)))"
        )

    def test_forward_formula(self):
        phi = forward("MIT", "book.ref", "book")
        assert "forall y" in phi.to_formula()
        assert "book(x, y)" in phi.to_formula()


class TestParser:
    def test_word(self):
        phi = parse_constraint("book.author => person")
        assert phi == word("book.author", "person")

    def test_forward_with_prefix(self):
        phi = parse_constraint("MIT :: book.ref => book")
        assert phi == forward("MIT", "book.ref", "book")

    def test_backward(self):
        phi = parse_constraint("book :: author ~> wrote")
        assert phi == backward("book", "author", "wrote")

    def test_epsilon_spellings(self):
        phi = parse_constraint("l :: () => K")
        assert phi.lhs.is_empty()
        assert phi == forward("l", "", "K")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "a.b",
            "a => b => c",
            "a ~> b => c",
            "p :: q :: a => b",
            "a..b => c",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint(bad)

    def test_block_parsing_with_comments(self):
        block = """
        # extent constraints
        book.author => person   # inline note
        person.wrote => book
        """
        out = parse_constraints(block)
        assert len(out) == 2

    def test_block_reports_line_numbers(self):
        with pytest.raises(ConstraintSyntaxError, match="line 3"):
            parse_constraints("a => b\n\nbroken")

    @given(constraints)
    def test_str_parse_roundtrip(self, phi):
        assert parse_constraint(str(phi)) == phi


class TestFragments:
    def test_pw(self):
        assert is_in_pw(word("a", "b"))
        assert not is_in_pw(forward("K", "a", "b"))

    def test_pw_k(self):
        assert is_in_pw_k(word("a", "b"), "K")
        assert is_in_pw_k(forward("K", "a", "b"), "K")
        assert not is_in_pw_k(forward("J", "a", "b"), "K")
        assert not is_in_pw_k(forward("K.K", "a", "b"), "K")
        assert not is_in_pw_k(backward("K", "a", "b"), "K")

    def test_pw_rho(self):
        rho = Path.parse("MIT.bib")
        assert is_in_pw_rho(forward(rho, "a", "b"), rho)
        assert is_in_pw_rho(word("a", "b"), rho)
        assert not is_in_pw_rho(forward("MIT", "a", "b"), rho)


class TestBoundedness:
    """Definitions 2.3 and 2.4, including the paper's Sigma_0 example."""

    def sigma0(self):
        """Section 2.2's Sigma_0: MIT local extent constraints plus
        Warner local inverse constraints."""
        return parse_constraints(
            """
            MIT :: book.author => person
            MIT :: person.wrote => book
            Warner.book :: author ~> wrote
            Warner.person :: wrote ~> author
            """
        )

    def phi0(self):
        return parse_constraint("MIT :: book.ref => book")

    def test_bounded_by(self):
        assert is_bounded_by(self.phi0(), EPSILON, "MIT")
        # beta must not be empty.
        assert not is_bounded_by(forward("MIT", "", "book"), EPSILON, "MIT")
        # K must not prefix beta.
        assert not is_bounded_by(
            forward("MIT", "MIT.book", "book"), EPSILON, "MIT"
        )
        # backward constraints are never bounded.
        assert not is_bounded_by(
            backward("MIT", "author", "wrote"), EPSILON, "MIT"
        )

    def test_sigma0_is_prefix_bounded(self):
        assert is_prefix_bounded_set(self.sigma0(), EPSILON, "MIT")

    def test_sigma0_partition(self):
        bounded, rest = partition_bounded(self.sigma0(), EPSILON, "MIT")
        assert len(bounded) == 2
        assert len(rest) == 2
        assert all(phi.prefix.first() == "MIT" for phi in bounded)
        assert all(phi.prefix.first() == "Warner" for phi in rest)

    def test_guard_prefix_violation(self):
        # A constraint on a local database whose path starts with the
        # guard breaks Definition 2.3.
        sigma = parse_constraints("MIT.sub :: a => b")
        report = check_prefix_bounded_set(sigma, EPSILON, "MIT")
        assert not report.ok
        assert "guard" in report.offenders[0][1]

    def test_rho_equal_special_case(self):
        # pf(psi) == rho requires the exact form rho :: beta => K.
        good = parse_constraints("l :: () => K")
        assert is_prefix_bounded_set(good, Path.parse("l"), "K")
        bad = parse_constraints("l :: a => b")
        assert not is_prefix_bounded_set(bad, Path.parse("l"), "K")

    def test_prefix_outside_rho(self):
        sigma = parse_constraints("Stanford :: a => b")
        assert not is_prefix_bounded_set(sigma, Path.parse("MIT"), "K")

    def test_partition_raises_on_malformed(self):
        with pytest.raises(ValueError):
            partition_bounded(
                parse_constraints("MIT.sub :: a => b"), EPSILON, "MIT"
            )

    def test_infer_bounds(self):
        rho, guard = infer_bounds(self.phi0())
        assert rho == EPSILON
        assert guard == "MIT"
        rho, guard = infer_bounds(parse_constraint("l.K :: a => b"))
        assert rho == Path.parse("l")
        assert guard == "K"

    @pytest.mark.parametrize(
        "text",
        ["a => b", "p :: a ~> b", "MIT :: () => b", "K :: K.a => b"],
    )
    def test_infer_bounds_rejects(self, text):
        with pytest.raises(ValueError):
            infer_bounds(parse_constraint(text))


@given(paths, nonempty_paths, paths, st.sampled_from(["K", "G"]))
def test_bounded_implies_classified(rho, lhs, rhs, guard):
    """Anything built in the bounded shape is recognized as bounded,
    unless the guard prefixes the hypothesis path."""
    phi = forward(rho.append(guard), lhs, rhs)
    expected = not Path.single(guard).is_prefix_of(lhs)
    assert is_bounded_by(phi, rho, guard) == expected
    if expected:
        inferred_rho, inferred_guard = infer_bounds(phi)
        assert inferred_rho == rho
        assert inferred_guard == guard
