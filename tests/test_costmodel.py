"""Cost-model dispatch: validation, sizing, and strategy choice.

The regression under test: PR 2's pool portfolio could *lose* to the
sequential pipeline because ``jobs`` was treated as a command.  The
cost model prices every scan from the closed-form ``2^(L*n^2)`` space
size and only chooses the pool when the parallel gain clears a margin
over the pool's own fixed costs.
"""

import pytest

from repro.constraints import parse_constraint, parse_constraints
from repro.reasoning import Context, ImplicationProblem, solve
from repro.reasoning.costmodel import (
    INLINE_MAX_CODES,
    ExecMode,
    available_cpus,
    calibration,
    choose_execution,
    estimate_untyped_codes,
    normalize_jobs,
    observe_typed_scan,
    observe_untyped_scan,
    reset_calibration,
    validate_jobs,
    validate_max_respawns,
)


@pytest.fixture(autouse=True)
def _fresh_calibration():
    reset_calibration()
    yield
    reset_calibration()


class TestValidateJobs:
    @pytest.mark.parametrize("jobs", [1, 2, 8, 64])
    def test_positive_ints_pass_through(self, jobs):
        assert validate_jobs(jobs) == jobs

    @pytest.mark.parametrize("jobs", ["auto", "AUTO", "  auto  "])
    def test_auto_is_normalized(self, jobs):
        assert validate_jobs(jobs) == "auto"

    @pytest.mark.parametrize(
        "jobs", [0, -1, -8, 1.5, 2.0, True, False, None, "fast", "", "2"]
    )
    def test_nonsense_raises_value_error(self, jobs):
        with pytest.raises(ValueError):
            validate_jobs(jobs)

    def test_normalize_resolves_auto_to_cpu_count(self):
        assert normalize_jobs("auto") == available_cpus()
        assert normalize_jobs(3) == 3


class TestValidateMaxRespawns:
    @pytest.mark.parametrize("value", [0, 1, 5])
    def test_non_negative_ints_pass(self, value):
        assert validate_max_respawns(value) == value

    @pytest.mark.parametrize("value", [-1, 1.5, True, None, "2"])
    def test_nonsense_raises(self, value):
        with pytest.raises(ValueError):
            validate_max_respawns(value)


class TestDispatcherValidation:
    """Satellite regression: solve() rejects bad knobs before any work."""

    def _problem(self):
        return ImplicationProblem(
            parse_constraints("a => b"),
            parse_constraint("a => c"),
            Context.SEMISTRUCTURED,
        )

    @pytest.mark.parametrize("jobs", [0, -2, 1.5, "fast", True])
    def test_bad_jobs(self, jobs):
        with pytest.raises(ValueError):
            solve(self._problem(), jobs=jobs)

    @pytest.mark.parametrize("value", [-1, 0.5, "many"])
    def test_bad_max_respawns(self, value):
        with pytest.raises(ValueError):
            solve(self._problem(), max_respawns=value)

    def test_auto_is_accepted_on_every_cell(self):
        # Decidable cell: validation passes, routing ignores jobs.
        result = solve(self._problem(), jobs="auto")
        assert result.answer.is_definite


class TestEstimate:
    def test_closed_form_matches_hand_sum(self):
        # L=1: 2^1 + 2^4 + 2^9 = 530
        assert estimate_untyped_codes(1, 3) == 2 + 16 + 512
        assert estimate_untyped_codes(2, 2) == 4 + 256

    def test_zero_levels_is_zero(self):
        assert estimate_untyped_codes(3, 0) == 0

    def test_huge_spaces_cap_instead_of_bigint(self):
        assert estimate_untyped_codes(5, 10) == 1 << 62

    def test_negative_args_raise(self):
        with pytest.raises(ValueError):
            estimate_untyped_codes(-1, 2)


class TestChooseExecution:
    def test_sequential_request_stays_inline(self):
        d = choose_execution(
            kind="untyped", work_units=1000, jobs=1, cpus=8
        )
        assert d.mode is ExecMode.INLINE and d.jobs == 1

    def test_small_space_never_pays_for_a_pool(self):
        d = choose_execution(
            kind="untyped", work_units=530, jobs=8, cpus=8
        )
        assert d.mode is ExecMode.INLINE

    def test_one_cpu_never_chooses_the_pool(self):
        # The original regression: jobs=2 on a 1-CPU box must not
        # spawn processes that only add overhead.
        d = choose_execution(
            kind="untyped", work_units=1 << 25, jobs=2, cpus=1
        )
        assert d.mode is not ExecMode.POOL

    def test_large_space_many_cpus_pools(self):
        d = choose_execution(
            kind="untyped", work_units=1 << 25, jobs=8, cpus=8
        )
        assert d.mode is ExecMode.POOL
        assert d.jobs == 8

    def test_jobs_is_a_cap_not_a_command(self):
        d = choose_execution(
            kind="untyped", work_units=1 << 25, jobs=64, cpus=4
        )
        assert d.jobs <= 4

    def test_medium_space_chunks_in_process(self):
        d = choose_execution(
            kind="untyped",
            work_units=INLINE_MAX_CODES * 4,
            jobs=2,
            cpus=1,
        )
        assert d.mode is ExecMode.SHARDED

    def test_warm_pool_lowers_the_threshold(self):
        # A scan too small to amortize a cold spawn is still worth
        # dispatching onto workers that already exist.
        kwargs = dict(kind="untyped", work_units=20_000, jobs=2, cpus=2)
        cold = choose_execution(warm_available=False, **kwargs)
        warm = choose_execution(warm_available=True, **kwargs)
        assert cold.mode is ExecMode.INLINE
        assert warm.mode is ExecMode.POOL and warm.warm

    def test_typed_scans_discount_the_parallel_fraction(self):
        # Stride shards re-enumerate the full instance stream, so only
        # half a typed scan parallelizes: at the default 4.5k/s rate an
        # estimated ~0.3s scan would clear the pool margin at full
        # fraction but must stay inline at the discounted one, while a
        # ~1s scan pools either way.
        border = choose_execution(
            kind="typed", work_units=1_350, jobs=2, cpus=2
        )
        big = choose_execution(
            kind="typed", work_units=4_500, jobs=2, cpus=2
        )
        assert border.mode is ExecMode.INLINE
        assert big.mode is ExecMode.POOL

    def test_forced_pool_requires_two_jobs(self):
        with pytest.raises(ValueError):
            choose_execution(
                kind="untyped",
                work_units=10,
                jobs=1,
                forced=ExecMode.POOL,
            )

    def test_forced_mode_is_recorded(self):
        d = choose_execution(
            kind="untyped",
            work_units=10,
            jobs=2,
            cpus=1,
            forced=ExecMode.POOL,
        )
        assert d.mode is ExecMode.POOL and d.forced
        assert "forced" in d.describe()
        assert d.to_dict()["forced"] is True

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            choose_execution(kind="quantum", work_units=1, jobs=1)


class TestCalibration:
    def test_observations_move_the_rate(self):
        before = calibration().untyped_rate
        observe_untyped_scan(int(before * 4), 1.0)
        after = calibration().untyped_rate
        assert after > before
        assert calibration().untyped_samples == 1

    def test_degenerate_observations_are_ignored(self):
        before = calibration().typed_rate
        observe_typed_scan(0, 1.0)
        observe_typed_scan(100, 0.0)
        assert calibration().typed_rate == before
        assert calibration().typed_samples == 0

    def test_calibration_feeds_the_decision(self):
        # Slow the measured throughput far enough and a space that was
        # inline-cheap becomes pool-worthy.
        fast = choose_execution(
            kind="untyped", work_units=20_000, jobs=4, cpus=4
        )
        for _ in range(40):
            observe_untyped_scan(100, 1.0)  # ~100 codes/s: dire
        slow = choose_execution(
            kind="untyped", work_units=20_000, jobs=4, cpus=4
        )
        assert fast.mode is ExecMode.INLINE
        assert slow.mode is ExecMode.POOL
        assert slow.estimated_seconds > fast.estimated_seconds
