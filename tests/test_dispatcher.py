"""Tests for problem classification and Table-1 routing."""

from __future__ import annotations

import pytest

from repro.constraints import parse_constraint, parse_constraints
from repro.errors import UndecidableProblemError
from repro.reasoning import (
    Context,
    ImplicationProblem,
    ProblemClass,
    classify,
    solve,
    table1_cell,
)
from repro.truth import Trilean


class TestClassification:
    def test_word(self):
        sigma = parse_constraints("a => b")
        assert classify(sigma, parse_constraint("a.c => b.c")) is ProblemClass.WORD

    def test_pw_k(self):
        sigma = parse_constraints("() => K\nK :: a => b")
        phi = parse_constraint("a => b")
        assert classify(sigma, phi) is ProblemClass.PW_K

    def test_pw_k_needs_single_guard(self):
        sigma = parse_constraints("K :: a => b\nJ :: a => b")
        assert classify(sigma, parse_constraint("a => b")) is ProblemClass.GENERAL

    def test_local_extent(self):
        sigma = parse_constraints(
            """
            MIT :: book.author => person
            Warner.book :: author ~> wrote
            """
        )
        phi = parse_constraint("MIT :: book.ref => book")
        assert classify(sigma, phi) is ProblemClass.LOCAL_EXTENT

    def test_general(self):
        sigma = parse_constraints("book :: author ~> wrote")
        phi = parse_constraint("person :: wrote ~> author")
        assert classify(sigma, phi) is ProblemClass.GENERAL

    def test_guarded_not_local_extent_when_query_word(self):
        # A P_w(K) instance where the query is a word constraint cannot
        # be a Definition 2.4 instance (the query must be bounded).
        sigma = parse_constraints("K :: a => b")
        phi = parse_constraint("a => b")
        assert classify(sigma, phi) is ProblemClass.PW_K


class TestTable1:
    @pytest.mark.parametrize(
        "klass,context,decidable,complexity",
        [
            (ProblemClass.WORD, Context.SEMISTRUCTURED, True, "PTIME"),
            (ProblemClass.PW_K, Context.SEMISTRUCTURED, False, None),
            (ProblemClass.LOCAL_EXTENT, Context.SEMISTRUCTURED, True, "PTIME"),
            (ProblemClass.GENERAL, Context.SEMISTRUCTURED, False, None),
            (ProblemClass.WORD, Context.M, True, "cubic"),
            (ProblemClass.PW_K, Context.M, True, "cubic"),
            (ProblemClass.LOCAL_EXTENT, Context.M, True, "cubic"),
            (ProblemClass.GENERAL, Context.M, True, "cubic"),
            (ProblemClass.PW_K, Context.M_PLUS, False, None),
            (ProblemClass.LOCAL_EXTENT, Context.M_PLUS, False, None),
            (ProblemClass.GENERAL, Context.M_PLUS, False, None),
            (ProblemClass.PW_K, Context.M_PLUS_FINITE, False, None),
            (ProblemClass.LOCAL_EXTENT, Context.M_PLUS_FINITE, False, None),
            (ProblemClass.GENERAL, Context.M_PLUS_FINITE, False, None),
        ],
    )
    def test_cells_match_paper(self, klass, context, decidable, complexity):
        assert table1_cell(klass, context) == (decidable, complexity)


class TestProblemConstruction:
    def test_typed_context_needs_schema(self):
        with pytest.raises(ValueError):
            ImplicationProblem(
                parse_constraints("a => b"),
                parse_constraint("a => b"),
                context=Context.M,
            )

    def test_string_context_coerced(self):
        problem = ImplicationProblem(
            parse_constraints("a => b"),
            parse_constraint("a => b"),
            context="semistructured",
        )
        assert problem.context is Context.SEMISTRUCTURED


class TestRouting:
    def test_word_routed_to_ptime(self):
        problem = ImplicationProblem(
            parse_constraints("a => b"), parse_constraint("a.c => b.c")
        )
        result = solve(problem)
        assert result.answer is Trilean.TRUE
        assert result.method == "word-prefix-rewriting"

    def test_local_extent_routed(self):
        problem = ImplicationProblem(
            parse_constraints(
                "MIT :: book.author => person\nWarner.book :: author ~> wrote"
            ),
            parse_constraint("MIT :: book.author => person"),
        )
        result = solve(problem)
        assert result.answer is Trilean.TRUE
        assert result.method == "local-extent-g1-g2-reduction"

    def test_m_routed_to_typed_decider(self, fs_schema):
        problem = ImplicationProblem(
            parse_constraints("sentence.head => subject"),
            parse_constraint("subject => sentence.head"),
            context=Context.M,
            schema=fs_schema,
        )
        result = solve(problem)
        assert result.answer is Trilean.TRUE
        assert result.complexity == "cubic"

    def test_undecidable_without_semidecision_raises(self):
        problem = ImplicationProblem(
            parse_constraints("book :: author ~> wrote"),
            parse_constraint("person :: wrote ~> author"),
        )
        with pytest.raises(UndecidableProblemError):
            solve(problem, allow_semidecision=False)

    def test_undecidable_semidecision_chase_true(self):
        sigma = parse_constraints("() => K\nK :: a => b")
        # K(r, r) by the first constraint; then a => b at the root...
        problem = ImplicationProblem(sigma, parse_constraint("a => b"))
        result = solve(problem)
        assert result.answer is Trilean.TRUE
        assert "chase" in result.method

    def test_undecidable_semidecision_countermodel(self):
        problem = ImplicationProblem(
            parse_constraints("book :: author ~> wrote"),
            parse_constraint("person :: wrote ~> author"),
        )
        result = solve(problem)
        assert result.answer is Trilean.FALSE
        assert result.countermodel is not None

    def test_m_plus_chase_true_transfers(self, bib_schema):
        # An untyped consequence holds a fortiori over U(Delta).
        sigma = parse_constraints("book.member.author => person")
        phi = parse_constraint("book.member.author.x => person.x")
        # x is not a schema path, so craft a real one instead:
        phi = parse_constraint(
            "book.member.author.member => person.member"
        )
        problem = ImplicationProblem(
            sigma, phi, context=Context.M_PLUS, schema=bib_schema
        )
        result = solve(problem)
        assert result.answer is Trilean.TRUE

    def test_m_plus_typed_countermodel(self, bib_schema):
        sigma = parse_constraints("book.member.author => person")
        phi = parse_constraint("person => book.member.author")
        problem = ImplicationProblem(
            sigma, phi, context=Context.M_PLUS, schema=bib_schema
        )
        result = solve(problem, typed_search_limit=2000)
        assert result.answer is Trilean.FALSE
        assert result.countermodel is not None

    def test_notes_mention_undecidability(self):
        problem = ImplicationProblem(
            parse_constraints("book :: author ~> wrote"),
            parse_constraint("person :: wrote ~> author"),
        )
        result = solve(problem)
        assert any("undecidable" in note for note in result.notes)


class TestWithProofUniformity:
    """The with_proof flag must reach every decidable route — the
    local-extent cell used to drop it silently."""

    def test_local_extent_threads_with_proof(self):
        problem = ImplicationProblem(
            parse_constraints(
                "MIT :: book.author => person\nWarner.book :: author ~> wrote"
            ),
            parse_constraint("MIT :: book.author => person"),
        )
        result = solve(problem, with_proof=True)
        assert result.answer is Trilean.TRUE
        assert result.method == "local-extent-g1-g2-reduction"
        assert result.proof is not None
        assert any("reduced word instance" in note for note in result.notes)

    def test_local_extent_no_proof_when_not_requested(self):
        problem = ImplicationProblem(
            parse_constraints(
                "MIT :: book.author => person\nWarner.book :: author ~> wrote"
            ),
            parse_constraint("MIT :: book.author => person"),
        )
        assert solve(problem, with_proof=False).proof is None

    def test_word_route_still_threads_with_proof(self):
        problem = ImplicationProblem(
            parse_constraints("a => b"), parse_constraint("a.c => b.c")
        )
        assert solve(problem, with_proof=True).proof is not None


class TestTable1Reconciliation:
    """solve() must hand back results whose decidable/complexity agree
    with table1_cell — each route is checked, and a lying procedure is
    an AssertionError, not a silently wrong report."""

    @pytest.mark.parametrize(
        "context",
        [Context.SEMISTRUCTURED, Context.M, Context.M_PLUS,
         Context.M_PLUS_FINITE],
    )
    def test_result_matches_cell_in_every_context(self, context, fs_schema):
        sigma = parse_constraints("sentence => sentence")
        phi = parse_constraint("sentence => sentence")
        schema = None if context is Context.SEMISTRUCTURED else fs_schema
        problem = ImplicationProblem(sigma, phi, context, schema=schema)
        result = solve(problem, deadline=10)
        decidable, complexity = table1_cell(
            classify(sigma, phi), context
        )
        assert result.decidable == decidable
        if decidable:
            assert result.complexity == complexity

    def test_word_route_complexity_normalized(self):
        problem = ImplicationProblem(
            parse_constraints("a => b"), parse_constraint("a.c => b.c")
        )
        result = solve(problem)
        assert result.decidable is True
        assert result.complexity == "PTIME"

    def test_m_route_reports_cubic(self, fs_schema):
        problem = ImplicationProblem(
            parse_constraints("sentence => sentence"),
            parse_constraint("sentence => sentence"),
            Context.M,
            schema=fs_schema,
        )
        result = solve(problem)
        assert result.decidable is True
        assert result.complexity == "cubic"

    def test_undecidable_route_reports_undecidable(self):
        problem = ImplicationProblem(
            parse_constraints("book :: author ~> wrote"),
            parse_constraint("person :: wrote ~> author"),
        )
        result = solve(problem, deadline=10)
        assert result.decidable is False
        assert result.complexity is None

    def test_lying_procedure_caught(self, monkeypatch):
        from repro.reasoning import dispatcher as mod
        from repro.reasoning.result import ImplicationResult

        def lying_decider(sigma, phi, with_proof=False, **kwargs):
            return ImplicationResult(
                answer=Trilean.TRUE,
                method="liar",
                decidable=False,  # contradicts the (P_w, ss) cell
            )

        monkeypatch.setattr(mod, "implies_word", lying_decider)
        problem = ImplicationProblem(
            parse_constraints("a => b"), parse_constraint("a => b")
        )
        with pytest.raises(AssertionError, match="Table 1"):
            mod.solve(problem)
