"""Tests for typed instances and the Lemma 3.1 abstraction."""

from __future__ import annotations

import pytest

from repro.constraints import parse_constraint
from repro.errors import InstanceError
from repro.paths import Path
from repro.types import MEMBERSHIP_LABEL, Schema
from repro.types.examples import example_3_1_schema, feature_structure_schema
from repro.types.instances import Instance, Oid, enumerate_instances
from repro.types.typecheck import check_type_constraint

M = MEMBERSHIP_LABEL


@pytest.fixture
def bib_instance(bib_schema):
    """Two books, two persons, inverse author/wrote values."""
    b1, b2 = Oid("b1"), Oid("b2")
    p1, p2 = Oid("p1"), Oid("p2")
    return Instance(
        bib_schema,
        oids={"Book": {b1, b2}, "Person": {p1, p2}},
        values={
            b1: {
                "title": "Foundations",
                "ISBN": "111",
                "year": frozenset({1995}),
                "ref": frozenset({b2}),
                "author": frozenset({p1}),
            },
            b2: {
                "title": "Semistructured",
                "ISBN": "222",
                "year": frozenset(),
                "ref": frozenset(),
                "author": frozenset({p1, p2}),
            },
            p1: {
                "name": "Ada",
                "SSN": "s1",
                "age": frozenset({36}),
                "wrote": frozenset({b1, b2}),
            },
            p2: {
                "name": "Bob",
                "SSN": "s2",
                "age": frozenset(),
                "wrote": frozenset({b2}),
            },
        },
        entry={"person": frozenset({p1, p2}), "book": frozenset({b1, b2})},
    )


class TestOid:
    def test_identity(self):
        assert Oid("x") == Oid("x")
        assert Oid("x") != Oid("y")
        assert Oid("x") != "x"
        assert len({Oid("x"), Oid("x")}) == 1


class TestValidation:
    def test_valid_instance(self, bib_instance):
        bib_instance.validate()

    def test_missing_value(self, bib_schema):
        b = Oid("b")
        inst = Instance(
            bib_schema, oids={"Book": {b}}, values={}, entry={
                "person": frozenset(), "book": frozenset()}
        )
        with pytest.raises(InstanceError, match="no value"):
            inst.validate()

    def test_oid_in_two_classes(self, bib_schema):
        x = Oid("x")
        inst = Instance(
            bib_schema,
            oids={"Book": {x}, "Person": {x}},
            values={x: {}},
            entry={"person": frozenset(), "book": frozenset()},
        )
        with pytest.raises(InstanceError, match="both"):
            inst.validate()

    def test_wrong_atom_type(self, bib_schema):
        b = Oid("b")
        inst = Instance(
            bib_schema,
            oids={"Book": {b}},
            values={
                b: {
                    "title": 42,  # should be a string
                    "ISBN": "i",
                    "year": frozenset(),
                    "ref": frozenset(),
                    "author": frozenset(),
                }
            },
            entry={"person": frozenset(), "book": frozenset({b})},
        )
        with pytest.raises(InstanceError, match="not a string"):
            inst.validate()

    def test_bool_is_not_int(self, bib_schema):
        b = Oid("b")
        inst = Instance(
            bib_schema,
            oids={"Book": {b}},
            values={
                b: {
                    "title": "t",
                    "ISBN": "i",
                    "year": frozenset({True}),
                    "ref": frozenset(),
                    "author": frozenset(),
                }
            },
            entry={"person": frozenset(), "book": frozenset({b})},
        )
        with pytest.raises(InstanceError):
            inst.validate()

    def test_record_label_mismatch(self, bib_schema):
        b = Oid("b")
        inst = Instance(
            bib_schema,
            oids={"Book": {b}},
            values={b: {"title": "t"}},
            entry={"person": frozenset(), "book": frozenset({b})},
        )
        with pytest.raises(InstanceError, match="labels"):
            inst.validate()

    def test_foreign_oid_in_set(self, bib_schema):
        b = Oid("b")
        ghost = Oid("ghost")
        inst = Instance(
            bib_schema,
            oids={"Book": {b}},
            values={
                b: {
                    "title": "t",
                    "ISBN": "i",
                    "year": frozenset(),
                    "ref": frozenset({ghost}),
                    "author": frozenset(),
                }
            },
            entry={"person": frozenset(), "book": frozenset({b})},
        )
        with pytest.raises(InstanceError):
            inst.validate()

    def test_class_of(self, bib_instance):
        assert bib_instance.class_of(Oid("b1")) == "Book"
        with pytest.raises(InstanceError):
            bib_instance.class_of(Oid("nope"))


class TestAbstraction:
    """Lemma 3.1: instances and their graphs agree."""

    def test_graph_satisfies_type_constraint(self, bib_schema, bib_instance):
        graph = bib_instance.to_graph()
        report = check_type_constraint(bib_schema, graph)
        assert report.ok, report.summary()

    def test_path_evaluation_agrees(self, bib_instance):
        graph = bib_instance.to_graph()
        for text in [
            "",
            "book",
            f"book.{M}",
            f"book.{M}.title",
            f"book.{M}.author.{M}.name",
            f"book.{M}.ref.{M}.author.{M}",
            f"person.{M}.wrote.{M}.title",
            "person",
            f"book.{M}.year.{M}",
        ]:
            path = Path.parse(text)
            assert bib_instance.eval_path(path) == graph.eval_path(path), text

    def test_constraint_satisfaction_through_abstraction(self, bib_instance):
        # Inverse constraints hold in the instance (author/wrote were
        # built inverse).
        inv1 = parse_constraint(f"book.{M} :: author.{M} ~> wrote.{M}")
        inv2 = parse_constraint(f"person.{M} :: wrote.{M} ~> author.{M}")
        assert bib_instance.satisfies(inv1)
        assert bib_instance.satisfies(inv2)
        # Extent constraints too (membership hops on both sides: the
        # authors of any book are members of the person extent).
        assert bib_instance.satisfies(
            parse_constraint(f"book.{M}.author.{M} => person.{M}")
        )
        # And a false one is false.
        assert not bib_instance.satisfies(
            parse_constraint(f"book.{M}.ref.{M} => person.{M}")
        )

    def test_empty_sets_are_merged_extensionally(self, bib_instance):
        graph = bib_instance.to_graph()
        # b2.year and p2.age are both empty {int} sets -> same node.
        year_nodes = graph.eval_path_from_set(
            "year", graph.eval_path(f"book.{M}")
        )
        age_nodes = graph.eval_path_from_set(
            "age", graph.eval_path(f"person.{M}")
        )
        empty_int_sets = {
            node
            for node in year_nodes | age_nodes
            if not graph.successors(node, M)
        }
        assert len(empty_int_sets) == 1

    def test_shared_atoms_are_merged(self, bib_schema):
        b1, b2 = Oid("b1"), Oid("b2")
        inst = Instance(
            bib_schema,
            oids={"Book": {b1, b2}},
            values={
                b1: {"title": "same", "ISBN": "1", "year": frozenset(),
                     "ref": frozenset(), "author": frozenset()},
                b2: {"title": "same", "ISBN": "2", "year": frozenset(),
                     "ref": frozenset(), "author": frozenset()},
            },
            entry={"person": frozenset(), "book": frozenset({b1, b2})},
        )
        graph = inst.to_graph()
        titles = graph.eval_path_from_set("title", graph.eval_path(f"book.{M}"))
        assert len(titles) == 1  # extensional atom node

    def test_oids_keep_identity(self, bib_schema):
        # Two distinct books with identical values stay distinct nodes.
        b1, b2 = Oid("b1"), Oid("b2")
        same = {
            "title": "t", "ISBN": "i", "year": frozenset(),
            "ref": frozenset(), "author": frozenset(),
        }
        inst = Instance(
            bib_schema,
            oids={"Book": {b1, b2}},
            values={b1: dict(same), b2: dict(same)},
            entry={"person": frozenset(), "book": frozenset({b1, b2})},
        )
        graph = inst.to_graph()
        assert len(graph.eval_path(f"book.{M}")) == 2

    def test_unreachable_oids_still_in_graph(self, bib_schema):
        b = Oid("b")
        inst = Instance(
            bib_schema,
            oids={"Book": {b}},
            values={b: {"title": "t", "ISBN": "i", "year": frozenset(),
                        "ref": frozenset(), "author": frozenset()}},
            entry={"person": frozenset(), "book": frozenset()},  # b not linked
        )
        inst.validate()
        graph = inst.to_graph()
        assert ("oid", "b") in graph.nodes
        assert graph.eval_path(f"book.{M}") == frozenset()


class TestEnumeration:
    def test_enumerated_instances_validate_and_typecheck(self, fs_schema):
        count = 0
        for instance in enumerate_instances(fs_schema, max_oids=1, limit=20):
            instance.validate()
            report = check_type_constraint(fs_schema, instance.to_graph())
            assert report.ok, report.summary()
            count += 1
        assert count > 0

    def test_enumeration_respects_limit(self, bib_schema):
        out = list(enumerate_instances(bib_schema, max_oids=1, limit=5))
        assert len(out) == 5

    def test_enumeration_lemma31_agreement(self, fs_schema):
        for instance in enumerate_instances(fs_schema, max_oids=2, limit=10):
            graph = instance.to_graph()
            for path in ["sentence", "sentence.head", "subject.agreement.number"]:
                assert instance.eval_path(path) == graph.eval_path(path)
