"""Tests for the incremental integrity checker.

The defining property: after any sequence of edge insertions, the
incremental violation set equals a from-scratch revalidation — checked
on hand-built scenarios and on randomized insertion traces.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking import IncrementalChecker
from repro.constraints import backward, forward, parse_constraints
from repro.graph import Graph


SIGMA = parse_constraints(
    """
    book :: author ~> wrote
    book.author => person
    person.wrote => book
    """
)


class TestScenario:
    def test_starts_consistent(self):
        checker = IncrementalChecker(Graph(root="r"), SIGMA)
        assert checker.ok
        assert checker.current_violations() == {}

    def test_violation_appears_and_heals(self):
        g = Graph(root="r")
        checker = IncrementalChecker(g, SIGMA)
        checker.add_edge("r", "book", "b")
        assert checker.ok
        checker.add_edge("b", "author", "p")
        # Two violations now: no inverse wrote edge, p not a person.
        assert not checker.ok
        assert len(checker.current_violations()) == 2
        checker.add_edge("p", "wrote", "b")
        checker.add_edge("r", "person", "p")
        assert checker.ok, checker.current_violations()
        assert checker.revalidate()

    def test_unrelated_labels_do_no_work(self):
        g = Graph(root="r")
        checker = IncrementalChecker(g, SIGMA)
        before = checker.recheck_count
        for i in range(20):
            checker.add_edge("r", "misc", i)
        assert checker.recheck_count == before  # no constraint mentions misc
        assert checker.ok

    def test_backward_constraint_repair(self):
        g = Graph(root="r")
        checker = IncrementalChecker(g, SIGMA)
        checker.add_edge("r", "book", "b")
        checker.add_edge("b", "author", "p")
        assert not checker.ok
        checker.add_edge("p", "wrote", "b")  # repairs the inverse
        bad = checker.current_violations()
        assert all(
            not c.is_backward() for c in bad
        ), "inverse constraint should be repaired"

    def test_matches_full_revalidation_on_figure1_build(self, fig1):
        # Rebuild Figure 1 edge by edge through the checker.
        g = Graph(root="r")
        checker = IncrementalChecker(g, SIGMA)
        for src, label, dst in sorted(fig1.edges(), key=repr):
            checker.add_edge(src, label, dst)
            # revalidate() compares incremental state against a fresh
            # batch run (and syncs); it must match after every insert.
            assert checker.revalidate()
        assert checker.ok


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(5, 40))
def test_incremental_equals_batch_on_random_traces(seed, steps):
    """Random insertion traces: the incremental set must equal the
    from-scratch one after every insertion."""
    rng = random.Random(seed)
    labels = ["book", "author", "wrote", "person", "ref"]
    g = Graph(root="r", nodes=range(6))
    checker = IncrementalChecker(g, SIGMA)
    for _ in range(steps):
        src = rng.choice(["r", 0, 1, 2, 3, 4, 5])
        dst = rng.choice(["r", 0, 1, 2, 3, 4, 5])
        label = rng.choice(labels)
        if g.has_edge(src, label, dst):
            continue
        checker.add_edge(src, label, dst)
    incremental = checker.current_violations()
    assert checker.revalidate(), (
        f"incremental {incremental} diverged from batch after trace "
        f"seed={seed}"
    )


@pytest.mark.parametrize("label", ["book", "author", "person", "wrote"])
def test_single_edge_kinds_consistent(label):
    """Each constraint-relevant label inserted in isolation keeps the
    incremental state equal to batch."""
    g = Graph(root="r")
    g.add_edge("r", "book", "b")
    g.add_edge("b", "author", "p")
    checker = IncrementalChecker(g, SIGMA)
    checker.add_edge("r" if label in ("book", "person") else "p", label, "x")
    assert checker.revalidate()


class TestRandomInterleavingsMixedConstraints:
    """Property-style (seeded) equivalence test covering the constraint
    shapes the scenario tests miss: *backward* constraints and
    equality-generating (empty-conclusion) constraints, under random
    interleavings of insertions.  After every insert the incremental
    state must equal a from-scratch revalidation."""

    SIGMA_MIXED = (
        backward("book", "author", "wrote"),
        backward("", "person", ""),
        forward("", "book.author", "person"),
        forward("person", "wrote.author", ""),
    )

    @pytest.mark.parametrize("seed", [1, 7, 42, 99, 20260806])
    def test_matches_revalidation_after_every_insert(self, seed):
        rng = random.Random(seed)
        g = Graph(root="r")
        checker = IncrementalChecker(g, self.SIGMA_MIXED)
        books = [f"b{i}" for i in range(4)]
        persons = [f"p{i}" for i in range(4)]
        pool = [("r", "book", b) for b in books]
        pool += [("r", "person", p) for p in persons]
        for b in books:
            for p in rng.sample(persons, 2):
                pool.append((b, "author", p))
                if rng.random() < 0.7:
                    pool.append((p, "wrote", b))
            if rng.random() < 0.3:
                # A wrote-edge back to a *different* book: stresses the
                # EGD person :: wrote.author => () with y != x pairs.
                pool.append((rng.choice(persons), "wrote", rng.choice(books)))
        rng.shuffle(pool)
        saw_violation = False
        for src, label, dst in pool:
            checker.add_edge(src, label, dst)
            saw_violation = saw_violation or not checker.ok
            assert checker.revalidate(), (
                f"incremental state diverged after {label}({src!r}, {dst!r}) "
                f"[seed {seed}]"
            )
        assert saw_violation  # the trace actually exercised violations
