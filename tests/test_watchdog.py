"""The hung-solve watchdog layer and the worker memory ceilings.

The paper's undecidable cells mean a solve may simply never return —
no amount of budget discipline fixes a computation that stops
cooperating.  These tests pin the two reclamation mechanisms this PR
adds and their one non-negotiable property: reclamation produces
honest UNKNOWNs and restored capacity, never fabricated verdicts.

* :class:`SolveWatchdog` escalates in two steps (cooperative cancel,
  then thread retirement) and never fires on a closed handle;
* :class:`RetiringSolverPool` replaces a retired thread so capacity
  survives abandonment, and a retirement that races a completed solve
  is a no-op;
* ``hang``/``oom`` fault injection wedges or OOMs real tasks, and
  rate plans never draw either (a randomly drawn infinite hang would
  wedge a fuzz sweep, not test anything);
* the ``RLIMIT_AS`` ceiling maps a worker's MemoryError onto the
  existing crash-recovery path, and the parent-side RSS guard demotes
  pooled execution before forking more memory-hungry workers;
* a pre-tripped cancel flag aborts a portfolio solve into UNKNOWN.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.constraints import parse_constraint, parse_constraints
from repro.errors import HungSolveError
from repro.reasoning import Budget, ImplicationProblem
from repro.reasoning.faultinject import FaultPlan, invoke
from repro.reasoning.portfolio import run_portfolio
from repro.reasoning.runtime import retire_warm_pool
from repro.reasoning.shm import CancelFlag
from repro.reasoning.watchdog import (
    RetiringSolverPool,
    SolveWatchdog,
    current_rss_mb,
    current_vms_mb,
)
from repro.truth import Trilean

DIVERGENT_SIGMA = "() => K\nK :: () => a.a.a\nK :: a.a.a => ()\na :: a => a"
DIVERGENT_PHI = "K :: a => ()"


def _divergent_problem() -> ImplicationProblem:
    return ImplicationProblem(
        parse_constraints(DIVERGENT_SIGMA), parse_constraint(DIVERGENT_PHI)
    )


@pytest.fixture(autouse=True)
def _cold_warm_pool():
    retire_warm_pool()
    yield
    retire_warm_pool()


def _wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestSolveWatchdog:
    def test_escalates_cancel_then_hang(self):
        fired: list[str] = []
        dog = SolveWatchdog(poll_s=0.01)
        try:
            handle = dog.watch(
                deadline=time.monotonic() + 0.05,
                grace_s=0.05,
                hard_grace_s=0.1,
                on_cancel=lambda: fired.append("cancel"),
                on_hang=lambda: fired.append("hang"),
                label="test",
            )
            assert _wait_until(lambda: fired == ["cancel"])
            assert handle.tripped
            assert not handle.hung
            assert _wait_until(lambda: fired == ["cancel", "hang"])
            assert handle.hung
            # Each callback fires exactly once, ever.
            time.sleep(0.1)
            assert fired == ["cancel", "hang"]
            stats = dog.stats()
            assert stats["cancels"] == 1 and stats["hangs"] == 1
        finally:
            dog.stop()

    def test_closed_handle_never_fires(self):
        fired: list[str] = []
        dog = SolveWatchdog(poll_s=0.01)
        try:
            handle = dog.watch(
                deadline=time.monotonic() + 0.05,
                grace_s=0.05,
                hard_grace_s=0.05,
                on_cancel=lambda: fired.append("cancel"),
                on_hang=lambda: fired.append("hang"),
            )
            handle.close()
            time.sleep(0.3)
            assert fired == []
            assert not handle.tripped
            assert dog.stats()["watching"] == 0
        finally:
            dog.stop()

    def test_callback_exception_does_not_kill_the_watchdog(self):
        fired: list[str] = []

        def explode() -> None:
            raise RuntimeError("watchdog callbacks are fallible")

        dog = SolveWatchdog(poll_s=0.01)
        try:
            dog.watch(
                deadline=time.monotonic(),
                grace_s=0.0,
                hard_grace_s=10.0,
                on_cancel=explode,
                on_hang=lambda: fired.append("never"),
            )
            second = dog.watch(
                deadline=time.monotonic(),
                grace_s=0.0,
                hard_grace_s=10.0,
                on_cancel=lambda: fired.append("cancel"),
                on_hang=lambda: fired.append("never"),
            )
            assert _wait_until(lambda: "cancel" in fired)
            assert second.tripped
        finally:
            dog.stop()


class TestRetiringSolverPool:
    def test_submit_returns_results(self):
        pool = RetiringSolverPool(2)
        try:
            futures = [pool.submit(lambda i=i: i * i) for i in range(8)]
            assert [f.result(timeout=5) for f in futures] == [
                i * i for i in range(8)
            ]
        finally:
            pool.shutdown()

    def test_task_exception_propagates(self):
        pool = RetiringSolverPool(1)
        try:

            def boom() -> None:
                raise ValueError("task failure")

            with pytest.raises(ValueError, match="task failure"):
                pool.submit(boom).result(timeout=5)
        finally:
            pool.shutdown()

    def test_retire_running_restores_capacity(self):
        pool = RetiringSolverPool(1)
        release = threading.Event()
        try:
            wedged = pool.submit(lambda: release.wait(timeout=30))
            assert _wait_until(lambda: pool.stats()["busy"] == 1)
            assert pool.retire_running(
                wedged, HungSolveError("abandoned by the test")
            )
            with pytest.raises(HungSolveError):
                wedged.result(timeout=5)
            # The replacement thread runs fresh work while the wedged
            # original is still blocked — capacity was reclaimed, not
            # merely accounted for.
            assert pool.submit(lambda: 41 + 1).result(timeout=5) == 42
            stats = pool.stats()
            assert stats["retired"] == 1
            assert stats["spawned"] == 2
        finally:
            release.set()
            pool.shutdown()

    def test_retire_after_completion_is_a_noop(self):
        pool = RetiringSolverPool(1)
        try:
            future = pool.submit(lambda: "done")
            assert future.result(timeout=5) == "done"
            assert not pool.retire_running(
                future, HungSolveError("too late")
            )
            assert future.result() == "done"
            assert pool.stats()["retired"] == 0
        finally:
            pool.shutdown()


class TestHangOomInjection:
    def test_hang_spec_parses_bounded_and_unbounded(self):
        plan = FaultPlan.from_spec("hang:2,hang:3:0.25")
        actions = dict(plan.targeted)
        assert actions[2].kind == "hang" and actions[2].param == 0.0
        assert actions[3].kind == "hang" and actions[3].param == 0.25

    def test_oom_spec_raises_memory_error(self):
        action = FaultPlan.from_spec("oom:0").action_for(0)
        with pytest.raises(MemoryError):
            invoke(action.kind, action.param, True, lambda: None, ())

    def test_bounded_hang_runs_task_afterwards(self):
        action = FaultPlan.from_spec("hang:0:0.05").action_for(0)
        start = time.monotonic()
        assert (
            invoke(action.kind, action.param, True, lambda: "ran", ())
            == "ran"
        )
        assert time.monotonic() - start >= 0.05

    def test_rate_plans_never_draw_hang_or_oom(self):
        plan = FaultPlan.from_spec("rate:1.0:17")
        kinds = {plan.action_for(i).kind for i in range(300)}
        assert "hang" not in kinds and "oom" not in kinds
        assert kinds <= {"kill", "raise", "delay", "corrupt"}

    def test_injected_oom_rides_the_crash_path(self):
        # oom on both first shards: the supervisor maps MemoryError to
        # the worker-crash respawn path and the verdict still settles.
        result = run_portfolio(
            _divergent_problem(),
            jobs=2,
            fault_plan=FaultPlan.from_spec("oom:0,oom:1"),
            execution="pool",
        )
        assert result.answer is Trilean.FALSE
        kinds = {e.kind for e in result.faults.events}
        assert "worker-oom" in kinds

    def test_rss_and_vms_probes_answer(self):
        rss = current_rss_mb()
        vms = current_vms_mb()
        assert rss is not None and rss > 0
        assert vms is not None and vms >= rss * 0.5


class TestMemoryCeilingAndGuard:
    def test_generous_worker_ceiling_still_solves(self):
        # A ceiling far above the worker's needs must be invisible.
        ceiling = int((current_vms_mb() or 1024) * 4 + 2048)
        result = run_portfolio(
            _divergent_problem(),
            jobs=2,
            execution="pool",
            max_worker_mb=ceiling,
        )
        assert result.answer is Trilean.FALSE

    def test_memory_guard_demotes_pool_to_sharded(self):
        # An RSS guard below the current RSS must veto pooled
        # execution up front — and the verdict must survive the
        # demotion.
        result = run_portfolio(
            _divergent_problem(),
            jobs=2,
            execution="pool",
            memory_guard_mb=1,
        )
        assert result.answer is Trilean.FALSE
        assert result.execution.mode.value == "sharded"
        assert any("memory guard" in note for note in result.notes)

    def test_guard_far_above_rss_changes_nothing(self):
        result = run_portfolio(
            _divergent_problem(),
            jobs=2,
            execution="pool",
            memory_guard_mb=1 << 20,
        )
        assert result.answer is Trilean.FALSE
        assert result.execution.mode.value == "pool"


class TestCooperativeCancel:
    def test_preset_cancel_aborts_to_unknown(self):
        cancel = CancelFlag.create()
        try:
            cancel.set()
            start = time.monotonic()
            result = run_portfolio(
                _divergent_problem(),
                jobs=1,
                budget=Budget.from_seconds(30.0),
                cancel=cancel,
            )
            assert result.answer is Trilean.UNKNOWN
            assert time.monotonic() - start < 5.0
        finally:
            cancel.release()

    def test_unset_cancel_does_not_disturb_the_solve(self):
        cancel = CancelFlag.create()
        try:
            result = run_portfolio(
                _divergent_problem(), jobs=1, cancel=cancel
            )
            assert result.answer is Trilean.FALSE
        finally:
            cancel.release()
