"""Tests for the untyped P_w decision procedure, cross-validated
against the chase and brute-force counter-model search."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import parse_constraint, parse_constraints, word
from repro.paths import Path
from repro.reasoning import WordImplicationDecider, implies_word
from repro.reasoning.axioms import UNIVERSALLY_SOUND_RULES, check_proof
from repro.reasoning.chase import chase_implication
from repro.reasoning.models import find_countermodel
from repro.truth import Trilean

words_st = st.lists(st.sampled_from(["a", "b"]), min_size=0, max_size=3).map(Path)
word_constraints = st.builds(word, words_st, words_st)


class TestDecider:
    def test_rejects_non_word_constraints(self):
        with pytest.raises(ValueError):
            WordImplicationDecider([parse_constraint("K :: a => b")])
        decider = WordImplicationDecider([])
        with pytest.raises(ValueError):
            decider.implies(parse_constraint("K :: a => b"))

    def test_reflexivity(self):
        decider = WordImplicationDecider([])
        assert decider.implies(word("a.b", "a.b"))

    def test_bibliography_consequences(self):
        sigma = parse_constraints(
            """
            book.author => person
            person.wrote => book
            book.ref => book
            """
        )
        decider = WordImplicationDecider(sigma)
        assert decider.implies(parse_constraint("book.author.wrote => book"))
        assert decider.implies(
            parse_constraint("book.ref.ref.author => person")
        )
        assert decider.implies(
            parse_constraint("book.author.wrote.author => person")
        )
        assert not decider.implies(parse_constraint("person => book"))
        assert not decider.implies(
            parse_constraint("book.author => book")
        )

    def test_right_congruence_consequence(self):
        decider = WordImplicationDecider(parse_constraints("a => b"))
        assert decider.implies(parse_constraint("a.x.y => b.x.y"))

    def test_not_left_congruent(self):
        decider = WordImplicationDecider(parse_constraints("a => b"))
        assert not decider.implies(parse_constraint("x.a => x.b"))

    def test_consequences_enumeration(self):
        decider = WordImplicationDecider(
            parse_constraints("a => b\nb.c => d")
        )
        out = decider.consequences("a.c", max_length=3)
        assert Path.parse("b.c") in out
        assert Path.parse("d") in out


class TestProofs:
    def test_proof_extracted_and_verified(self):
        sigma = parse_constraints(
            "book.author => person\nperson.wrote => book"
        )
        result = implies_word(
            sigma, parse_constraint("book.author.wrote => book"),
            with_proof=True,
        )
        assert result.implied
        assert result.proof is not None
        assert check_proof(result.proof) == parse_constraint(
            "book.author.wrote => book"
        )
        # Untyped proofs use only the universally sound rules.
        assert result.proof.rules_used() <= UNIVERSALLY_SOUND_RULES

    def test_no_proof_when_not_implied(self):
        decider = WordImplicationDecider(parse_constraints("a => b"))
        assert decider.prove(parse_constraint("b => a")) is None

    def test_trivial_proof(self):
        decider = WordImplicationDecider([])
        proof = decider.prove(word("x", "x"))
        assert proof is not None and len(proof.lines) == 1


class TestAgainstOracles:
    """The decider, the chase and brute-force search must agree."""

    @staticmethod
    def _implies_or_none(sigma, phi):
        """Decide, treating the documented escape hatch as abstention."""
        from repro.errors import IncompleteFragmentError

        try:
            return WordImplicationDecider(sigma).implies(phi)
        except IncompleteFragmentError:
            return None

    @settings(max_examples=40, deadline=None)
    @given(st.lists(word_constraints, max_size=3), word_constraints)
    def test_agrees_with_chase(self, sigma, phi):
        decider_answer = self._implies_or_none(sigma, phi)
        if decider_answer is None:
            return
        chase_answer = chase_implication(sigma, phi, max_steps=400)
        if chase_answer.answer.is_definite:
            assert chase_answer.answer.to_bool() == decider_answer, (
                f"sigma={list(map(str, sigma))}, phi={phi}"
            )

    @settings(max_examples=25, deadline=None)
    @given(st.lists(word_constraints, max_size=2), word_constraints)
    def test_no_countermodel_when_implied(self, sigma, phi):
        if self._implies_or_none(sigma, phi):
            assert find_countermodel(sigma, phi, max_nodes=2) is None

    @settings(max_examples=20, deadline=None)
    @given(st.lists(word_constraints, max_size=2), word_constraints)
    def test_countermodel_confirms_non_implication(self, sigma, phi):
        graph = find_countermodel(sigma, phi, max_nodes=2)
        if graph is not None:
            assert self._implies_or_none(sigma, phi) is not True


class TestEmptyConclusionFragment:
    """Equality-generating word constraints (empty conclusions) —
    outside [AV97]'s three-rule completeness; the decider layers a
    sound closure and a chase fallback (see the module docstring)."""

    def test_root_loop_consequence(self):
        # {a => ()} |= a => a.a: the a-node IS the root, so the root
        # has an a-loop and a.a(r, r) holds.
        decider = WordImplicationDecider(parse_constraints("a => ()"))
        assert decider.implies(parse_constraint("a => a.a"))
        assert decider.implies(parse_constraint("a.b => a.a.b"))
        assert not decider.implies(parse_constraint("b => a"))

    def test_congruent_loop_propagation(self):
        # b => a and a => () make the b-node the root too, so b is a
        # root loop: b => b.a follows (via the chase fallback).
        sigma = parse_constraints("b.a => a\nb => a\na => ()")
        decider = WordImplicationDecider(sigma)
        assert decider.implies(parse_constraint("b => b.a"))

    def test_no_three_rule_proof_for_closure_facts(self):
        decider = WordImplicationDecider(parse_constraints("a => ()"))
        phi = parse_constraint("a => a.a")
        assert decider.implies(phi)
        assert decider.prove(phi) is None  # honest: no I_r derivation

    def test_escape_hatch_raises(self):
        from repro.errors import IncompleteFragmentError

        # A divergent chase plus an EGD the closure cannot settle.
        sigma = parse_constraints("a => a.a\nb.b => ()")
        with pytest.raises(IncompleteFragmentError):
            WordImplicationDecider(sigma).implies(
                parse_constraint("a => b")
            )


class TestPaperSection41Fragment:
    """The P_w(K) encoding's *word* part behaves as expected before the
    guarded constraints enter (those make the problem undecidable)."""

    def test_k_tagging_rules(self):
        # () => K and K.l => K (the first two constraint families of
        # the Theorem 4.3 encoding) are plain word constraints: every
        # node is K-tagged.
        sigma = parse_constraints(
            """
            () => K
            K.a => K
            K.b => K
            """
        )
        decider = WordImplicationDecider(sigma)
        assert decider.implies(parse_constraint("a => K.a"))
        assert decider.implies(parse_constraint("a.b.a => K.a.b.a"))
        assert decider.implies(parse_constraint("K.a.b => K"))
        assert not decider.implies(parse_constraint("K => K.a"))

    def test_implication_equals_finite_implication_note(self):
        result = implies_word(
            parse_constraints("a => b"), parse_constraint("a.c => b.c")
        )
        assert result.answer is Trilean.TRUE
        assert result.decidable
        assert result.complexity == "PTIME"
        assert any("finite implication" in n for n in result.notes)


class TestChaseFallbackBudget:
    """The EGD chase fallback must honor caller-supplied budgets — it
    used to hardcode max_steps=4000 and ignore what the dispatcher
    threaded through."""

    #: closure cannot settle this (needs the chase), and the chase
    #: refutes it in a couple of steps.
    SIGMA = "a => ()\nb => a.b"
    PHI = "b => a"

    def test_default_budget_settles(self):
        result = implies_word(
            parse_constraints(self.SIGMA), parse_constraint(self.PHI)
        )
        assert result.answer is Trilean.FALSE

    def test_tiny_budget_raises_instead_of_guessing(self):
        from repro.errors import IncompleteFragmentError

        with pytest.raises(IncompleteFragmentError) as err:
            implies_word(
                parse_constraints(self.SIGMA),
                parse_constraint(self.PHI),
                chase_steps=1,
            )
        assert "chase_steps=1" in str(err.value)

    def test_decider_method_accepts_budget(self):
        decider = WordImplicationDecider(parse_constraints(self.SIGMA))
        assert decider.implies(parse_constraint(self.PHI)) is False
        from repro.errors import IncompleteFragmentError

        with pytest.raises(IncompleteFragmentError):
            decider.implies(parse_constraint(self.PHI), chase_steps=1)

    def test_dispatcher_threads_chase_steps(self):
        from repro.errors import IncompleteFragmentError
        from repro.reasoning import ImplicationProblem, solve

        problem = ImplicationProblem(
            parse_constraints(self.SIGMA), parse_constraint(self.PHI)
        )
        assert solve(problem).answer is Trilean.FALSE
        with pytest.raises(IncompleteFragmentError):
            solve(problem, chase_steps=1)

    def test_expired_deadline_raises(self):
        # Deadlines are absolute time.monotonic() values (a wall-clock
        # time.time() instant would sit decades in the monotonic
        # future and never expire).
        import time

        from repro.errors import IncompleteFragmentError

        with pytest.raises(IncompleteFragmentError):
            implies_word(
                parse_constraints(self.SIGMA),
                parse_constraint(self.PHI),
                deadline=time.monotonic() - 1,
            )
