"""Tests for the I_r proof system and its independent checker."""

from __future__ import annotations

import pytest

from repro.constraints import backward, forward, parse_constraint, word
from repro.errors import ProofError
from repro.paths import Path
from repro.reasoning.axioms import (
    ALL_RULES,
    IrProof,
    M_ONLY_RULES,
    ProofBuilder,
    ProofLine,
    UNIVERSALLY_SOUND_RULES,
    check_proof,
)


class TestRulePartition:
    def test_rule_sets_disjoint_and_complete(self):
        assert not (UNIVERSALLY_SOUND_RULES & M_ONLY_RULES)
        assert UNIVERSALLY_SOUND_RULES | M_ONLY_RULES == ALL_RULES
        # All eight paper rules plus axiom are present.
        assert len(ALL_RULES) == 9


class TestChecker:
    def test_axiom_line(self):
        phi = word("a", "b")
        proof = IrProof((phi,), (ProofLine(phi, "axiom"),))
        assert check_proof(proof) == phi

    def test_axiom_must_be_assumption(self):
        proof = IrProof((), (ProofLine(word("a", "b"), "axiom"),))
        with pytest.raises(ProofError, match="line 0"):
            check_proof(proof)

    def test_reflexivity(self):
        proof = IrProof((), (ProofLine(word("a", "a"), "reflexivity"),))
        check_proof(proof)
        bad = IrProof((), (ProofLine(word("a", "b"), "reflexivity"),))
        with pytest.raises(ProofError):
            check_proof(bad)

    def test_transitivity(self):
        a_b, b_c, a_c = word("a", "b"), word("b", "c"), word("a", "c")
        proof = IrProof(
            (a_b, b_c),
            (
                ProofLine(a_b, "axiom"),
                ProofLine(b_c, "axiom"),
                ProofLine(a_c, "transitivity", (0, 1)),
            ),
        )
        check_proof(proof)
        # Premises that do not chain.
        bad = IrProof(
            (a_b, b_c),
            (
                ProofLine(a_b, "axiom"),
                ProofLine(b_c, "axiom"),
                ProofLine(word("b", "a"), "transitivity", (0, 1)),
            ),
        )
        with pytest.raises(ProofError):
            check_proof(bad)

    def test_right_congruence(self):
        a_b = word("a", "b")
        good = IrProof(
            (a_b,),
            (
                ProofLine(a_b, "axiom"),
                ProofLine(word("a.z", "b.z"), "right-congruence", (0,)),
            ),
        )
        check_proof(good)
        # Different suffixes on the two sides.
        bad = IrProof(
            (a_b,),
            (
                ProofLine(a_b, "axiom"),
                ProofLine(word("a.z", "b.w"), "right-congruence", (0,)),
            ),
        )
        with pytest.raises(ProofError):
            check_proof(bad)

    def test_commutativity(self):
        a_b = word("a", "b")
        proof = IrProof(
            (a_b,),
            (
                ProofLine(a_b, "axiom"),
                ProofLine(word("b", "a"), "commutativity", (0,)),
            ),
        )
        check_proof(proof)

    def test_forward_to_word(self):
        phi = forward("p", "a", "b")
        proof = IrProof(
            (phi,),
            (
                ProofLine(phi, "axiom"),
                ProofLine(word("p.a", "p.b"), "forward-to-word", (0,)),
            ),
        )
        check_proof(proof)
        bad = IrProof(
            (phi,),
            (
                ProofLine(phi, "axiom"),
                ProofLine(word("p.a", "b"), "forward-to-word", (0,)),
            ),
        )
        with pytest.raises(ProofError):
            check_proof(bad)

    def test_word_to_forward(self):
        base = word("p.a", "p.b")
        target = forward("p", "a", "b")
        proof = IrProof(
            (base,),
            (
                ProofLine(base, "axiom"),
                ProofLine(target, "word-to-forward", (0,)),
            ),
        )
        check_proof(proof)

    def test_backward_conversions(self):
        phi = backward("p", "a", "w")
        image = word("p", "p.a.w")
        proof = IrProof(
            (phi,),
            (
                ProofLine(phi, "axiom"),
                ProofLine(image, "backward-to-word", (0,)),
                ProofLine(phi, "word-to-backward", (1,)),
            ),
        )
        check_proof(proof)

    def test_unknown_rule(self):
        proof = IrProof((), (ProofLine(word("a", "a"), "magic"),))
        with pytest.raises(ProofError, match="unknown rule"):
            check_proof(proof)

    def test_premise_out_of_range(self):
        proof = IrProof(
            (),
            (
                ProofLine(word("a", "a"), "reflexivity"),
                ProofLine(word("a", "a"), "transitivity", (0, 7)),
            ),
        )
        with pytest.raises(ProofError):
            check_proof(proof)

    def test_forward_premise_only_forward(self):
        # forward-to-word applied to a backward constraint must fail.
        phi = backward("p", "a", "b")
        proof = IrProof(
            (phi,),
            (
                ProofLine(phi, "axiom"),
                ProofLine(word("p.a", "p.b"), "forward-to-word", (0,)),
            ),
        )
        with pytest.raises(ProofError):
            check_proof(proof)

    def test_empty_proof_has_no_conclusion(self):
        with pytest.raises(ProofError):
            IrProof((), ()).conclusion


class TestBuilder:
    def test_builder_dedupes_lines(self):
        phi = word("a", "b")
        builder = ProofBuilder((phi,))
        first = builder.axiom(phi)
        second = builder.axiom(phi)
        assert first == second
        assert len(builder.build().lines) == 1

    def test_builder_rejects_foreign_axiom(self):
        builder = ProofBuilder((word("a", "b"),))
        with pytest.raises(ProofError):
            builder.axiom(word("x", "y"))

    def test_builder_produces_checkable_proofs(self):
        phi = word("a", "b")
        builder = ProofBuilder((phi,))
        start = builder.reflexivity(Path.parse("a.z"))
        ax = builder.axiom(phi)
        cong = builder.right_congruence(ax, Path.parse("z"))
        final = builder.transitivity(start, cong)
        proof = builder.build()
        assert check_proof(proof) == word("a.z", "b.z")
        assert proof.lines[final].constraint == word("a.z", "b.z")

    def test_sound_rule_classification(self):
        phi = word("a", "b")
        builder = ProofBuilder((phi,))
        ax = builder.axiom(phi)
        builder.commutativity(ax)
        proof = builder.build()
        assert proof.uses_only_sound_rules("M")
        assert not proof.uses_only_sound_rules("untyped")
