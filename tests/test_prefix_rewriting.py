"""Tests for the prefix-rewriting ``post*`` saturation engine.

The key property: ``derives`` (automaton saturation) agrees with an
independent breadth-first closure of the one-step relation on every
instance small enough to close exhaustively.
"""

from __future__ import annotations

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paths import Path
from repro.rewriting import PrefixRewriteSystem

labels = st.sampled_from(["a", "b", "c"])
words = st.lists(labels, min_size=0, max_size=3).map(Path)
rules = st.lists(st.tuples(words, words), min_size=0, max_size=4)


def bfs_reachable(
    system: PrefixRewriteSystem, source: Path, max_length: int, max_nodes: int = 4000
) -> set[Path]:
    """Independent oracle: explicit BFS closure, truncated by length."""
    seen = {source}
    queue = deque([source])
    while queue and len(seen) < max_nodes:
        word = queue.popleft()
        for step in system.neighbors(word):
            if len(step.target) <= max_length and step.target not in seen:
                seen.add(step.target)
                queue.append(step.target)
    return seen


class TestBasics:
    def test_reflexive(self):
        system = PrefixRewriteSystem([])
        assert system.derives("a.b", "a.b")
        assert not system.derives("a", "b")

    def test_single_rule(self):
        system = PrefixRewriteSystem([("a", "b")])
        assert system.derives("a", "b")
        assert system.derives("a.x", "b.x")  # right-congruence
        assert not system.derives("x.a", "x.b")  # prefix only!

    def test_chained(self):
        system = PrefixRewriteSystem([("a", "b.c"), ("b.c.d", "e")])
        assert system.derives("a.d", "e")

    def test_empty_lhs_rule(self):
        # epsilon => K : every word w rewrites to K.w.
        system = PrefixRewriteSystem([("", "K")])
        assert system.derives("a", "K.a")
        assert system.derives("a", "K.K.a")

    def test_empty_rhs_rule(self):
        system = PrefixRewriteSystem([("a.b", "")])
        assert system.derives("a.b.c", "c")
        assert system.derives("a.b", "")

    def test_growing_rhs_terminates(self):
        # The post* language is infinite; saturation must still halt.
        system = PrefixRewriteSystem([("a", "a.a")])
        assert system.derives("a", Path(["a"] * 30))
        assert not system.derives("a", "")

    def test_directedness(self):
        system = PrefixRewriteSystem([("a", "b")])
        assert not system.derives("b", "a")

    def test_symmetric(self):
        system = PrefixRewriteSystem([("a", "b")], symmetric=True)
        assert system.derives("b", "a")
        assert system.derives("b.x", "a.x")

    def test_inverse(self):
        system = PrefixRewriteSystem([("a", "b")])
        assert system.inverse().derives("b", "a")

    def test_alphabet(self):
        system = PrefixRewriteSystem([("a.b", "c")])
        assert system.alphabet() == frozenset({"a", "b", "c"})

    def test_cached_automata_reused(self):
        system = PrefixRewriteSystem([("a", "b")])
        first = system.post_star_automaton("a.x")
        second = system.post_star_automaton("a.x")
        assert first is second


class TestWordConstraintExamples:
    """The bibliography extent constraints as rewriting."""

    def setup_method(self):
        self.system = PrefixRewriteSystem(
            [
                ("book.author", "person"),
                ("person.wrote", "book"),
                ("book.ref", "book"),
            ]
        )

    def test_author_of_book_is_person(self):
        assert self.system.derives("book.author", "person")

    def test_transitive_navigation(self):
        # book.author.wrote -> person.wrote -> book.
        assert self.system.derives("book.author.wrote", "book")

    def test_ref_chain_collapses(self):
        assert self.system.derives("book.ref.ref.ref", "book")

    def test_no_unsound_consequence(self):
        assert not self.system.derives("person", "book.author")
        assert not self.system.derives("book", "person")

    def test_derivable_words_enumeration(self):
        out = set(self.system.derivable_words("book.ref.author", max_length=3))
        assert Path.parse("book.author") in out
        assert Path.parse("person") in out


class TestDerivations:
    def test_found_and_checked(self):
        system = PrefixRewriteSystem([("a", "b.c"), ("b.c.d", "e")])
        steps = system.find_derivation("a.d", "e")
        assert steps is not None
        assert system.check_derivation("a.d", "e", steps)

    def test_none_when_unreachable(self):
        system = PrefixRewriteSystem([("a", "b")])
        assert system.find_derivation("b", "a") is None

    def test_empty_derivation(self):
        system = PrefixRewriteSystem([])
        assert system.find_derivation("x", "x") == []

    def test_checker_rejects_tampering(self):
        system = PrefixRewriteSystem([("a", "b")])
        steps = system.find_derivation("a.x", "b.x")
        assert steps is not None and len(steps) == 1
        # Wrong suffix.
        from dataclasses import replace

        bad = [replace(steps[0], suffix=Path.parse("y"))]
        assert not system.check_derivation("a.x", "b.x", bad)
        # Wrong rule index.
        bad = [replace(steps[0], rule_index=5)]
        assert not system.check_derivation("a.x", "b.x", bad)
        # Inverted use in a non-symmetric system.
        bad = [replace(steps[0], inverted=True)]
        assert not system.check_derivation("a.x", "b.x", bad)

    def test_symmetric_derivation_checked(self):
        system = PrefixRewriteSystem([("a.b", "c")], symmetric=True)
        steps = system.find_derivation("c.z", "a.b.z")
        assert steps is not None
        assert steps[0].inverted
        assert system.check_derivation("c.z", "a.b.z", steps)


@settings(max_examples=60, deadline=None)
@given(rules, words, words)
def test_saturation_agrees_with_bfs(rule_list, source, target):
    """post* membership == BFS closure membership (both directions of
    disagreement would be a bug: missing reachability or unsound
    acceptance)."""
    system = PrefixRewriteSystem(rule_list)
    # The BFS oracle is exact for targets within its length bound as
    # long as intermediate words never need to exceed it; bound it by
    # the maximum possible one-step growth over a short derivation.
    max_len = max(len(source), len(target)) + max(
        (len(r) for _, r in rule_list), default=0
    ) * 3
    reachable = bfs_reachable(system, source, max_len)
    if target in reachable:
        assert system.derives(source, target)
    # The converse: anything saturation claims within the BFS horizon
    # must be BFS-reachable (soundness check on short words).
    for word in system.derivable_words(source, max_length=2, max_count=30):
        assert word in bfs_reachable(system, source, max_len + 2), word


@settings(max_examples=40, deadline=None)
@given(rules, words, words)
def test_symmetric_saturation_is_symmetric(rule_list, source, target):
    system = PrefixRewriteSystem(rule_list, symmetric=True)
    assert system.derives(source, target) == system.derives(target, source)


@settings(max_examples=40, deadline=None)
@given(rules, words, words, words)
def test_right_congruence_property(rule_list, source, target, suffix):
    """derives(u, v) implies derives(u.z, v.z)."""
    system = PrefixRewriteSystem(rule_list)
    if system.derives(source, target):
        assert system.derives(source.concat(suffix), target.concat(suffix))


@settings(max_examples=40, deadline=None)
@given(rules, words, words)
def test_derivation_exists_iff_derives(rule_list, source, target):
    """find_derivation and derives agree on small instances, and the
    returned derivation always re-checks."""
    system = PrefixRewriteSystem(rule_list)
    steps = system.find_derivation(source, target, max_steps=3000)
    if system.derives(source, target):
        # The BFS may legitimately give up only on long chains; for
        # these tiny instances it must succeed.
        assert steps is not None
        assert system.check_derivation(source, target, steps)
    else:
        assert steps is None
