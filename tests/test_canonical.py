"""Alpha-invariance and collision resistance of the canonical keys.

The cache's whole correctness story rests on two properties of
``canonicalize_instance``:

* *invariance*: any bijective renaming of the non-rigid alphabet
  (labels, and class names in typed contexts) plus any reordering or
  duplication of premises yields the identical key;
* *separation*: instances that are **not** alpha-equivalent get
  distinct keys — checked here by demanding a concrete witness
  bijection for every key collision in a generator sweep.
"""

from __future__ import annotations

import random

import pytest

from repro.constraints.ast import backward, forward, word
from repro.diffcheck.generators import FRAGMENT_GENERATORS, generate_instance
from repro.reasoning.canonical import (
    DEFAULT_SEARCH_CAP,
    canonicalize_instance,
    canonicalize_problem,
    rename_constraint,
    rename_schema,
)
from repro.reasoning.dispatcher import Context, ImplicationProblem
from repro.types.typesys import MEMBERSHIP_LABEL, RecordType


def _instance_labels(instance):
    """The renameable label universe of a generated instance."""
    labels = set(instance.phi.alphabet())
    for psi in instance.sigma:
        labels |= psi.alphabet()
    if instance.schema is not None:
        for tau in instance.schema.all_types():
            if isinstance(tau, RecordType):
                labels.update(label for label, _ in tau.fields)
        labels.discard(MEMBERSHIP_LABEL)
    return sorted(labels)


def _random_bijections(instance, rng):
    """A random label bijection (to fresh names) and class bijection."""
    labels = _instance_labels(instance)
    fresh = [f"x{i}_{rng.randint(0, 999)}" for i in range(len(labels))]
    rng.shuffle(fresh)
    label_map = dict(zip(labels, fresh))
    class_map = {}
    if instance.schema is not None:
        names = sorted(instance.schema.class_names)
        targets = [f"Z{i}_{rng.randint(0, 999)}" for i in range(len(names))]
        rng.shuffle(targets)
        class_map = dict(zip(names, targets))
    return label_map, class_map


def _renamed_problem(instance, label_map, class_map, rng):
    """An alpha-variant: renamed, premises shuffled and one duplicated."""
    sigma = [rename_constraint(psi, label_map) for psi in instance.sigma]
    if sigma:
        sigma.append(rng.choice(sigma))  # duplication must not matter
    rng.shuffle(sigma)
    schema = instance.schema
    if schema is not None:
        schema = rename_schema(schema, label_map, class_map)
    return ImplicationProblem(
        sigma,
        rename_constraint(instance.phi, label_map),
        instance.context,
        schema=schema,
    )


class TestAlphaInvariance:
    @pytest.mark.parametrize("fragment", sorted(FRAGMENT_GENERATORS))
    def test_permuted_instance_keys_identical(self, fragment):
        """Random renaming + premise shuffle never changes the key."""
        rng = random.Random(1234)
        for index in range(8):
            instance = generate_instance(fragment, seed=7, index=index)
            base = canonicalize_problem(
                ImplicationProblem(
                    instance.sigma,
                    instance.phi,
                    instance.context,
                    schema=instance.schema,
                )
            )
            if base.fallback:
                continue  # capped search is deterministic, not invariant
            for _ in range(5):
                label_map, class_map = _random_bijections(instance, rng)
                variant = canonicalize_problem(
                    _renamed_problem(instance, label_map, class_map, rng)
                )
                assert variant.key == base.key, (
                    f"{fragment}[{index}]: renaming changed the key\n"
                    f"map={label_map}/{class_map}\n"
                    f"base:\n{base.text}\nvariant:\n{variant.text}"
                )

    def test_premise_order_and_duplication(self):
        sigma = [word(("a",), ("b",)), word(("b", "b"), ("c",))]
        phi = word(("a", "b"), ("c",))
        k1 = canonicalize_instance(sigma, phi).key
        k2 = canonicalize_instance(list(reversed(sigma)) + [sigma[0]], phi).key
        assert k1 == k2

    def test_membership_label_is_rigid(self, fs_schema):
        """Renaming must never alias another label onto ``member``."""
        sigma = [forward((), (MEMBERSHIP_LABEL,), (MEMBERSHIP_LABEL,))]
        phi = forward((), (MEMBERSHIP_LABEL,), (MEMBERSHIP_LABEL,))
        form = canonicalize_instance(
            sigma, phi, context_value="M", schema=fs_schema
        )
        assert form.label_map[MEMBERSHIP_LABEL] == f"!{MEMBERSHIP_LABEL}"

    def test_unused_schema_ignored_in_semistructured_context(self, fs_schema):
        sigma = (word(("a",), ("b",)),)
        phi = word(("a",), ("b",))
        bare = canonicalize_problem(ImplicationProblem(sigma, phi))
        with_schema = canonicalize_problem(
            ImplicationProblem(sigma, phi, schema=fs_schema)
        )
        assert bare.key == with_schema.key

    def test_context_is_part_of_the_key(self, fs_schema):
        sigma = (forward((), ("a",), ("b",)),)
        phi = forward((), ("a",), ("b",))
        untyped = canonicalize_problem(ImplicationProblem(sigma, phi))
        typed = canonicalize_problem(
            ImplicationProblem(sigma, phi, Context.M_PLUS, schema=fs_schema)
        )
        assert untyped.key != typed.key


class TestSeparation:
    def test_direction_changes_key(self):
        fwd = canonicalize_instance(
            [forward(("K",), ("a",), ("b",))], forward(("K",), ("b",), ("a",))
        )
        bwd = canonicalize_instance(
            [backward(("K",), ("a",), ("b",))], forward(("K",), ("b",), ("a",))
        )
        assert fwd.key != bwd.key

    def test_collision_sweep_with_witness(self):
        """Every key collision in a generator sweep must be witnessed
        by an explicit alpha-equivalence bijection."""
        seen: dict[str, tuple] = {}
        for fragment in sorted(FRAGMENT_GENERATORS):
            for seed in (0, 1):
                for index in range(10):
                    inst = generate_instance(fragment, seed, index)
                    problem = ImplicationProblem(
                        inst.sigma, inst.phi, inst.context, schema=inst.schema
                    )
                    form = canonicalize_problem(problem)
                    if form.fallback:
                        continue
                    if form.key not in seen:
                        seen[form.key] = (problem, form)
                        continue
                    other_problem, other_form = seen[form.key]
                    assert _alpha_equivalent(
                        problem, form, other_problem, other_form
                    ), (
                        f"key collision without alpha-equivalence:\n"
                        f"{form.text}\n--- vs ---\n{other_form.text}"
                    )
        assert len(seen) > 50  # the sweep actually separated instances


def _alpha_equivalent(p1, f1, p2, f2) -> bool:
    """Does ``f2^-1 . f1`` witness p1 ~ p2 (premises as sets)?"""
    inv_l = f2.inverse_label_map()
    inv_c = f2.inverse_class_map()
    try:
        lmap = {orig: inv_l[canon] for orig, canon in f1.label_map.items()}
        cmap = {orig: inv_c[canon] for orig, canon in f1.class_map.items()}
    except KeyError:
        return False
    if {rename_constraint(psi, lmap) for psi in p1.sigma} != set(p2.sigma):
        return False
    if rename_constraint(p1.phi, lmap) != p2.phi:
        return False
    schema1 = p1.schema if p1.context is not Context.SEMISTRUCTURED else None
    schema2 = p2.schema if p2.context is not Context.SEMISTRUCTURED else None
    if (schema1 is None) != (schema2 is None):
        return False
    if schema1 is not None:
        renamed = rename_schema(schema1, lmap, cmap)
        if sorted(renamed.class_names) != sorted(schema2.class_names):
            return False
        if renamed.db_type != schema2.db_type:
            return False
        for name in renamed.class_names:
            if renamed.body_of(name) != schema2.body_of(name):
                return False
    return p1.context is p2.context


class TestFallback:
    def test_symmetric_blowup_falls_back_deterministically(self):
        """9 interchangeable labels exceed the 7! cap; the key must
        still be reproducible for the *same* instance."""
        sigma = [word((f"l{i}",), (f"l{i}",)) for i in range(9)]
        phi = word(("l0",), ("l0",))
        a = canonicalize_instance(sigma, phi)
        b = canonicalize_instance(sigma, phi)
        assert a.fallback and b.fallback
        assert a.key == b.key

    def test_cap_is_respected_but_raisable(self):
        sigma = [word((f"l{i}",), (f"l{i}",)) for i in range(6)]
        phi = word(("m",), ("m",))
        capped = canonicalize_instance(sigma, phi, search_cap=10)
        full = canonicalize_instance(
            sigma, phi, search_cap=DEFAULT_SEARCH_CAP
        )
        assert capped.fallback and not full.fallback

    def test_raised_cap_restores_invariance(self):
        rng = random.Random(5)
        sigma = [word((f"l{i}",), (f"l{i}",)) for i in range(5)]
        phi = word(("m",), ("m",))
        base = canonicalize_instance(sigma, phi)
        assert not base.fallback  # 5 symmetric labels: 120 < 5040
        names = [f"l{i}" for i in range(5)]
        shuffled = names[:]
        rng.shuffle(shuffled)
        mapping = dict(zip(names, shuffled))
        renamed = [rename_constraint(psi, mapping) for psi in sigma]
        rng.shuffle(renamed)
        assert canonicalize_instance(renamed, phi).key == base.key
