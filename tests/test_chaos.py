"""Wire-level chaos: the seeded TCP proxy and the acceptance sweep.

The proxy's faults are real socket behavior — dropped accepts,
half-frames, injected garbage, slow-loris trickle — perpetrated
between a production client and a production daemon, so both ends'
error paths (reconnect, resync, retry, hostile-input rejection) run
for real.  The invariant under every fault is the same one the solver
runtime promises under injected worker faults: a definite verdict may
be delayed or demoted to UNKNOWN, never flipped.
"""

from __future__ import annotations

import time

import pytest

from repro.reasoning.runtime import retire_warm_pool
from repro.server import ServerConfig
from repro.server.chaos import (
    CHAOS_KINDS,
    ChaosPlan,
    ChaosProxy,
    EmbeddedServer,
    run_chaos_sweep,
    sweep_instances,
)
from repro.server.client import ServerClient

SIGMA = ["() => K", "K :: () => a.a.a", "K :: a.a.a => ()", "a :: a => a"]
PHI = "K :: a => ()"


@pytest.fixture(autouse=True)
def _cold_warm_pool():
    retire_warm_pool()
    yield
    retire_warm_pool()


class TestChaosPlan:
    def test_targeted_clauses_parse(self):
        plan = ChaosPlan.from_spec("drop:0,partial:2,delay:1:0.5")
        assert plan.action_for(0).kind == "drop"
        assert plan.action_for(1).kind == "delay"
        assert plan.action_for(1).param == 0.5
        assert plan.action_for(2).kind == "partial"
        assert not plan.action_for(3).fires

    def test_rate_plan_is_deterministic_and_calibrated(self):
        plan = ChaosPlan.from_spec("rate:0.3:42")
        draws = [plan.action_for(i) for i in range(400)]
        again = [plan.action_for(i) for i in range(400)]
        assert draws == again
        fired = [a for a in draws if a.fires]
        assert 0.2 < len(fired) / 400 < 0.4
        assert {a.kind for a in fired} <= set(CHAOS_KINDS)

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            ChaosPlan.from_spec("explode:0")
        with pytest.raises(ValueError):
            ChaosPlan.from_spec("rate:1.5")
        with pytest.raises(ValueError):
            ChaosPlan.from_spec("drop")

    def test_sweep_instances_are_distinct(self):
        pool = sweep_instances()
        assert len({(tuple(s), p) for s, p in pool}) == len(pool)


def _proxied_client(proxy: ChaosProxy, **kwargs) -> ServerClient:
    kwargs.setdefault("timeout", 15.0)
    kwargs.setdefault("retries", 4)
    kwargs.setdefault("backoff_base", 0.01)
    kwargs.setdefault("backoff_cap", 0.1)
    kwargs.setdefault("jitter_seed", 0)
    assert proxy.port is not None
    return ServerClient("127.0.0.1", proxy.port, **kwargs)


class TestChaosProxy:
    def test_transparent_pass_through(self):
        with EmbeddedServer(ServerConfig(solver_threads=1)) as embedded:
            with ChaosProxy(
                "127.0.0.1", embedded.port, ChaosPlan.from_spec("")
            ) as proxy:
                with _proxied_client(proxy) as client:
                    response = client.imply(SIGMA, PHI, jobs=1)
        assert response["status"] == "ok"
        assert response["answer"] == "false"
        assert proxy.counters["connections"] == 1
        assert all(proxy.counters[kind] == 0 for kind in CHAOS_KINDS)

    @pytest.mark.parametrize(
        "spec",
        ["drop:0", "close:0", "partial:0", "garbage:0", "delay:0:0.2"],
    )
    def test_each_fault_kind_survives_via_retry(self, spec):
        kind = spec.split(":")[0]
        with EmbeddedServer(ServerConfig(solver_threads=1)) as embedded:
            with ChaosProxy(
                "127.0.0.1", embedded.port, ChaosPlan.from_spec(spec)
            ) as proxy:
                with _proxied_client(proxy) as client:
                    response = client.imply(SIGMA, PHI, jobs=1)
                assert proxy.counters[kind] == 1
        # The one planned fault costs at most a retry; the verdict is
        # the clean one, never a flip and never garbage parsed as an
        # answer.
        assert response["status"] == "ok"
        assert response["answer"] == "false"

    def test_slow_loris_delay_is_survived_in_band(self):
        # delay trickles the request; a patient server answers on the
        # same connection, no retry needed.
        with EmbeddedServer(ServerConfig(solver_threads=1)) as embedded:
            with ChaosProxy(
                "127.0.0.1", embedded.port, ChaosPlan.from_spec("delay:0:0.3")
            ) as proxy:
                with _proxied_client(proxy) as client:
                    start = time.monotonic()
                    response = client.imply(SIGMA, PHI, jobs=1)
                    elapsed = time.monotonic() - start
        assert response["status"] == "ok"
        assert elapsed >= 0.25
        assert proxy.counters["connections"] == 1


class TestChaosSweep:
    def test_small_sweep_passes_every_gate(self):
        report = run_chaos_sweep(
            seed=3, requests=12, fault_rate=0.4, watchdog_grace_ms=300
        )
        assert report["failures"] == []
        assert report["pass"] is True
        assert report["wire"]["flips"] == 0
        assert report["wire"]["availability"] >= 0.99
        assert report["wire"]["drain_state"] == "stopped"
        assert report["reclaim"]["wedged_answer"] == "unknown"
        assert "hung_solve" in report["reclaim"]["fault_events"]
        assert report["reclaim"]["reclaim_ms"] < 2 * 300
        assert report["reclaim"]["drain_state"] == "stopped"
        assert report["failover"]["after_status"] == "ok"
        assert report["failover"]["drain_state"] == "stopped"

    def test_sweep_is_seed_deterministic_in_shape(self):
        # The fault plan and instance sequence are pure functions of
        # the seed; wall-clock metrics vary, outcomes must not.
        first = run_chaos_sweep(
            seed=7, requests=10, fault_rate=0.3, watchdog_grace_ms=300
        )
        second = run_chaos_sweep(
            seed=7, requests=10, fault_rate=0.3, watchdog_grace_ms=300
        )
        keys = ("ok_match", "demoted", "flips", "unavailable")
        assert {k: first["wire"][k] for k in keys} == {
            k: second["wire"][k] for k in keys
        }
