"""Guards on the public API surface.

Downstream code imports from package roots; these tests pin the
re-exports (including the lazy ones on :mod:`repro` itself) so
refactors cannot silently drop them.
"""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize(
        "name",
        [
            "Path",
            "EPSILON",
            "Graph",
            "Signature",
            "figure1_graph",
            "PathConstraint",
            "Direction",
            "forward",
            "backward",
            "word",
            "parse_constraint",
            "parse_constraints",
            "ReproError",
            "Trilean",
        ],
    )
    def test_eager_exports(self, name):
        assert hasattr(repro, name)

    @pytest.mark.parametrize(
        "name",
        [
            "check",
            "check_all",
            "implies_word",
            "implies_local_extent",
            "implies_typed_m",
            "solve",
            "ImplicationProblem",
            "Schema",
        ],
    )
    def test_lazy_exports(self, name):
        assert getattr(repro, name) is not None

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing


PACKAGE_EXPORTS = {
    "repro.graph": ["Graph", "Signature", "figure1_graph", "random_graph"],
    "repro.constraints": [
        "PathConstraint",
        "parse_constraints",
        "is_in_pw_k",
        "partition_bounded",
        "RegularConstraint",
    ],
    "repro.automata": ["NFA", "DFA", "compile_regex"],
    "repro.rewriting": ["PrefixRewriteSystem", "RewriteStep"],
    "repro.monoids": [
        "MonoidPresentation",
        "FiniteMonoid",
        "Homomorphism",
        "decide_word_problem",
    ],
    "repro.types": [
        "Schema",
        "SchemaSignature",
        "Instance",
        "check_type_constraint",
        "MEMBERSHIP_LABEL",
    ],
    "repro.checking": ["check", "check_all", "violations", "IncrementalChecker"],
    "repro.reasoning": [
        "WordImplicationDecider",
        "TypedImplicationDecider",
        "implies_local_extent",
        "chase",
        "chase_implication",
        "IrProof",
        "check_proof",
        "solve",
        "classify",
        "table1_cell",
        "interaction_report",
    ],
    "repro.reductions": [
        "encode_pwk",
        "figure2_structure",
        "figure3_structure",
        "encode_mplus",
        "figure4_structure",
    ],
    "repro.xml": ["parse_xml", "document_to_graph", "schema_from_xml_data"],
    "repro.query": ["evaluate_rpq", "evaluate_word", "WordQueryOptimizer"],
}


@pytest.mark.parametrize(
    "module_name,names",
    sorted(PACKAGE_EXPORTS.items()),
    ids=sorted(PACKAGE_EXPORTS),
)
def test_package_exports(module_name, names):
    module = importlib.import_module(module_name)
    for name in names:
        assert hasattr(module, name), f"{module_name} lost {name}"
    declared = getattr(module, "__all__", None)
    if declared is not None:
        for name in names:
            assert name in declared


def test_cli_entrypoint_importable():
    from repro.cli import build_parser

    parser = build_parser()
    assert parser.prog == "repro"
