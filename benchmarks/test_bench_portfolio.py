"""Portfolio benchmarks: cost-model dispatch, pruning, typed scaling.

Two workloads, matching the two halves of the parallel-slower-than-
serial fix:

* **small untyped** — the PR 2 acceptance instance (smallest counter-
  model: 3 nodes, a 262144-code top level).  The seed sequential
  search is the honest baseline; each job count then runs through the
  *cost model* (``execution="auto"``), which is exactly what a user
  gets.  The regression being locked out: ``jobs=2`` used to pay cold
  pool spawn + per-shard pickling on a scan far too small to amortise
  it (measured 0.84s vs 0.20s at ``jobs=1``) — now the model keeps
  small scans in-process and ``jobs=2`` must land within 10% of
  ``jobs=1``.
* **large typed** — a full 2000-instance ``U_f(Delta)`` scan over the
  Example 3.1 schema.  The legacy driver (PR 2's cold stride-sharded
  pool, reference evaluator) is raced against the shipped auto path
  (cost-model dispatch + compiled bitmask screen); the new path must
  win by >= 4x.

The per-solve execution decision (mode, jobs, estimate, reason) is
recorded in ``BENCH_portfolio.json`` next to every timing, so a
regression in dispatch policy shows up as a mode flip in the diff, not
just as a mysterious slowdown.
"""

from __future__ import annotations

import time

import pytest

from _report import print_table, write_bench_json
from repro.constraints import parse_constraint, parse_constraints
from repro.reasoning import Context, ImplicationProblem
from repro.reasoning.costmodel import reset_calibration
from repro.reasoning.models import (
    CodeSpace,
    brute_force_countermodel,
    infer_alphabet,
    scan_codes,
)
from repro.reasoning.portfolio import (
    _typed_shard_task,
    parallel_countermodel_search,
    run_portfolio,
)
from repro.reasoning.runtime import WorkerSupervisor, retire_warm_pool
from repro.truth import Trilean
from repro.types.examples import example_3_1_schema

pytestmark = pytest.mark.bench

# The PR 2 acceptance instance: refutable, smallest counter-model has
# 3 nodes, alphabet {K, a} (the `a :: a => a` tautology forces the
# GENERAL fragment without widening the alphabet).
SIGMA_TEXT = "() => K\nK :: () => a.a.a\nK :: a.a.a => ()\na :: a => a"
PHI_TEXT = "K :: a => ()"

# The typed workload: no counter-model exists inside the enumeration
# bounds and untyped-chase FALSE does not transfer to M+, so every
# driver must grind through the full instance stream — the worst case
# the typed fast path was built for.
TYPED_SIGMA_TEXT = "book :: member ~> ()"
TYPED_PHI_TEXT = "book.member => person"
TYPED_LIMIT = 2000
TYPED_JOBS = 8

JOB_COUNTS = (1, 2, 4, 8)

_BENCH: dict = {}


def _instance():
    return parse_constraints(SIGMA_TEXT), parse_constraint(PHI_TEXT)


def test_small_untyped_cost_model_dispatch():
    sigma, phi = _instance()
    reset_calibration()
    retire_warm_pool()

    began = time.perf_counter()
    baseline_graph = brute_force_countermodel(sigma, phi, max_nodes=3)
    baseline = time.perf_counter() - began
    assert baseline_graph is not None
    assert baseline_graph.node_count() == 3

    rows = [["seed sequential", "-", "-", f"{baseline:.3f}", "1.00x"]]
    speedups: dict[str, float] = {}
    timings: dict[str, float] = {"seed_sequential": baseline}
    modes: dict[str, dict] = {}
    reference_edges = None
    for jobs in JOB_COUNTS:
        began = time.perf_counter()
        out = parallel_countermodel_search(
            sigma, phi, max_nodes=3, jobs=jobs
        )
        elapsed = time.perf_counter() - began
        assert out.graph is not None
        edges = sorted(out.graph.edges())
        if reference_edges is None:
            reference_edges = edges
        assert edges == reference_edges  # determinism across jobs
        speedups[str(jobs)] = baseline / elapsed
        timings[f"jobs_{jobs}"] = elapsed
        modes[f"jobs_{jobs}"] = out.decision.to_dict()
        rows.append(
            [
                f"portfolio jobs={jobs}",
                str(jobs),
                out.decision.mode.value,
                f"{elapsed:.3f}",
                f"{baseline / elapsed:.2f}x",
            ]
        )

    print_table(
        "cost-model portfolio vs seed sequential "
        f"(sigma: {SIGMA_TEXT!r}, phi: {PHI_TEXT!r})",
        ["engine", "jobs", "mode", "seconds", "speedup"],
        rows,
    )

    _BENCH["small_untyped"] = {
        "instance": {"sigma": SIGMA_TEXT, "phi": PHI_TEXT},
        "countermodel_nodes": baseline_graph.node_count(),
        "timings_seconds": timings,
        "speedup": speedups,
        "modes": modes,
    }
    _BENCH["pruning"] = _pruning_rows(sigma, phi)

    # The regression this PR fixes: extra jobs must never cost more
    # than they buy.  10% tolerance plus a 50ms absolute floor for
    # timer noise on sub-second scans.
    assert timings["jobs_2"] <= 1.1 * timings["jobs_1"] + 0.05, (
        f"jobs=2 ({timings['jobs_2']:.3f}s) lost to "
        f"jobs=1 ({timings['jobs_1']:.3f}s)"
    )
    # PR 2 acceptance, carried forward against the honest baseline:
    # the canonical engine beats the seed >= 4x at every job count.
    for jobs in JOB_COUNTS:
        assert speedups[str(jobs)] >= 4.0, (
            f"jobs={jobs} only {speedups[str(jobs)]:.2f}x over seed"
        )


def _legacy_typed_pool_seconds(schema, sigma, phi) -> float:
    """PR 2's typed driver: cold pool, stride shards, reference
    evaluator — the configuration the cost model replaced."""
    began = time.perf_counter()
    with WorkerSupervisor(jobs=TYPED_JOBS, keep_warm=False) as sup:
        tasks = [
            sup.submit(
                _typed_shard_task,
                schema,
                sigma,
                phi,
                2,  # max_oids
                2,  # max_set_size
                TYPED_LIMIT,
                shard,
                TYPED_JOBS,
                None,  # deadline
                engine=f"legacy-typed {shard}/{TYPED_JOBS}",
            )
            for shard in range(TYPED_JOBS)
        ]
        pending = set(tasks)
        while pending:
            for task in sup.wait_any(pending):
                pending.discard(task)
        assert all(t.settled and not t.failed for t in tasks)
        assert sum(t.result().examined for t in tasks) >= TYPED_LIMIT
    return time.perf_counter() - began


def test_large_typed_scan_vs_legacy_pool():
    schema = example_3_1_schema()
    sigma = parse_constraints(TYPED_SIGMA_TEXT)
    phi = parse_constraint(TYPED_PHI_TEXT)
    reset_calibration()
    retire_warm_pool()

    legacy = _legacy_typed_pool_seconds(schema, tuple(sigma), phi)

    problem = ImplicationProblem(
        sigma, phi, Context.M_PLUS, schema=schema
    )
    began = time.perf_counter()
    result = run_portfolio(
        problem, jobs=TYPED_JOBS, typed_search_limit=TYPED_LIMIT
    )
    auto = time.perf_counter() - began
    assert result.answer is Trilean.UNKNOWN  # full-scan worst case
    assert result.execution is not None

    speedup = legacy / auto
    print_table(
        "typed U_f(Delta) full scan, legacy cold pool vs cost-model "
        f"auto (sigma: {TYPED_SIGMA_TEXT!r}, phi: {TYPED_PHI_TEXT!r}, "
        f"limit {TYPED_LIMIT})",
        ["driver", "jobs", "mode", "seconds", "speedup"],
        [
            [
                "legacy stride pool",
                str(TYPED_JOBS),
                "pool (cold)",
                f"{legacy:.3f}",
                "1.00x",
            ],
            [
                "cost-model auto",
                str(TYPED_JOBS),
                result.execution.mode.value,
                f"{auto:.3f}",
                f"{speedup:.2f}x",
            ],
        ],
    )

    _BENCH["large_typed"] = {
        "instance": {
            "sigma": TYPED_SIGMA_TEXT,
            "phi": TYPED_PHI_TEXT,
            "schema": "example_3_1",
            "limit": TYPED_LIMIT,
        },
        "timings_seconds": {
            f"legacy_pool_jobs_{TYPED_JOBS}": legacy,
            f"auto_jobs_{TYPED_JOBS}": auto,
        },
        "speedup_vs_legacy": speedup,
        "mode": result.execution.to_dict(),
    }
    write_bench_json("portfolio", _BENCH)

    # Tentpole acceptance: the shipped jobs=8 path beats the PR 2
    # jobs=8 driver >= 4x on the large typed scan.
    assert speedup >= 4.0, (
        f"auto path only {speedup:.2f}x over the legacy pool "
        f"({auto:.3f}s vs {legacy:.3f}s)"
    )


def _pruning_rows(sigma, phi) -> dict[str, dict[str, int]]:
    labels = infer_alphabet(sigma, phi)
    pruning: dict[str, dict[str, int]] = {}
    rows = []
    for node_count in (1, 2, 3):
        space = CodeSpace(node_count, labels)
        canonical = sum(1 for _ in space.canonical_codes())
        report = scan_codes(space, sigma, phi)
        pruning[str(node_count)] = {
            "total_codes": space.total,
            "canonical_codes": canonical,
            "scanned_candidates": report.examined,
        }
        rows.append(
            [
                str(node_count),
                str(space.total),
                str(canonical),
                str(report.examined),
                f"{space.total / max(1, report.examined):.2f}x",
            ]
        )
    print_table(
        f"isomorphism + reachability pruning (labels={list(labels)})",
        ["nodes", "codes", "canonical", "scanned", "reduction"],
        rows,
    )
    return pruning
