"""Portfolio benchmarks: canonical pruning and worker scaling.

Measures the counter-model engine rebuilt in PR 2 against the seed
sequential search (every labelled graph, full ``Graph`` per candidate,
Definition 2.1 evaluator) on a refutable P_c instance whose smallest
counter-model has 3 nodes — the seed has to grind through all
``2^(2*n^2)`` candidates per level before the 262144-candidate level
that contains the refutation.

Emits ``BENCH_portfolio.json`` at the repo root:

* ``speedup`` — portfolio wall-clock vs the seed baseline at
  1/2/4/8 workers;
* ``pruning`` — per node count, total codes vs canonical codes vs
  candidates actually decoded by the scan (reachability prune
  included).
"""

from __future__ import annotations

import time

import pytest

from _report import print_table, write_bench_json
from repro.constraints import parse_constraint, parse_constraints
from repro.reasoning import parallel_find_countermodel
from repro.reasoning.models import (
    CodeSpace,
    brute_force_countermodel,
    infer_alphabet,
    scan_codes,
)

pytestmark = pytest.mark.bench

# The PR 2 acceptance instance: refutable, smallest counter-model has
# 3 nodes, alphabet {K, a} (the `a :: a => a` tautology forces the
# GENERAL fragment without widening the alphabet).
SIGMA_TEXT = "() => K\nK :: () => a.a.a\nK :: a.a.a => ()\na :: a => a"
PHI_TEXT = "K :: a => ()"

JOB_COUNTS = (1, 2, 4, 8)


def _instance():
    return parse_constraints(SIGMA_TEXT), parse_constraint(PHI_TEXT)


def test_portfolio_speedup_vs_seed_baseline():
    sigma, phi = _instance()

    began = time.perf_counter()
    baseline_graph = brute_force_countermodel(sigma, phi, max_nodes=3)
    baseline = time.perf_counter() - began
    assert baseline_graph is not None
    assert baseline_graph.node_count() == 3

    rows = [["seed sequential", "-", f"{baseline:.3f}", "1.00x"]]
    speedups: dict[str, float] = {}
    timings: dict[str, float] = {"seed_sequential": baseline}
    reference_edges = None
    for jobs in JOB_COUNTS:
        began = time.perf_counter()
        graph = parallel_find_countermodel(sigma, phi, max_nodes=3, jobs=jobs)
        elapsed = time.perf_counter() - began
        assert graph is not None
        edges = sorted(graph.edges())
        if reference_edges is None:
            reference_edges = edges
        assert edges == reference_edges  # determinism across jobs
        speedups[str(jobs)] = baseline / elapsed
        timings[f"jobs_{jobs}"] = elapsed
        rows.append(
            [
                f"portfolio jobs={jobs}",
                str(jobs),
                f"{elapsed:.3f}",
                f"{baseline / elapsed:.2f}x",
            ]
        )

    print_table(
        "portfolio counter-model search vs seed sequential "
        f"(sigma: {SIGMA_TEXT!r}, phi: {PHI_TEXT!r})",
        ["engine", "jobs", "seconds", "speedup"],
        rows,
    )

    pruning = _pruning_rows(sigma, phi)
    write_bench_json(
        "portfolio",
        {
            "instance": {"sigma": SIGMA_TEXT, "phi": PHI_TEXT},
            "countermodel_nodes": baseline_graph.node_count(),
            "timings_seconds": timings,
            "speedup": speedups,
            "pruning": pruning,
        },
    )

    # PR 2 acceptance: >= 4x over the seed baseline at 4 workers.
    assert speedups["4"] >= 4.0, (
        f"portfolio at jobs=4 only {speedups['4']:.2f}x over seed"
    )


def _pruning_rows(sigma, phi) -> dict[str, dict[str, int]]:
    labels = infer_alphabet(sigma, phi)
    pruning: dict[str, dict[str, int]] = {}
    rows = []
    for node_count in (1, 2, 3):
        space = CodeSpace(node_count, labels)
        canonical = sum(1 for _ in space.canonical_codes())
        report = scan_codes(space, sigma, phi)
        pruning[str(node_count)] = {
            "total_codes": space.total,
            "canonical_codes": canonical,
            "scanned_candidates": report.examined,
        }
        rows.append(
            [
                str(node_count),
                str(space.total),
                str(canonical),
                str(report.examined),
                f"{space.total / max(1, report.examined):.2f}x",
            ]
        )
    print_table(
        f"isomorphism + reachability pruning (labels={list(labels)})",
        ["nodes", "codes", "canonical", "scanned", "reduction"],
        rows,
    )
    return pruning
