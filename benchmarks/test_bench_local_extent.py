"""Local-extent implication (Theorem 5.1) — PTIME, and Sigma_r is inert.

Two measurements:

* decision time as the bounded core grows (PTIME shape);
* decision time and answers as the *decoy* set Sigma_r grows —
  Lemma 5.3 says constraints on other local databases do not interact,
  so answers must be bit-identical with and without them and the cost
  of ignoring them must stay linear (the partition step scans them
  once).
"""

from __future__ import annotations

import time

import pytest

from _report import print_table
from _workloads import local_extent_workload
from repro.constraints.ast import forward
from repro.reasoning import implies_local_extent

pytestmark = pytest.mark.bench

DECOYS = [0, 16, 64, 256, 1024]


@pytest.mark.benchmark(group="local-extent")
@pytest.mark.parametrize("decoys", DECOYS)
def test_decide_with_decoys(benchmark, decoys):
    core, decoy_set, queries = local_extent_workload(decoys, seed=decoys)
    sigma = core + decoy_set

    def decide_all():
        return tuple(
            implies_local_extent(sigma, q).answer for q in queries
        )

    benchmark(decide_all)


@pytest.mark.benchmark(group="local-extent")
def test_sigma_r_inertness(benchmark):
    """Answers identical across every decoy size (the Lemma 5.3 claim),
    with measured time growing only with the scan of Sigma_r."""
    core, _, queries = local_extent_workload(0)
    baseline = tuple(
        implies_local_extent(core, q).answer for q in queries
    )

    rows = []
    for decoys in DECOYS:
        _, decoy_set, _ = local_extent_workload(decoys, seed=decoys)
        sigma = core + decoy_set
        start = time.perf_counter()
        answers = tuple(
            implies_local_extent(sigma, q).answer for q in queries
        )
        elapsed = time.perf_counter() - start
        assert answers == baseline, "Sigma_r interacted — Lemma 5.3 violated"
        rows.append(
            [
                decoys,
                f"{elapsed * 1e3:.2f} ms",
                ", ".join(a.value for a in answers),
            ]
        )
    print_table(
        "Sigma_r inertness (Lemma 5.3): decoy constraints never change answers",
        ["|Sigma_r| decoys", "time (3 queries)", "answers (fixed queries)"],
        rows,
    )

    sigma = core + local_extent_workload(256, seed=256)[1]
    benchmark(
        lambda: implies_local_extent(sigma, queries[0]).answer
    )


@pytest.mark.benchmark(group="local-extent")
def test_core_growth(benchmark):
    """PTIME shape as the bounded core grows."""
    rows = []
    times = []
    for size in [4, 8, 16, 32, 64]:
        core = [
            forward("MIT", f"x{i}", f"x{i + 1}") for i in range(size)
        ]
        query = forward("MIT", "x0", f"x{size}")
        start = time.perf_counter()
        result = implies_local_extent(core, query)
        elapsed = time.perf_counter() - start
        assert result.implied
        times.append(elapsed)
        rows.append([size, f"{elapsed * 1e3:.2f} ms", result.answer.value])
    print_table(
        "Local-extent decision vs bounded-core size",
        ["|Sigma_K|", "time", "answer"],
        rows,
    )

    core = [forward("MIT", f"x{i}", f"x{i + 1}") for i in range(32)]
    query = forward("MIT", "x0", "x32")
    benchmark(lambda: implies_local_extent(core, query).implied)
