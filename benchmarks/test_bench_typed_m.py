"""Scaling of the typed-M decider (Theorem 4.2: cubic time).

Sweeps schema size and constraint count over random M schemas with
satisfiable (sort-consistent) premise sets; asserts decisions agree
with the I_r proof checker on the positive side, and that growth stays
polynomial (consistent with the paper's cubic bound — we check the
shape, not the constant).
"""

from __future__ import annotations

import math
import time

import pytest

from _report import print_table
from _workloads import typed_m_workload
from repro.reasoning import TypedImplicationDecider

pytestmark = pytest.mark.bench

SIZES = [(2, 4), (4, 8), (8, 16), (12, 32), (16, 64)]


@pytest.mark.benchmark(group="typed-m")
@pytest.mark.parametrize("classes,constraints", SIZES)
def test_typed_decide(benchmark, classes, constraints):
    schema, sigma, queries = typed_m_workload(classes, constraints, seed=classes)

    def decide_all():
        decider = TypedImplicationDecider(schema, sigma)
        return sum(decider.implies(q) for q in queries[:10])

    benchmark(decide_all)


@pytest.mark.benchmark(group="typed-m")
def test_typed_growth_and_proofs(benchmark):
    rows = []
    times = []
    for classes, constraints in SIZES:
        schema, sigma, queries = typed_m_workload(
            classes, constraints, seed=classes
        )
        start = time.perf_counter()
        decider = TypedImplicationDecider(schema, sigma)
        positives = 0
        proofs = 0
        for query in queries[:10]:
            if decider.implies(query):
                positives += 1
                proof = decider.prove(query)
                if proof is not None:
                    proofs += 1  # prove() re-checks internally
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        rows.append(
            [
                f"{classes} classes",
                f"{constraints} constraints",
                f"{elapsed * 1e3:.2f} ms",
                f"{positives}/10 implied",
                f"{proofs} proofs checked",
            ]
        )
    print_table(
        "Typed-M decider scaling (Theorem 4.2: cubic-time claim)",
        ["schema", "premises", "time (10 queries)", "implied", "I_r proofs"],
        rows,
    )
    for smaller, larger in zip(times, times[1:]):
        if smaller > 1e-3:
            slope = math.log(max(larger, 1e-9) / smaller, 2)
            assert slope < 6, f"superpolynomial-looking growth: {times}"

    schema, sigma, queries = typed_m_workload(8, 16, seed=8)

    def one_decision():
        return TypedImplicationDecider(schema, sigma).implies(queries[0])

    benchmark(one_decision)


@pytest.mark.benchmark(group="typed-m")
def test_untyped_vs_typed_contrast(benchmark):
    """Theorem 4.2 vs Theorem 4.1 in one picture: the same constraint
    sets, decided over M but only semi-decidable untyped; we count the
    queries where adding the type system *changes* the answer."""
    from repro.reasoning.word import WordImplicationDecider

    schema, sigma, queries = typed_m_workload(4, 10, seed=3)
    typed = TypedImplicationDecider(schema, sigma)
    untyped = WordImplicationDecider(sigma)

    changed = 0
    rows = []
    for query in queries[:10]:
        typed_answer = typed.implies(query)
        untyped_answer = untyped.implies(query)
        # Untyped implication transfers to U(Delta) (fewer structures),
        # never the other way around.
        if untyped_answer:
            assert typed_answer
        if typed_answer != untyped_answer:
            changed += 1
            rows.append([str(query), untyped_answer, typed_answer])
    print_table(
        f"Type system flips {changed}/10 answers (M adds commutativity)",
        ["query", "untyped implied", "implied over M"],
        rows,
    )

    benchmark(lambda: sum(typed.implies(q) for q in queries[:5]))
