"""Chase benchmarks: repair scaling and semi-decision coverage.

Two questions about the library's workhorse semi-decider:

* how fast does repair converge on realistic violation densities?
* across a seeded corpus of P_c implication instances (the
  undecidable untyped cell), what fraction does the budgeted chase
  settle, and how is that split between TRUE/FALSE/UNKNOWN?  This is
  the honest "coverage" number for the semi-decidable cells of
  Table 1.
"""

from __future__ import annotations

import random
import time

import pytest

from _report import print_table
from _workloads import REPAIR_SIGMA, broken_bibliography
from repro.constraints.ast import PathConstraint, backward, forward
from repro.paths import Path
from repro.reasoning.chase import chase, chase_implication
from repro.truth import Trilean

pytestmark = pytest.mark.bench


@pytest.mark.benchmark(group="chase")
@pytest.mark.parametrize("books", [50, 200, 800])
def test_chase_repair_scaling(benchmark, books):
    graph, _ = broken_bibliography(books, seed=books)

    def repair():
        return chase(graph, REPAIR_SIGMA, max_steps=1_000_000)

    outcome = benchmark(repair)
    assert outcome.fixpoint


def _random_pc_instance(seed: int) -> tuple[list[PathConstraint], PathConstraint]:
    rng = random.Random(seed)
    labels = ["a", "b", "w"]

    def rword(lo, hi):
        return Path([rng.choice(labels) for _ in range(rng.randint(lo, hi))])

    def rconstraint():
        kind = rng.random()
        if kind < 0.4:
            return forward("", rword(1, 2), rword(1, 2))  # word
        if kind < 0.7:
            return forward(rword(1, 1), rword(1, 2), rword(1, 2))
        return backward(rword(1, 1), rword(1, 1), rword(1, 1))

    sigma = [rconstraint() for _ in range(rng.randint(1, 3))]
    phi = rconstraint()
    return sigma, phi


@pytest.mark.benchmark(group="chase")
def test_chase_semidecision_coverage(benchmark):
    """Coverage of the budgeted chase over 300 seeded P_c instances."""
    tallies = {Trilean.TRUE: 0, Trilean.FALSE: 0, Trilean.UNKNOWN: 0}
    start = time.perf_counter()
    for seed in range(300):
        sigma, phi = _random_pc_instance(seed)
        result = chase_implication(sigma, phi, max_steps=300)
        tallies[result.answer] += 1
    elapsed = time.perf_counter() - start

    definite = tallies[Trilean.TRUE] + tallies[Trilean.FALSE]
    print_table(
        "Chase semi-decision coverage on the undecidable untyped P_c cell",
        ["outcome", "count", "share"],
        [
            ["TRUE (implied)", tallies[Trilean.TRUE],
             f"{tallies[Trilean.TRUE] / 3:.0f}%"],
            ["FALSE (counter-model)", tallies[Trilean.FALSE],
             f"{tallies[Trilean.FALSE] / 3:.0f}%"],
            ["UNKNOWN (budget)", tallies[Trilean.UNKNOWN],
             f"{tallies[Trilean.UNKNOWN] / 3:.0f}%"],
            ["definite total", definite, f"{definite / 3:.0f}%"],
            ["wall clock", f"{elapsed * 1e3:.0f} ms", ""],
        ],
    )
    # The chase should settle the strong majority of random instances.
    assert definite >= 200

    sigma, phi = _random_pc_instance(7)
    benchmark(lambda: chase_implication(sigma, phi, max_steps=300).answer)
