"""Implication-cache benchmarks: cold vs warm latency, hit rates.

Three workloads, matching the cache's acceptance criteria:

* **cold vs warm** — a chase-heavy guarded TRUE instance (hundreds of
  milliseconds of genuine portfolio work; the old PR 2 acceptance
  instance refutes in ~1ms since the PR 6 engine work, so it no
  longer makes an honest baseline) is solved cold, then an
  *alpha-renamed* copy is served from the warmed cache.  The warm hit
  must be >= 100x faster: the whole point of canonical keys is that a
  renamed repeat costs one canonicalization + one lookup, not a
  re-solve.
* **repeated+renamed sweep** — every seeded diffcheck instance is
  solved three times through one shared cache (once cold, twice under
  fresh random alphabets).  The measured hit rate must be >= 30%; in
  practice it is bounded by the generators' UNKNOWN rate (UNKNOWN is
  never cached) and lands near 2/3 of the definite fraction.
* **differential guard** — a ``fuzz --cache-check`` sweep must report
  zero verdict flips; the flip count is recorded in the JSON so CI
  diffs catch a regression even if the sweep's own exit code is lost.

Everything lands in ``BENCH_cache.json`` for ``scripts/bench.sh`` to
re-gate.
"""

from __future__ import annotations

import random
import time

import pytest

from _report import print_table, write_bench_json
from repro.constraints import parse_constraint, parse_constraints
from repro.errors import ReproError
from repro.diffcheck.generators import FRAGMENT_GENERATORS, generate_instance
from repro.diffcheck.runner import fuzz
from repro.reasoning import ImplicationCache, ImplicationProblem, solve
from repro.reasoning.canonical import rename_constraint
from repro.truth import Trilean

pytestmark = pytest.mark.bench

# A guarded P_w(K) implication the chase only settles after a long
# derivation (~0.5s at jobs=1) while bounded counter-model search
# exhausts — the expensive-definite workload the cache exists for.
SIGMA_TEXT = "() => K\nK :: a => a.b\nK :: a.b.b.b.b.b.b.b => c"
PHI_TEXT = "K :: a => a.b.b"

#: Alpha-renaming applied to the warm queries; the canonicalizer must
#: send renamed copies to the cold instance's key.
RENAMING = {"K": "guard", "a": "hop", "b": "step", "c": "goal"}

WARM_REPEATS = 20
SWEEP_SEEDS = (0, 1)
SWEEP_PER_FRAGMENT = 8
RENAMED_PASSES = 2

_BENCH: dict = {}


def _expensive_problem(mapping=None):
    sigma = parse_constraints(SIGMA_TEXT)
    phi = parse_constraint(PHI_TEXT)
    if mapping:
        sigma = [rename_constraint(psi, mapping) for psi in sigma]
        phi = rename_constraint(phi, mapping)
    return ImplicationProblem(sigma, phi)


def test_cold_vs_warm_hit_latency():
    cache = ImplicationCache()

    began = time.perf_counter()
    cold = solve(_expensive_problem(), jobs=1, cache=cache)
    cold_s = time.perf_counter() - began
    assert cold.answer is Trilean.TRUE
    assert cold.cache.status == "store"

    warm_times = []
    for _ in range(WARM_REPEATS):
        began = time.perf_counter()
        warm = solve(_expensive_problem(RENAMING), jobs=1, cache=cache)
        warm_times.append(time.perf_counter() - began)
        assert warm.cache.status == "hit"
        assert warm.answer is Trilean.TRUE
    warm_s = sorted(warm_times)[len(warm_times) // 2]  # median

    speedup = cold_s / warm_s
    _BENCH["cold_vs_warm"] = {
        "cold_ms": round(cold_s * 1e3, 3),
        "warm_hit_ms": round(warm_s * 1e3, 3),
        "speedup": round(speedup, 1),
        "warm_repeats": WARM_REPEATS,
    }
    print_table(
        "cache: cold solve vs alpha-renamed warm hit",
        ["phase", "latency (ms)"],
        [
            ["cold portfolio solve", f"{cold_s * 1e3:.1f}"],
            ["warm hit (median)", f"{warm_s * 1e3:.3f}"],
            ["speedup", f"{speedup:.0f}x"],
        ],
    )
    assert speedup >= 100, (
        f"warm alpha-renamed hit only {speedup:.1f}x faster than cold "
        f"(cold {cold_s * 1e3:.1f}ms, warm {warm_s * 1e3:.3f}ms)"
    )


def test_repeat_workload_hit_rate():
    """One cold pass + RENAMED_PASSES renamed passes over the seeded
    diffcheck stream, one shared cache."""
    cache = ImplicationCache()
    rng = random.Random(42)
    instances = [
        generate_instance(fragment, seed, index)
        for fragment in sorted(FRAGMENT_GENERATORS)
        for seed in SWEEP_SEEDS
        for index in range(SWEEP_PER_FRAGMENT)
    ]

    def _solve(problem):
        return solve(
            problem,
            jobs=1,
            chase_steps=400,
            countermodel_nodes=2,
            typed_search_limit=400,
            cache=cache,
        )

    lookups = hits = skipped = 0
    for sweep in range(1 + RENAMED_PASSES):
        for inst in instances:
            if sweep == 0:
                problem = ImplicationProblem(
                    inst.sigma, inst.phi, inst.context, schema=inst.schema
                )
            else:
                labels = set(inst.phi.alphabet())
                for psi in inst.sigma:
                    labels |= psi.alphabet()
                labels.discard("member")
                mapping = {
                    label: f"r{sweep}_{i}_{rng.randint(0, 99)}"
                    for i, label in enumerate(sorted(labels))
                }
                problem = ImplicationProblem(
                    [rename_constraint(psi, mapping) for psi in inst.sigma],
                    rename_constraint(inst.phi, mapping),
                    inst.context,
                    schema=inst.schema,
                )
            try:
                result = _solve(problem)
            except ReproError:
                # A few generated instances exhaust the fragment
                # budget and raise instead of answering (the oracle
                # matrix would abstain); they contribute no lookup.
                skipped += 1
                continue
            lookups += 1
            if result.cache.status == "hit":
                hits += 1

    rate = hits / lookups
    _BENCH["repeat_workload"] = {
        "instances": len(instances),
        "passes": 1 + RENAMED_PASSES,
        "lookups": lookups,
        "hits": hits,
        "skipped": skipped,
        "hit_rate": round(rate, 3),
    }
    print_table(
        "cache: seeded diffcheck repeat workload",
        ["metric", "value"],
        [
            ["instances", len(instances)],
            ["passes (1 cold + renamed)", 1 + RENAMED_PASSES],
            ["lookups", lookups],
            ["hits", hits],
            ["skipped (budget raise)", skipped],
            ["hit rate", f"{rate:.0%}"],
        ],
    )
    assert rate >= 0.30, f"hit rate {rate:.1%} below the 30% acceptance bar"


def test_cache_check_differential_zero_flips():
    report = fuzz(seed=0, per_fragment=10, cache_check=True)
    _BENCH["cache_check"] = {
        "instances": report.cache_checks,
        "lookups": report.cache_lookups,
        "hits": report.cache_hits,
        "flips": report.cache_flips,
        "disagreements": len(report.disagreements),
    }
    print_table(
        "cache: differential guard (fuzz --cache-check)",
        ["metric", "value"],
        [
            ["instances", report.cache_checks],
            ["cache hits", report.cache_hits],
            ["verdict flips", report.cache_flips],
        ],
    )
    assert report.cache_flips == 0
    assert report.ok


def test_zz_write_report():
    """Runs last (name-ordered): persist everything the suite measured."""
    assert _BENCH, "benchmarks did not run"
    write_bench_json("cache", _BENCH)
