"""Scaling of the untyped P_w decider (the [AV97] PTIME substrate).

The paper's claim for this cell is membership in PTIME.  We sweep the
constraint count and the word length on two instance families (random
and adversarial chains) and check that measured times grow
polynomially: the log-log slope between consecutive doublings must
stay bounded by a small constant, nothing like the exponential blowup
a naive closure enumeration would show.
"""

from __future__ import annotations

import time

import pytest

from _report import print_table
from _workloads import chained_word_constraints, random_word_constraints
from repro.constraints import word
from repro.paths import Path
from repro.reasoning import WordImplicationDecider

pytestmark = pytest.mark.bench

SIZES = [4, 8, 16, 32, 64]


@pytest.mark.benchmark(group="word-scaling")
@pytest.mark.parametrize("count", SIZES)
def test_word_random_family(benchmark, count):
    """Decision time over `count` random constraints."""
    sigma = random_word_constraints(count, max_len=4, seed=count)
    queries = random_word_constraints(10, max_len=5, seed=count + 999)

    def decide_all():
        decider = WordImplicationDecider(sigma)
        return sum(decider.implies(q) for q in queries)

    benchmark(decide_all)


@pytest.mark.benchmark(group="word-scaling")
@pytest.mark.parametrize("count", SIZES)
def test_word_chain_family(benchmark, count):
    """Adversarial chains: the whole closure must be traversed."""
    sigma, query = chained_word_constraints(count)

    def decide():
        return WordImplicationDecider(sigma).implies(query)

    assert benchmark(decide)


def _measure(family, sizes):
    rows = []
    times = []
    for size in sizes:
        sigma, query = family(size)
        start = time.perf_counter()
        answer = WordImplicationDecider(sigma).implies(query)
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        rows.append([size, f"{elapsed * 1e3:.2f} ms", answer])
    return rows, times


@pytest.mark.benchmark(group="word-scaling")
def test_word_growth_is_polynomial(benchmark):
    """Doubling the instance must not square-and-more the runtime
    repeatedly (a crude but robust PTIME consistency check)."""

    def chain_family(size):
        return chained_word_constraints(size)

    def random_family(size):
        sigma = random_word_constraints(size, max_len=4, seed=7)
        query = word(Path.parse("a.b.c.a"), Path.parse("c.b.a"))
        return sigma, query

    chain_rows, chain_times = _measure(chain_family, SIZES)
    random_rows, random_times = _measure(random_family, SIZES)

    print_table(
        "P_w decider scaling — chain family (constraints, time, answer)",
        ["|Sigma|", "time", "implied"],
        chain_rows,
    )
    print_table(
        "P_w decider scaling — random family",
        ["|Sigma|", "time", "implied"],
        random_rows,
    )

    import math

    for times in (chain_times, random_times):
        for smaller, larger in zip(times, times[1:]):
            if smaller > 1e-4:  # below that, timer noise dominates
                slope = math.log(max(larger, 1e-9) / smaller, 2)
                assert slope < 5, f"superpolynomial-looking growth: {times}"

    sigma, query = chained_word_constraints(32)
    benchmark(lambda: WordImplicationDecider(sigma).implies(query))
