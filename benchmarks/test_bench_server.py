"""Server daemon benchmarks: latency under load, dedup, fault safety.

Three workloads, matching the server PR's acceptance criteria:

* **closed-loop load** — N concurrent clients (N in 1, 4, 8) each
  issue a burst of imply requests over real sockets against one
  daemon.  We record p50/p99 latency and aggregate throughput per
  concurrency level; the p99 at the highest concurrency is gated (a
  generous bound — the point is catching a 10x dispatch regression,
  not micro-benchmarking the event loop).
* **renamed-duplicate dedup** — rounds of alpha-renamed copies of one
  expensive query arrive concurrently; single-flight must coalesce
  the copies onto the leader's solve, so the measured dedup hit rate
  is gated > 0 and the solver-side solve count stays at one per
  round, not one per request.
* **fault-injection no-flip** — the same instance mix is answered by
  a clean daemon (ground truth) and then by a daemon running with
  ``rate:0.3`` injection for 100 requests.  Faults may demote a
  definite answer to UNKNOWN, but a TRUE↔FALSE flip is an answer
  integrity violation and fails the run.

Everything lands in ``BENCH_server.json`` for ``scripts/bench.sh``
to re-gate.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from _report import print_table, write_bench_json
from repro.reasoning.faultinject import FaultPlan
from repro.reasoning.runtime import retire_warm_pool
from repro.server import ImplicationServer, ServerClient, ServerConfig

pytestmark = pytest.mark.bench

# Cheap decidable P_w chain: the load workload measures dispatch and
# transport, so the solve itself should be microseconds.
WORD_SIGMA = ["a => b", "b => c"]
WORD_PHI = "a => c"

# Divergent-chase FALSE instance (undecidable cell, counter-model in
# ~1ms) plus alpha-renamings for the dedup workload.
BASE_SIGMA = ["() => K", "K :: () => a.a.a", "K :: a.a.a => ()", "a :: a => a"]
BASE_PHI = "K :: a => ()"


def _renamed(label: str, atom: str) -> tuple[list[str], str]:
    sigma = [
        line.replace("K", label).replace("a", atom) for line in BASE_SIGMA
    ]
    return sigma, BASE_PHI.replace("K", label).replace("a", atom)


# Instance mix for the no-flip workload: one TRUE, one FALSE, one
# guarded FALSE — every definite clean answer is a flip candidate.
FLIP_INSTANCES = [
    (WORD_SIGMA, WORD_PHI),
    (BASE_SIGMA, BASE_PHI),
    (["K :: a => b"], "K :: b => a"),
]

CONCURRENCIES = (1, 4, 8)
REQUESTS_PER_CLIENT = 25
DEDUP_ROUNDS = 5
DEDUP_FOLLOWERS = 3
INJECT_REQUESTS = 100
P99_BOUND_MS = 500.0

_BENCH: dict = {}


class _Harness:
    """An :class:`ImplicationServer` on a background-thread loop."""

    def __init__(self, **config_kwargs) -> None:
        config_kwargs.setdefault("port", 0)
        self.server = ImplicationServer(ServerConfig(**config_kwargs))
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "_Harness":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(timeout=10), "server failed to start"
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            self.client(retries=0).shutdown()
        except Exception:
            pass
        assert self._thread is not None
        self._thread.join(timeout=30)

    def _run(self) -> None:
        async def main() -> None:
            await self.server.start()
            self._ready.set()
            await self.server.wait_drained()
            await self.server.stop()

        asyncio.run(main())

    def client(self, **kwargs) -> ServerClient:
        assert self.server.port is not None
        return ServerClient("127.0.0.1", self.server.port, **kwargs)


@pytest.fixture(autouse=True)
def _cold_pool():
    retire_warm_pool()
    yield
    retire_warm_pool()


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * len(ordered)) - 1))
    return ordered[index]


def test_closed_loop_latency_and_throughput():
    levels = []
    with _Harness(solver_threads=4, max_queue=256) as harness:
        for clients in CONCURRENCIES:
            latencies: list[float] = []
            lock = threading.Lock()
            errors: list[BaseException] = []

            def burst():
                try:
                    with harness.client() as client:
                        mine = []
                        for _ in range(REQUESTS_PER_CLIENT):
                            start = time.perf_counter()
                            response = client.imply(
                                WORD_SIGMA, WORD_PHI, no_dedup=True
                            )
                            mine.append(
                                (time.perf_counter() - start) * 1e3
                            )
                            assert response["answer"] == "true"
                    with lock:
                        latencies.extend(mine)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=burst) for _ in range(clients)
            ]
            wall_start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            wall = time.perf_counter() - wall_start
            assert not errors, errors
            total = clients * REQUESTS_PER_CLIENT
            assert len(latencies) == total
            levels.append(
                {
                    "clients": clients,
                    "requests": total,
                    "p50_ms": round(_percentile(latencies, 0.50), 3),
                    "p99_ms": round(_percentile(latencies, 0.99), 3),
                    "throughput_rps": round(total / wall, 1),
                }
            )

    _BENCH["load"] = {"levels": levels, "p99_bound_ms": P99_BOUND_MS}
    print_table(
        "server: closed-loop load (imply over sockets)",
        ["clients", "requests", "p50 ms", "p99 ms", "req/s"],
        [
            [
                lv["clients"],
                lv["requests"],
                lv["p50_ms"],
                lv["p99_ms"],
                lv["throughput_rps"],
            ]
            for lv in levels
        ],
    )
    worst_p99 = max(lv["p99_ms"] for lv in levels)
    assert worst_p99 < P99_BOUND_MS, (
        f"p99 {worst_p99:.1f}ms above the {P99_BOUND_MS:.0f}ms bound"
    )


def test_renamed_duplicate_dedup_hit_rate():
    alphabets = [
        ("K", "a"), ("L", "b"), ("M", "c"), ("Q", "d"),
    ][: DEDUP_FOLLOWERS + 1]
    with _Harness(solver_threads=1, allow_delay=True) as harness:
        for _ in range(DEDUP_ROUNDS):
            barrier_errors: list[BaseException] = []

            def ask(index, label, atom):
                try:
                    sigma, phi = _renamed(label, atom)
                    delay = 250 if index == 0 else 0
                    with harness.client() as client:
                        response = client.imply(
                            sigma, phi, delay_ms=delay
                        )
                    assert response["answer"] == "false"
                except BaseException as exc:  # noqa: BLE001
                    barrier_errors.append(exc)

            threads = [
                threading.Thread(target=ask, args=(i, lab, atom))
                for i, (lab, atom) in enumerate(alphabets)
            ]
            threads[0].start()
            time.sleep(0.1)  # leader must be in flight first
            for thread in threads[1:]:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not barrier_errors, barrier_errors
        with harness.client() as client:
            stats = client.stats()

    dedup = stats["dedup"]
    solved = stats["counters"]["solved"]
    total = stats["counters"]["imply"]
    _BENCH["dedup"] = {
        "rounds": DEDUP_ROUNDS,
        "requests": total,
        "solves": solved,
        "coalesced": dedup["coalesced"],
        "hit_rate": round(dedup["hit_rate"], 3),
    }
    print_table(
        "server: renamed-duplicate single-flight",
        ["metric", "value"],
        [
            ["imply requests", total],
            ["solver runs", solved],
            ["coalesced followers", dedup["coalesced"]],
            ["dedup hit rate", f"{dedup['hit_rate']:.0%}"],
        ],
    )
    assert dedup["hit_rate"] > 0
    assert dedup["coalesced"] == DEDUP_ROUNDS * DEDUP_FOLLOWERS
    # One solve per round, not one per request.
    assert solved == DEDUP_ROUNDS


def test_fault_injection_never_flips():
    # Ground truth from a clean daemon.
    clean: list[str] = []
    with _Harness() as harness:
        with harness.client() as client:
            for sigma, phi in FLIP_INSTANCES:
                clean.append(client.imply(sigma, phi)["answer"])
    assert set(clean) <= {"true", "false"}, (
        f"ground truth must be definite, got {clean}"
    )

    flips = 0
    demotions = 0
    faulted_runs = 0
    # The rate plan is deterministic per task ordinal, and a serial
    # portfolio solve on these small instances finishes at ordinal 0 —
    # so the seed must be one whose draw fires at ordinal 0 (seed 7
    # does; seeds 0-2 would deterministically never inject here).
    with _Harness(
        inject=FaultPlan.from_spec("rate:0.3:7"), solver_threads=2
    ) as harness:
        lock = threading.Lock()
        errors: list[BaseException] = []

        def worker(offset):
            nonlocal flips, demotions, faulted_runs
            try:
                with harness.client() as client:
                    for i in range(INJECT_REQUESTS // 4):
                        index = (offset + i) % len(FLIP_INSTANCES)
                        sigma, phi = FLIP_INSTANCES[index]
                        response = client.imply(sigma, phi, jobs=2)
                        answer = response["answer"]
                        with lock:
                            if response["faults"]["events"]:
                                faulted_runs += 1
                            if answer == "unknown":
                                demotions += 1
                            elif answer != clean[index]:
                                flips += 1
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors, errors

    _BENCH["inject"] = {
        "requests": INJECT_REQUESTS,
        "rate": 0.3,
        "faulted_runs": faulted_runs,
        "demotions_to_unknown": demotions,
        "flips": flips,
    }
    print_table(
        "server: fault injection (rate:0.3, 100 requests)",
        ["metric", "value"],
        [
            ["requests", INJECT_REQUESTS],
            ["runs with observed faults", faulted_runs],
            ["demotions to UNKNOWN", demotions],
            ["TRUE<->FALSE flips", flips],
        ],
    )
    assert flips == 0, f"{flips} verdict flips under injection"
    assert faulted_runs > 0, "injection at rate 0.3 never fired"


def test_zz_write_report():
    """Runs last (name-ordered): persist everything the suite measured."""
    assert _BENCH, "benchmarks did not run"
    write_bench_json("server", _BENCH)
