"""Model checking and query optimization benchmarks.

* constraint checking (G |= phi) over growing bibliography graphs —
  the integrity-validation workload the paper motivates;
* union-of-paths queries with and without the implication-driven
  optimizer — the paper's query-optimization motivation, measured.
"""

from __future__ import annotations

import time

import pytest

from _report import print_table
from repro.constraints import parse_constraints
from repro.checking import check_all
from repro.graph.builders import scaled_bibliography
from repro.query import WordQueryOptimizer, evaluate_word
from repro.reasoning.chase import chase

pytestmark = pytest.mark.bench

CONSTRAINTS = parse_constraints(
    """
    book :: author ~> wrote
    person :: wrote ~> author
    book.author => person
    person.wrote => book
    book.ref => book
    """
)

GRAPH_SIZES = [(50, 20), (200, 80), (800, 320), (3200, 1280)]


@pytest.mark.benchmark(group="checking")
@pytest.mark.parametrize("books,persons", GRAPH_SIZES)
def test_checking_scaling(benchmark, books, persons):
    graph = scaled_bibliography(books, persons, seed=books)
    graph = chase(graph, CONSTRAINTS, max_steps=100_000).graph

    report = benchmark(lambda: check_all(graph, CONSTRAINTS))
    assert report.ok


@pytest.mark.benchmark(group="checking")
def test_checking_growth_table(benchmark):
    rows = []
    for books, persons in GRAPH_SIZES:
        graph = scaled_bibliography(books, persons, seed=books)
        graph = chase(graph, CONSTRAINTS, max_steps=100_000).graph
        start = time.perf_counter()
        report = check_all(graph, CONSTRAINTS)
        elapsed = time.perf_counter() - start
        assert report.ok
        rows.append(
            [
                f"{books} books / {persons} persons",
                graph.edge_count(),
                report.total_witnesses,
                f"{elapsed * 1e3:.2f} ms",
            ]
        )
    print_table(
        "Integrity checking (all 5 Section-1 constraints) vs graph size",
        ["graph", "edges", "witness pairs", "time"],
        rows,
    )
    graph = scaled_bibliography(200, 80, seed=200)
    graph = chase(graph, CONSTRAINTS, max_steps=100_000).graph
    benchmark(lambda: check_all(graph, CONSTRAINTS).ok)


UNION_QUERY = [
    "book.author",
    "person",
    "book.ref.author",
    "book.author.wrote.author",
    "book.ref.ref.author",
]


def _run_union(graph, branches):
    answers = set()
    for branch in branches:
        answers |= evaluate_word(graph, branch).answers
    return frozenset(answers)


@pytest.mark.benchmark(group="query-opt")
@pytest.mark.parametrize("optimized", [False, True], ids=["plain", "optimized"])
def test_union_query(benchmark, optimized):
    graph = scaled_bibliography(2000, 800, seed=11)
    graph = chase(graph, CONSTRAINTS, max_steps=1_000_000).graph
    optimizer = WordQueryOptimizer(
        [c for c in CONSTRAINTS if c.is_word_constraint()]
    )
    plan = (
        [str(p) for p in optimizer.optimize_union(UNION_QUERY).optimized]
        if optimized
        else UNION_QUERY
    )

    answers = benchmark(lambda: _run_union(graph, plan))
    assert answers == _run_union(graph, UNION_QUERY)


@pytest.mark.benchmark(group="query-opt")
def test_query_optimization_report(benchmark):
    graph = scaled_bibliography(2000, 800, seed=11)
    graph = chase(graph, CONSTRAINTS, max_steps=1_000_000).graph
    optimizer = WordQueryOptimizer(
        [c for c in CONSTRAINTS if c.is_word_constraint()]
    )
    report = optimizer.optimize_union(UNION_QUERY)

    start = time.perf_counter()
    plain = _run_union(graph, UNION_QUERY)
    plain_time = time.perf_counter() - start
    start = time.perf_counter()
    fast = _run_union(graph, [str(p) for p in report.optimized])
    fast_time = time.perf_counter() - start
    assert plain == fast

    print_table(
        "Query optimization via implication (Section 2.2 motivation)",
        ["plan", "branches", "total labels", "time", "answers"],
        [
            ["plain union", len(UNION_QUERY),
             sum(len(b.split('.')) for b in UNION_QUERY),
             f"{plain_time * 1e3:.2f} ms", len(plain)],
            ["optimized", len(report.optimized),
             sum(len(p) for p in report.optimized),
             f"{fast_time * 1e3:.2f} ms", len(fast)],
        ],
    )
    print_table(
        "Optimizer actions",
        ["kind", "from", "to"],
        [["prune", str(a), f"subsumed by {b}"] for a, b in report.pruned]
        + [["rewrite", str(a), str(b)] for a, b in report.rewrites],
    )

    benchmark(lambda: optimizer.optimize_union(UNION_QUERY).optimized)
