"""Table 1 — the paper's headline decidability/complexity matrix.

For every cell we produce *executable evidence*:

* decidable cells — the decision procedure runs against an independent
  oracle (the chase) over a seeded instance family and must agree on
  every definite case; the representative decision is benchmarked;
* undecidable cells — the paper's reduction from the word problem for
  (finite) monoids runs over the monoid corpus: monoid-side verdicts
  must match constraint-side verdicts, with the Figure 2/4 gadgets
  supplying verified counter-models for the unequal pairs.

The printed matrix mirrors the paper's Table 1 (rows P_w(K) / local
extent / P_c; columns semistructured / M / M+ / M+f) plus the P_w
substrate row.
"""

from __future__ import annotations

import pytest

from _workloads import MONOID_CORPUS, random_word_constraints
from repro.constraints import parse_constraint, parse_constraints, word
from repro.monoids.finite import find_separating_homomorphism
from repro.monoids.word_problem import decide_word_problem
from repro.paths import Path
from repro.reasoning import (
    Context,
    ProblemClass,
    TypedImplicationDecider,
    WordImplicationDecider,
    table1_cell,
)
from repro.reasoning.chase import chase_implication
from repro.reasoning.local_extent import implies_local_extent
from repro.reductions import (
    encode_mplus,
    encode_pwk,
    figure2_structure,
    figure4_structure,
)
from repro.truth import Trilean
from repro.types.examples import feature_structure_schema
from repro.types.typecheck import check_type_constraint

pytestmark = pytest.mark.bench


def _evidence_pw_untyped() -> str:
    """P_w over semistructured data: decider vs chase on 150 instances."""
    agree = definite = 0
    for seed in range(150):
        sigma = random_word_constraints(3, max_len=3, seed=seed)
        query = random_word_constraints(1, max_len=4, seed=seed + 10_000)[0]
        answer = WordImplicationDecider(sigma).implies(query)
        oracle = chase_implication(sigma, query, max_steps=300)
        if oracle.answer.is_definite:
            definite += 1
            agree += oracle.answer.to_bool() == answer
    assert agree == definite
    return f"decider==chase on {agree}/{definite} definite instances"


def _evidence_pwk_untyped() -> str:
    """P_w(K) over semistructured data: the Theorem 4.3 reduction."""
    from repro.checking import check
    from repro.monoids.finite import FiniteMonoid, Homomorphism

    confirmed = model_checked = refuted = 0
    library = [FiniteMonoid.cyclic(2), FiniteMonoid.transformation(2)]
    for name, pres, equal, unequal in MONOID_CORPUS:
        enc = encode_pwk(pres)
        # Equal pair: monoid-side TRUE must transfer.  Confirm by the
        # chase where it converges; otherwise verify that every Figure-2
        # structure over the monoid library models the test pair (these
        # gadgets are exactly the models the Lemma 4.5 proof builds, so
        # a violation would refute the reduction).
        verdict = decide_word_problem(pres, *equal)
        assert verdict.answer is Trilean.TRUE
        for phi in enc.test_constraints(*equal):
            result = chase_implication(list(enc.sigma), phi, max_steps=2000)
            assert result.answer is not Trilean.FALSE, (name, str(phi))
            if result.answer is Trilean.TRUE:
                confirmed += 1
                continue
            for monoid in library:
                for hom in Homomorphism.enumerate(monoid, pres.alphabet):
                    if hom.respects(pres):
                        gadget = figure2_structure(pres, hom)
                        assert check(gadget, phi).holds, (name, str(phi))
            model_checked += 1
        # Unequal pair: the Figure 2 gadget is a verified counter-model.
        hom = find_separating_homomorphism(pres, *unequal)
        assert hom is not None
        graph = figure2_structure(pres, hom)
        assert enc.verify_countermodel(graph, *unequal)
        refuted += 1
    return (
        f"word-problem reduction: {confirmed} chase-confirmed + "
        f"{model_checked} gadget-model-checked implications, "
        f"{refuted} refuted via Figure-2 counter-models"
    )


def _evidence_local_extent_untyped() -> str:
    """Local extent, untyped: decided instances + Sigma_r inertness."""
    sigma = parse_constraints(
        """
        MIT :: book.author => person
        MIT :: person.wrote => book
        Warner.book :: author ~> wrote
        """
    )
    yes = implies_local_extent(
        sigma, parse_constraint("MIT :: book.author.wrote => book")
    )
    no = implies_local_extent(
        sigma, parse_constraint("MIT :: book.ref => book")
    )
    assert yes.answer is Trilean.TRUE and no.answer is Trilean.FALSE
    return "g1/g2 reduction to P_w; answers invariant under Sigma_r decoys"


def _evidence_pc_untyped() -> str:
    """P_c untyped: undecidable; P_w(K) embeds (Theorem 4.3), and the
    dispatcher serves sound semi-decision only."""
    sigma = parse_constraints("book :: author ~> wrote")
    result = chase_implication(
        sigma, parse_constraint("book :: author ~> wrote")
    )
    assert result.answer is Trilean.TRUE
    return "P_w(K) fragment already undecidable; semi-decision via chase"


def _evidence_m_column() -> str:
    """Everything over M is decided by the cubic procedure with
    machine-checked I_r proofs."""
    schema = feature_structure_schema()
    sigma = parse_constraints("sentence.head => subject")
    decider = TypedImplicationDecider(schema, sigma)
    positives = [
        parse_constraint("subject => sentence.head"),
        parse_constraint("subject.agreement => sentence.head.agreement"),
        parse_constraint("sentence :: head => head"),
    ]
    proofs = 0
    for phi in positives:
        assert decider.implies(phi)
        proof = decider.prove(phi)
        assert proof is not None  # re-checked inside prove()
        proofs += 1
    assert not decider.implies(parse_constraint("sentence => subject"))
    return f"cubic decider + {proofs} verified I_r proofs"


def _evidence_mplus_column() -> str:
    """M+ (and M+f): the Section 5.2 reduction over Delta_1."""
    checked = 0
    for name, pres, equal, unequal in MONOID_CORPUS:
        enc = encode_mplus(pres)
        # Unequal pair: Figure 4 typed counter-model, type-checked.
        hom = find_separating_homomorphism(pres, *unequal)
        graph = figure4_structure(pres, hom)
        assert check_type_constraint(enc.schema, graph).ok
        assert enc.verify_countermodel(graph, *unequal)
        # Equal pair: the untyped decision (FALSE) diverges from the
        # typed truth — Sigma_r interacts under Phi(Delta_1).
        phi = enc.test_constraint(*equal)
        if equal != unequal and Path.coerce(equal[0]) != Path.coerce(equal[1]):
            untyped = implies_local_extent(
                list(enc.sigma), phi, rho=enc.rho, guard=enc.guard
            )
            assert untyped.answer is Trilean.FALSE
        checked += 1
    return (
        f"Delta_1 reduction on {checked} presentations; typed gadgets "
        "verified, untyped/typed answers diverge on equal pairs"
    )


ROWS = [
    (ProblemClass.WORD, "P_w (substrate, [AV97])"),
    (ProblemClass.PW_K, "P_w(K)"),
    (ProblemClass.LOCAL_EXTENT, "local extent"),
    (ProblemClass.GENERAL, "P_c"),
]
COLUMNS = [
    Context.SEMISTRUCTURED,
    Context.M,
    Context.M_PLUS,
    Context.M_PLUS_FINITE,
]


def _cell_text(klass: ProblemClass, context: Context) -> str:
    decidable, complexity = table1_cell(klass, context)
    if decidable:
        return f"decidable ({complexity})"
    return "undecidable"


@pytest.mark.benchmark(group="table1")
def test_table1_matrix(benchmark):
    """Regenerate Table 1 with per-cell executable evidence; the
    benchmarked operation is one representative decidable-cell
    decision (the cubic M procedure on the running example)."""
    evidence = {
        "P_w / semistructured": _evidence_pw_untyped(),
        "P_w(K) / semistructured": _evidence_pwk_untyped(),
        "local extent / semistructured": _evidence_local_extent_untyped(),
        "P_c / semistructured": _evidence_pc_untyped(),
        "all fragments / M": _evidence_m_column(),
        "all fragments / M+ and M+f": _evidence_mplus_column(),
    }

    from _report import print_table

    print_table(
        "Table 1 (paper) — decidability of (finite) implication",
        ["problem \\ context"] + [c.value for c in COLUMNS],
        [
            [label] + [_cell_text(klass, c) for c in COLUMNS]
            for klass, label in ROWS
        ],
    )
    print_table(
        "Per-cell executable evidence (this run)",
        ["cell", "evidence"],
        [[k, v] for k, v in evidence.items()],
    )

    schema = feature_structure_schema()
    sigma = parse_constraints("sentence.head => subject")
    phi = parse_constraint("subject.agreement => sentence.head.agreement")

    def representative_decision():
        return TypedImplicationDecider(schema, sigma).implies(phi)

    assert benchmark(representative_decision)


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("name,index", [(c[0], i) for i, c in enumerate(MONOID_CORPUS)])
def test_table1_reduction_roundtrip(benchmark, name, index):
    """Benchmark one full reduction round-trip per corpus monoid:
    encode, separate, build the Figure 2 gadget, verify."""
    _, pres, _, unequal = MONOID_CORPUS[index]

    def roundtrip():
        enc = encode_pwk(pres)
        hom = find_separating_homomorphism(pres, *unequal)
        graph = figure2_structure(pres, hom)
        return enc.verify_countermodel(graph, *unequal)

    assert benchmark(roundtrip)
