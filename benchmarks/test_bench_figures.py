"""Figures 1-4 — every structure the paper draws, rebuilt and verified.

* Figure 1: the Penn-bib XML document graph with all Section 1
  constraints checked against it;
* Figure 2: the Lemma 4.5 counter-model built from a finite monoid
  witness, verified against the Theorem 4.3 encoding;
* Figure 3: the Lemma 5.3 H-structure, verified to model the lifted
  constraint set while violating the lifted query;
* Figure 4: the Lemma 5.4 typed structure, verified to satisfy
  Phi(Delta_1) and the Section 5.2 constraint set while violating the
  encoded test constraint.
"""

from __future__ import annotations

import pytest

from _report import print_table
from _workloads import MONOID_CORPUS
from repro.checking import check, check_all
from repro.checking.engine import satisfies_all
from repro.checking.satisfaction import violations
from repro.constraints import parse_constraint, parse_constraints, word
from repro.graph import Graph, figure1_graph
from repro.graph.builders import penn_bib_with_locals
from repro.monoids.finite import find_separating_homomorphism
from repro.reductions import (
    encode_mplus,
    encode_pwk,
    figure2_structure,
    figure3_structure,
    figure4_structure,
)
from repro.types.typecheck import check_type_constraint

pytestmark = pytest.mark.bench

SECTION1_CONSTRAINTS = """
book :: author ~> wrote
person :: wrote ~> author
book.author => person
person.wrote => book
book.ref => book
MIT.book :: author ~> wrote
MIT.person :: wrote ~> author
MIT :: book.author => person
MIT :: person.wrote => book
Warner.book :: author ~> wrote
Warner.person :: wrote ~> author
"""


@pytest.mark.benchmark(group="figures")
def test_figure1_bibliography(benchmark):
    """Figure 1: the document graph models every displayed constraint."""
    graph = penn_bib_with_locals()
    constraints = parse_constraints(SECTION1_CONSTRAINTS)

    report = benchmark(lambda: check_all(graph, constraints))
    assert report.ok, report.summary()

    base = figure1_graph()
    print_table(
        "Figure 1 — Penn-bib graph and Section 1 constraints",
        ["constraint", "holds", "witness pairs"],
        [
            [str(r.constraint), "yes" if r.holds else "NO", r.witnesses]
            for r in report.results
        ],
    )
    print_table(
        "Figure 1 — structure statistics",
        ["graph", "nodes", "edges", "books", "persons"],
        [
            ["Figure 1 proper", base.node_count(), base.edge_count(),
             len(base.eval_path("book")), len(base.eval_path("person"))],
            ["with MIT/Warner locals", graph.node_count(), graph.edge_count(),
             len(graph.eval_path("book")), len(graph.eval_path("person"))],
        ],
    )


@pytest.mark.benchmark(group="figures")
def test_figure2_countermodels(benchmark):
    """Figure 2: construct + verify a counter-model per corpus monoid."""
    rows = []
    for name, pres, _equal, unequal in MONOID_CORPUS:
        enc = encode_pwk(pres)
        hom = find_separating_homomorphism(pres, *unequal)
        assert hom is not None
        graph = figure2_structure(pres, hom)
        assert enc.verify_countermodel(graph, *unequal)
        phi1, phi2 = enc.test_constraints(*unequal)
        violated = [
            str(phi)
            for phi in (phi1, phi2)
            if violations(graph, phi, limit=1)
        ]
        rows.append(
            [
                name,
                f"|M|={hom.monoid.order}",
                graph.node_count(),
                graph.edge_count(),
                "; ".join(violated),
            ]
        )
    print_table(
        "Figure 2 — Lemma 4.5 counter-models (unequal pairs)",
        ["presentation", "witness monoid", "nodes", "edges", "violated test constraint(s)"],
        rows,
    )

    name, pres, _, unequal = MONOID_CORPUS[0]
    enc = encode_pwk(pres)
    hom = find_separating_homomorphism(pres, *unequal)

    def build_and_verify():
        graph = figure2_structure(pres, hom)
        return enc.verify_countermodel(graph, *unequal)

    assert benchmark(build_and_verify)


@pytest.mark.benchmark(group="figures")
def test_figure3_h_structure(benchmark):
    """Figure 3: lift a word-problem counter-model through H."""
    # A finite model of Sigma^2_K = {a.b => c} violating phi^2 = a => c.
    base = Graph(root=0)
    base.add_edge(0, "a", 1)
    base.add_edge(1, "b", 2)
    base.add_edge(0, "c", 2)
    sigma2 = [word("a.b", "c")]
    phi2 = word("a", "c")
    assert satisfies_all(base, sigma2)
    assert violations(base, phi2, limit=1)

    sigma1 = parse_constraints(
        """
        K :: a.b => c
        Other :: x => y
        Other.site :: p ~> q
        """
    )
    phi1 = parse_constraint("K :: a => c")

    def build_and_verify():
        h = figure3_structure(base)
        ok = satisfies_all(h, sigma1)
        bad = violations(h, phi1, limit=1)
        return h, ok, bad

    h, ok, bad = benchmark(build_and_verify)
    assert ok and bad

    print_table(
        "Figure 3 — the H-structure of Lemma 5.3",
        ["property", "value"],
        [
            ["base model G (of Sigma^2_K, violating phi^2)", f"{base.node_count()} nodes"],
            ["H = G + {K(rH,rH), K(rH,rG)}", f"{h.node_count()} nodes, {h.edge_count()} edges"],
            ["H |= Sigma^1_K u Sigma^1_r", ok],
            ["H |= phi^1", not bool(bad)],
            ["K-reachable from rH", sorted(map(str, h.eval_path("K")))],
        ],
    )


@pytest.mark.benchmark(group="figures")
def test_figure4_typed_structures(benchmark):
    """Figure 4: typed counter-models over Delta_1, type-checked."""
    rows = []
    for name, pres, _equal, unequal in MONOID_CORPUS:
        enc = encode_mplus(pres)
        hom = find_separating_homomorphism(pres, *unequal)
        assert hom is not None
        graph = figure4_structure(pres, hom)
        typing = check_type_constraint(enc.schema, graph)
        assert typing.ok, typing.summary()
        assert enc.verify_countermodel(graph, *unequal)
        phi = enc.test_constraint(*unequal)
        rows.append(
            [
                name,
                graph.node_count(),
                graph.edge_count(),
                "yes",
                str(phi),
            ]
        )
    print_table(
        "Figure 4 — Lemma 5.4 typed counter-models over Delta_1",
        ["presentation", "nodes", "edges", "in U_f(Delta_1)", "violated constraint"],
        rows,
    )

    name, pres, _, unequal = MONOID_CORPUS[0]
    enc = encode_mplus(pres)
    hom = find_separating_homomorphism(pres, *unequal)

    def build_and_verify():
        graph = figure4_structure(pres, hom)
        return (
            check_type_constraint(enc.schema, graph).ok
            and enc.verify_countermodel(graph, *unequal)
        )

    assert benchmark(build_and_verify)
