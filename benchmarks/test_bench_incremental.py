"""Incremental vs batch integrity maintenance.

The validation workload the paper motivates, measured: maintain the
Section 1 constraints while streaming authorship edges into a growing
bibliography.  The incremental checker must stay bit-equal to batch
revalidation while doing orders of magnitude less work.
"""

from __future__ import annotations

import time

import pytest

from _report import print_table
from _workloads import bibliography_edge_stream as edge_stream
from repro.checking import IncrementalChecker, check_all
from repro.constraints import parse_constraints
from repro.graph import Graph

pytestmark = pytest.mark.bench

SIGMA = parse_constraints(
    """
    book :: author ~> wrote
    person :: wrote ~> author
    book.author => person
    person.wrote => book
    """
)


SIZES = [100, 300, 900]


@pytest.mark.benchmark(group="incremental")
@pytest.mark.parametrize("books", SIZES)
def test_incremental_stream(benchmark, books):
    edges = list(edge_stream(books, books // 3, seed=books))

    def run():
        graph = Graph(root="r")
        checker = IncrementalChecker(graph, SIGMA)
        for src, label, dst in edges:
            checker.add_edge(src, label, dst)
        return checker.ok

    assert benchmark(run)


@pytest.mark.benchmark(group="incremental")
def test_incremental_vs_batch_table(benchmark):
    rows = []
    for books in SIZES:
        edges = list(edge_stream(books, books // 3, seed=books))

        graph = Graph(root="r")
        checker = IncrementalChecker(graph, SIGMA)
        start = time.perf_counter()
        for src, label, dst in edges:
            checker.add_edge(src, label, dst)
        incremental_time = time.perf_counter() - start
        assert checker.ok
        assert checker.revalidate()

        graph2 = Graph(root="r")
        start = time.perf_counter()
        for src, label, dst in edges:
            graph2.add_edge(src, label, dst)
            check_all(graph2, SIGMA)
        batch_time = time.perf_counter() - start

        rows.append(
            [
                f"{books} books ({len(edges)} edges)",
                f"{incremental_time * 1e3:.1f} ms",
                f"{batch_time * 1e3:.1f} ms",
                f"x{batch_time / max(incremental_time, 1e-9):.1f}",
                checker.recheck_count,
            ]
        )
    print_table(
        "Incremental vs per-insert batch validation (identical results)",
        ["stream", "incremental", "batch", "speedup", "witness rechecks"],
        rows,
    )

    edges = list(edge_stream(300, 100, seed=300))

    def run():
        graph = Graph(root="r")
        checker = IncrementalChecker(graph, SIGMA)
        for src, label, dst in edges:
            checker.add_edge(src, label, dst)
        return checker.ok

    assert benchmark(run)
