"""Query-layer benchmarks: constraint-aware union optimization.

Two workloads, matching ISSUE 9's acceptance criteria:

* **optimized vs unoptimized union** — a chased bibliography graph is
  queried with a redundant union (duplicates + Sigma-subsumed
  branches).  The optimized plan must return identical answers while
  evaluating fewer branches, and must not be slower overall (planning
  cost included) than the naive evaluation.
* **repeated planning through the cache** — the same union is planned
  repeatedly through one shared :class:`ImplicationCache`; after the
  cold pass every subsumption probe is a hit, so the reported hit rate
  must be positive and the warm planning latency must beat cold.

Everything lands in ``BENCH_query.json`` for ``scripts/bench.sh`` to
re-gate.
"""

from __future__ import annotations

import time

import pytest

from _report import print_table, write_bench_json
from repro.constraints import parse_constraints
from repro.graph.builders import scaled_bibliography
from repro.query import WordQueryOptimizer
from repro.reasoning import ImplicationCache
from repro.reasoning.chase import chase

pytestmark = pytest.mark.bench

SIGMA_TEXT = """
book.author => person
person.wrote => book
book.ref => book
"""

#: Deliberately redundant: duplicates, Sigma-subsumed branches and a
#: rewritable long branch — the shape a generated query front-end emits.
BRANCHES = [
    "book.author",
    "book.author",
    "person",
    "book.ref.author",
    "book.ref.ref.author",
    "book.author.wrote.author",
    "person.wrote.author",
]

EVAL_REPEATS = 5
PLAN_REPEATS = 20

_BENCH: dict = {}


def _workload():
    sigma = parse_constraints(SIGMA_TEXT)
    graph = scaled_bibliography(120, 40, seed=9)
    graph = chase(graph, list(sigma), max_steps=100_000).graph
    return sigma, graph


def test_optimized_union_beats_unoptimized():
    sigma, graph = _workload()

    def run(optimize: bool):
        optimizer = WordQueryOptimizer(sigma)
        began = time.perf_counter()
        for _ in range(EVAL_REPEATS):
            answers, results, report = optimizer.evaluate_union(
                graph, BRANCHES, optimize=optimize
            )
        elapsed = (time.perf_counter() - began) / EVAL_REPEATS
        return answers, results, report, elapsed

    plain_answers, plain_results, _, plain_s = run(optimize=False)
    opt_answers, opt_results, report, opt_s = run(optimize=True)

    assert opt_answers == plain_answers, "optimization changed answers"
    assert report is not None and report.branches_saved >= 3
    assert len(report.pruned) == report.branches_saved

    edges_plain = sum(r.edges_traversed for r in plain_results)
    edges_opt = sum(r.edges_traversed for r in opt_results)
    speedup = plain_s / opt_s
    _BENCH["union_eval"] = {
        "graph_nodes": graph.node_count(),
        "graph_edges": graph.edge_count(),
        "branches_in": len(BRANCHES),
        "branches_out": len(report.optimized),
        "branches_saved": report.branches_saved,
        "labels_saved": report.labels_saved,
        "edges_traversed_plain": edges_plain,
        "edges_traversed_optimized": edges_opt,
        "plain_ms": round(plain_s * 1e3, 3),
        "optimized_ms": round(opt_s * 1e3, 3),
        "speedup": round(speedup, 2),
    }
    print_table(
        "query: redundant union, plain vs optimized (planning included)",
        ["metric", "plain", "optimized"],
        [
            ["branches evaluated", len(BRANCHES), len(report.optimized)],
            ["edges traversed", edges_plain, edges_opt],
            ["latency (ms)", f"{plain_s * 1e3:.2f}", f"{opt_s * 1e3:.2f}"],
            ["speedup", "", f"{speedup:.2f}x"],
        ],
    )
    assert edges_opt < edges_plain
    assert speedup >= 1.0, (
        f"optimized union slower than plain: {speedup:.2f}x "
        f"(plain {plain_s * 1e3:.2f}ms, optimized {opt_s * 1e3:.2f}ms)"
    )


def test_repeated_planning_hits_cache(tmp_path):
    sigma, _ = _workload()
    cache = ImplicationCache(cache_dir=str(tmp_path))

    began = time.perf_counter()
    cold = WordQueryOptimizer(sigma, cache=cache)
    cold.optimize_union(BRANCHES)
    cold_s = time.perf_counter() - began

    warm_times = []
    hits = calls = 0
    for _ in range(PLAN_REPEATS):
        optimizer = WordQueryOptimizer(sigma, cache=cache)
        began = time.perf_counter()
        optimizer.optimize_union(BRANCHES)
        warm_times.append(time.perf_counter() - began)
        hits += optimizer.stats["cache_hits"]
        calls += optimizer.stats["solve_calls"]
    warm_s = sorted(warm_times)[len(warm_times) // 2]
    rate = hits / calls if calls else 0.0

    _BENCH["plan_cache"] = {
        "cold_ms": round(cold_s * 1e3, 3),
        "warm_ms": round(warm_s * 1e3, 3),
        "plan_repeats": PLAN_REPEATS,
        "solve_calls": calls,
        "cache_hits": hits,
        "hit_rate": round(rate, 3),
    }
    print_table(
        "query: repeated planning through a shared cache",
        ["metric", "value"],
        [
            ["cold plan (ms)", f"{cold_s * 1e3:.2f}"],
            ["warm plan median (ms)", f"{warm_s * 1e3:.2f}"],
            ["dispatcher calls (warm)", calls],
            ["cache hits (warm)", hits],
            ["hit rate", f"{rate:.0%}"],
        ],
    )
    assert rate > 0, "repeated planning never hit the implication cache"
    assert warm_s <= cold_s


def test_zz_write_report():
    """Runs last (name-ordered): persist everything the suite measured."""
    assert _BENCH, "benchmarks did not run"
    write_bench_json("query", _BENCH)
