"""Report rendering for the benchmark harness.

Every benchmark prints paper-style rows via :func:`print_table`, so a
``pytest benchmarks/ --benchmark-only -s`` run regenerates the paper's
tables and figures as text alongside the timing statistics.
"""

from __future__ import annotations

import sys


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Render an aligned text table to stdout (shown with ``-s`` and
    captured in benchmark logs)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered))
        if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    out = sys.stdout
    out.write(f"\n=== {title} ===\n")
    out.write(line(headers) + "\n")
    out.write(line(["-" * w for w in widths]) + "\n")
    for row in rendered:
        out.write(line(row) + "\n")
    out.flush()
