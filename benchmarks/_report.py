"""Report rendering for the benchmark harness.

Every benchmark prints paper-style rows via :func:`print_table`, so a
``pytest benchmarks/ --benchmark-only -s`` run regenerates the paper's
tables and figures as text alongside the timing statistics.
Benchmarks with machine-readable outputs additionally call
:func:`write_bench_json`, which drops a ``BENCH_<name>.json`` file at
the repository root for tooling to diff across commits.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Render an aligned text table to stdout (shown with ``-s`` and
    captured in benchmark logs)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered))
        if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    out = sys.stdout
    out.write(f"\n=== {title} ===\n")
    out.write(line(headers) + "\n")
    out.write(line(["-" * w for w in widths]) + "\n")
    for row in rendered:
        out.write(line(row) + "\n")
    out.flush()


def write_bench_json(name: str, payload: dict) -> Path:
    """Write ``payload`` to ``BENCH_<name>.json`` at the repo root.

    Returns the path written.  Keys should be stable across runs so the
    files diff cleanly; volatile data (timings) belongs under clearly
    named keys that downstream tooling knows to tolerate.
    """
    root = Path(__file__).resolve().parent.parent
    target = root / f"BENCH_{name}.json"
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {target}")
    return target
