"""Path-cache effectiveness on the chase and incremental workloads.

Counter-based, not wall-clock: ``CacheStats.misses`` counts raw
adjacency-dict traversals (every miss is exactly one), so running the
identical workload with the cache enabled (default LRU) and disabled
(``maxsize=0`` pass-through) compares *path evaluations performed*.
The cache cannot change any result — the workloads assert their
outcomes match — it can only collapse repeated evaluations between
mutations, and these numbers show by how much.
"""

from __future__ import annotations

import time

import pytest

from _report import print_table
from _workloads import REPAIR_SIGMA, bibliography_edge_stream, broken_bibliography
from repro.checking import IncrementalChecker
from repro.constraints import parse_constraints
from repro.graph import Graph
from repro.reasoning.chase import chase

pytestmark = pytest.mark.bench

INCREMENTAL_SIGMA = parse_constraints(
    """
    book :: author ~> wrote
    person :: wrote ~> author
    book.author => person
    person.wrote => book
    """
)


def _chase_workload(books: int, maxsize: int):
    """Run the chase-repair workload; returns (outcome, stats)."""
    graph, _ = broken_bibliography(books, seed=books)
    graph.configure_path_cache(maxsize=maxsize)
    outcome = chase(graph, REPAIR_SIGMA, max_steps=1_000_000)
    # chase() copies the input; the copy inherits the cache setting and
    # is returned as outcome.graph, so its stats cover the whole run.
    return outcome, outcome.graph.cache_stats()


def _incremental_workload(books: int, maxsize: int):
    """Stream the insertion trace through IncrementalChecker."""
    edges = list(bibliography_edge_stream(books, books // 3, seed=books))
    graph = Graph(root="r")
    graph.configure_path_cache(maxsize=maxsize)
    checker = IncrementalChecker(graph, INCREMENTAL_SIGMA)
    for src, label, dst in edges:
        checker.add_edge(src, label, dst)
    return checker, graph.cache_stats()


@pytest.mark.benchmark(group="path-cache")
@pytest.mark.parametrize("books", [50, 150])
def test_chase_workload_fewer_evaluations(benchmark, books):
    cached_outcome, cached = _chase_workload(books, Graph.DEFAULT_CACHE_MAXSIZE)
    uncached_outcome, uncached = _chase_workload(books, 0)

    # Identical behaviour: caching must not change the chase.
    assert cached_outcome.fixpoint and uncached_outcome.fixpoint
    assert cached_outcome.steps == uncached_outcome.steps
    assert cached_outcome.graph.same_structure(uncached_outcome.graph)

    # The counters that matter: same requests, strictly fewer raw
    # traversals, nonzero hits.
    assert uncached.hits == 0
    assert cached.hits > 0
    assert cached.misses < uncached.misses
    print_table(
        f"Chase repair, {books} books: path evaluations",
        ["variant", "requests", "raw evaluations", "hits", "hit rate"],
        [
            ["uncached", uncached.requests, uncached.misses, 0, "0%"],
            ["cached", cached.requests, cached.misses, cached.hits,
             f"{cached.hit_rate:.0%}"],
        ],
    )

    benchmark(lambda: _chase_workload(books, Graph.DEFAULT_CACHE_MAXSIZE)[0].fixpoint)


@pytest.mark.benchmark(group="path-cache")
@pytest.mark.parametrize("books", [100, 300])
def test_incremental_workload_fewer_evaluations(benchmark, books):
    cached_checker, cached = _incremental_workload(
        books, Graph.DEFAULT_CACHE_MAXSIZE
    )
    uncached_checker, uncached = _incremental_workload(books, 0)

    # Identical behaviour, and both agree with from-scratch truth.
    assert cached_checker.current_violations() == (
        uncached_checker.current_violations()
    )
    assert cached_checker.revalidate()

    assert uncached.hits == 0
    assert cached.hits > 0
    assert cached.misses < uncached.misses
    print_table(
        f"Incremental integrity, {books} books: path evaluations",
        ["variant", "requests", "raw evaluations", "hits", "hit rate"],
        [
            ["uncached", uncached.requests, uncached.misses, 0, "0%"],
            ["cached", cached.requests, cached.misses, cached.hits,
             f"{cached.hit_rate:.0%}"],
        ],
    )

    benchmark(
        lambda: _incremental_workload(books, Graph.DEFAULT_CACHE_MAXSIZE)[0].ok
    )


@pytest.mark.benchmark(group="path-cache")
def test_cache_overhead_and_speedup_report(benchmark):
    """Wall-clock sanity table (informational; assertions stay on the
    counters above)."""
    rows = []
    for books in (50, 150):
        start = time.perf_counter()
        _chase_workload(books, Graph.DEFAULT_CACHE_MAXSIZE)
        cached_s = time.perf_counter() - start
        start = time.perf_counter()
        _chase_workload(books, 0)
        uncached_s = time.perf_counter() - start
        rows.append(
            [
                f"chase {books} books",
                f"{cached_s * 1e3:.1f} ms",
                f"{uncached_s * 1e3:.1f} ms",
                f"x{uncached_s / max(cached_s, 1e-9):.2f}",
            ]
        )
    print_table(
        "Path cache wall clock (informational)",
        ["workload", "cached", "uncached", "speedup"],
        rows,
    )
    benchmark(lambda: _chase_workload(50, Graph.DEFAULT_CACHE_MAXSIZE)[0].steps)
