"""Deterministic workload generators shared by the benchmarks.

A theory paper's "workload" is the space of problem instances; these
generators produce graded families with fixed seeds so every run
regenerates identical instances.
"""

from __future__ import annotations

import random

from repro.constraints.ast import PathConstraint, backward, forward, word
from repro.monoids.presentation import MonoidPresentation
from repro.paths import Path

#: The Section 1 inverse/extent constraints driving the chase-repair
#: and incremental-integrity workloads.
REPAIR_SIGMA = [
    backward("book", "author", "wrote"),
    backward("person", "wrote", "author"),
    forward("", "book.author", "person"),
]


def broken_bibliography(books: int, seed: int):
    """A scaled bibliography with inverse ``wrote`` edges randomly
    dropped — the chase-repair workload.  Returns (graph, removed)."""
    from repro.graph.builders import scaled_bibliography

    rng = random.Random(seed)
    graph = scaled_bibliography(books, max(books // 3, 2), seed=seed)
    removed = 0
    for person in list(graph.eval_path("person")):
        for book in list(graph.eval_path("wrote", start=person)):
            if rng.random() < 0.5:
                graph.remove_edge(person, "wrote", book)
                removed += 1
    return graph, removed


def bibliography_edge_stream(books: int, persons: int, seed: int = 0):
    """A streaming insertion trace for the incremental-integrity
    workload: person/book skeleton first, then authorship edges with
    their inverses arriving a few inserts late."""
    rng = random.Random(seed)
    person_ids = [f"p{i}" for i in range(persons)]
    for p in person_ids:
        yield ("r", "person", p)
    pending = []
    for i in range(books):
        b = f"b{i}"
        yield ("r", "book", b)
        for p in rng.sample(person_ids, k=rng.randint(1, 3)):
            yield (b, "author", p)
            pending.append((p, "wrote", b))
            if len(pending) > 5:
                yield pending.pop(0)
    yield from pending

#: The monoid corpus used by the undecidable-cell demonstrations:
#: (name, presentation, provably-equal pair, provably-unequal pair).
MONOID_CORPUS = [
    (
        "free-commutative",
        MonoidPresentation("uv", [("u.v", "v.u")]),
        ("u.v.u", "u.u.v"),
        ("u.v", "v.v"),
    ),
    (
        "cyclic-3",
        MonoidPresentation("u", [("u.u.u", "")]),
        ("u.u.u.u", "u"),
        ("u.u", "u"),
    ),
    (
        "idempotent",
        MonoidPresentation("uv", [("u.u", "u"), ("v.v", "v")]),
        ("u.u.v.v", "u.v"),
        ("u.v", "v.u"),
    ),
    (
        "free",
        MonoidPresentation("uv", []),
        ("u.v", "u.v"),
        ("u.v", "v.u"),
    ),
    (
        "absorbing",
        MonoidPresentation("uv", [("u.v", "u"), ("v.u", "u")]),
        ("u.v.v.v", "u"),
        ("u", "v"),
    ),
]


def random_word(rng: random.Random, labels: list[str], max_len: int) -> Path:
    return Path([rng.choice(labels) for _ in range(rng.randint(1, max_len))])


def random_word_constraints(
    count: int,
    labels: list[str] | None = None,
    max_len: int = 4,
    seed: int = 0,
) -> list[PathConstraint]:
    """``count`` random word constraints over ``labels`` (no empty
    conclusions: the PTIME fragment)."""
    rng = random.Random(seed)
    labels = labels or ["a", "b", "c"]
    return [
        word(random_word(rng, labels, max_len), random_word(rng, labels, max_len))
        for _ in range(count)
    ]


def chained_word_constraints(count: int) -> tuple[list[PathConstraint], PathConstraint]:
    """A worst-case-ish family: a chain x0 -> x1 -> ... whose closure
    must be followed end to end; the query spans the whole chain with
    a congruence suffix."""
    sigma = [word(f"x{i}", f"x{i + 1}.pad") for i in range(count)]
    query = word(Path.parse("x0.tail"), Path.parse(f"x{count}" + ".pad" * count + ".tail"))
    return sigma, query


def typed_m_workload(
    class_count: int, constraint_count: int, seed: int = 0
):
    """A random M schema plus random valid equivalences over it.

    Returns (schema, sigma, queries): constraints pair random valid
    paths of equal sort, so the premise set is always satisfiable.
    """
    from repro.types.examples import random_m_schema
    from repro.types.siggen import SchemaSignature

    rng = random.Random(seed)
    schema = random_m_schema(class_count, labels_per_class=2, seed=seed)
    signature = SchemaSignature(schema)
    paths = [p for p in signature.sample_paths(5) if not p.is_empty()]
    by_sort: dict[object, list[Path]] = {}
    for path in paths:
        by_sort.setdefault(signature.type_of_path(path), []).append(path)
    pools = [group for group in by_sort.values() if len(group) >= 2]
    sigma = []
    for _ in range(constraint_count):
        group = rng.choice(pools)
        left, right = rng.sample(group, 2)
        sigma.append(word(left, right))
    queries = []
    for _ in range(max(10, constraint_count)):
        group = rng.choice(pools)
        left, right = rng.sample(group, 2)
        queries.append(word(left, right))
    return schema, sigma, queries


def local_extent_workload(decoy_count: int, seed: int = 0):
    """A fixed MIT-bounded core plus ``decoy_count`` constraints on
    other local databases (the Sigma_r that Lemma 5.3 proves inert)."""
    from repro.constraints.ast import backward, forward

    rng = random.Random(seed)
    core = [
        forward("MIT", "book.author", "person"),
        forward("MIT", "person.wrote", "book"),
        forward("MIT", "book.ref", "book.ref"),
    ]
    decoys = []
    labels = ["book", "person", "author", "wrote", "ref"]
    for i in range(decoy_count):
        site = Path.single(f"site{i % 7}")
        lhs = random_word(rng, labels, 3)
        rhs = random_word(rng, labels, 3)
        if rng.random() < 0.5:
            decoys.append(forward(site, lhs, rhs))
        else:
            decoys.append(backward(site, lhs, rhs))
    queries = [
        forward("MIT", "book.author.wrote", "book"),
        forward("MIT", "book.ref", "book"),
        forward("MIT", "book.ref.author", "person"),
    ]
    return core, decoys, queries
