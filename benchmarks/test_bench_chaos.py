"""Wire-chaos benchmarks: availability, answer integrity, reclaim.

The service-layer counterpart of the fault-injection benchmark: a
3-seed :func:`repro.server.chaos.run_chaos_sweep` at a 30% connection
fault rate, gated on the chaos-hardening acceptance criteria:

* **availability** — with the failover client retrying through the
  fault-perpetrating proxy, at least 99% of requests must still
  receive an honest answer;
* **zero flips** — wire faults may cost retries or demote an answer
  to UNKNOWN, but a TRUE<->FALSE flip is an answer-integrity
  violation and fails the run outright;
* **bounded reclaim** — a wedged (non-cooperating) solve must be
  abandoned, answered UNKNOWN with a ``hung_solve`` fault, and its
  solver thread's capacity restored, all within twice the watchdog
  grace;
* **clean drain** — every daemon the sweep starts must end in
  ``stopped``; chaos never leaves a wedged server behind.

p99 latency under chaos is recorded per seed (not gated — it is
dominated by the deterministic retry backoff, so the interesting
signal is the trend across commits, which ``BENCH_chaos.json``
preserves for ``scripts/bench.sh`` to re-gate).
"""

from __future__ import annotations

import pytest

from _report import print_table, write_bench_json
from repro.reasoning.runtime import retire_warm_pool
from repro.server.chaos import run_chaos_sweep

pytestmark = pytest.mark.bench

SEEDS = (0, 1, 2)
REQUESTS = 40
FAULT_RATE = 0.3
GRACE_MS = 500

_BENCH: dict = {}


@pytest.fixture(autouse=True)
def _cold_pool():
    retire_warm_pool()
    yield
    retire_warm_pool()


def test_chaos_sweep_three_seeds():
    runs = []
    for seed in SEEDS:
        report = run_chaos_sweep(
            seed=seed,
            requests=REQUESTS,
            fault_rate=FAULT_RATE,
            watchdog_grace_ms=GRACE_MS,
        )
        runs.append(report)

    rows = []
    for report in runs:
        wire = report["wire"]
        rows.append(
            [
                report["seed"],
                f"{wire['availability']:.2%}",
                wire["flips"],
                wire["demoted"],
                wire["unavailable"],
                f"{wire['p99_ms']:.1f}",
                f"{report['reclaim']['reclaim_ms']:.0f}",
                report["failover"]["after_status"],
            ]
        )
    print_table(
        f"server: wire chaos ({REQUESTS} requests/seed, "
        f"fault rate {FAULT_RATE})",
        [
            "seed",
            "availability",
            "flips",
            "demoted",
            "unavailable",
            "p99 ms",
            "reclaim ms",
            "failover",
        ],
        rows,
    )

    _BENCH["chaos"] = {
        "seeds": list(SEEDS),
        "requests_per_seed": REQUESTS,
        "fault_rate": FAULT_RATE,
        "watchdog_grace_ms": GRACE_MS,
        "reclaim_bound_ms": 2 * GRACE_MS,
        "availability_floor": 0.99,
        "runs": [
            {
                "seed": report["seed"],
                "availability": report["wire"]["availability"],
                "flips": report["wire"]["flips"],
                "demoted": report["wire"]["demoted"],
                "unavailable": report["wire"]["unavailable"],
                "p99_ms": report["wire"]["p99_ms"],
                "reclaim_ms": report["reclaim"]["reclaim_ms"],
                "threads_retired": report["reclaim"]["threads_retired"],
                "failover_recovered": report["failover"]["after_status"]
                == "ok",
                "drains": [
                    report["wire"]["drain_state"],
                    report["reclaim"]["drain_state"],
                    report["failover"]["drain_state"],
                ],
                "failures": report["failures"],
                "pass": report["pass"],
            }
            for report in runs
        ],
    }

    for report in runs:
        seed = report["seed"]
        assert report["wire"]["flips"] == 0, (
            f"seed {seed}: {report['wire']['flips']} verdict flip(s) "
            "under wire chaos"
        )
        assert report["wire"]["availability"] >= 0.99, (
            f"seed {seed}: availability "
            f"{report['wire']['availability']:.3f} below 0.99"
        )
        assert report["reclaim"]["reclaim_ms"] < 2 * GRACE_MS, (
            f"seed {seed}: reclaim took "
            f"{report['reclaim']['reclaim_ms']:.0f} ms, bound "
            f"{2 * GRACE_MS} ms"
        )
        assert report["pass"], f"seed {seed}: {report['failures']}"


def test_zz_write_report():
    """Runs last (name-ordered): persist everything the suite measured."""
    assert _BENCH, "benchmarks did not run"
    write_bench_json("chaos", _BENCH)
