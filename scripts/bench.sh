#!/usr/bin/env sh
# Performance suite: every benchmark in benchmarks/ (marker: bench).
# Benchmarks print paper-style tables (-s) and drop machine-readable
# BENCH_*.json files at the repo root (see benchmarks/_report.py).
# Tier-1 correctness (scripts/tier1.sh) never runs these.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

# Long differential sweep: several seeds, many instances per fragment,
# machine-readable report next to the BENCH_*.json files.
for seed in 0 1 2; do
    python -m repro fuzz --seed "$seed" --per-fragment 200 \
        --deadline 300 --json-out "FUZZ_seed$seed.json"
done

# High-rate fault-injection sweep: half of all portfolio tasks get a
# fault (kill/raise/delay/corrupt).  Acceptance: zero TRUE<->FALSE
# flips against the uninjected oracle; demotions are tallied in the
# report.
for seed in 0 1 2; do
    python -m repro fuzz --seed "$seed" --per-fragment 50 \
        --deadline 300 --inject-rate 0.5 --inject-seed "$seed" \
        --json-out "FUZZ_inject_seed$seed.json"
done

# Query-layer differential sweep: the optimizer and the containment
# checker against brute-force evaluation on chased Sigma-models, three
# seeds with EGD-bearing constraint sets included.
for seed in 0 1 2; do
    python -m repro query fuzz --seed "$seed" --rounds 25 \
        --deadline 120 --json-out "FUZZ_query_seed$seed.json"
done

# The full fault-tolerance stress set (tier-1 runs these too, but
# without the marker filter they drown in the rest of the suite).
python -m pytest tests -m stress -q

python -m pytest benchmarks/ -m bench -s "$@"

# Parallel-regression gate: with cost-model dispatch, asking for more
# jobs must never cost more than it buys.  The benchmark asserts this
# too; gating again on the emitted JSON keeps the check honest if the
# benchmark's internal assertion is ever refactored away.
python - <<'EOF'
import json

small = json.load(open("BENCH_portfolio.json"))["small_untyped"]
t = small["timings_seconds"]
j1, j2 = t["jobs_1"], t["jobs_2"]
assert j2 <= 1.1 * j1 + 0.05, (
    f"regression gate: jobs=2 ({j2:.3f}s) lost to jobs=1 ({j1:.3f}s)"
)
print(f"jobs_1={j1:.3f}s jobs_2={j2:.3f}s: parallel regression gate ok")
EOF

# Cache-regression gate: warm alpha-renamed hits must stay >= 100x
# faster than the cold solve, the seeded repeat workload must keep a
# >= 30% hit rate, and the fuzz --cache-check sweep must report zero
# cold-vs-cached verdict flips.
python - <<'EOF'
import json

bench = json.load(open("BENCH_cache.json"))
cw, rw, cc = bench["cold_vs_warm"], bench["repeat_workload"], bench["cache_check"]
assert cw["speedup"] >= 100, (
    f"cache gate: warm hit only {cw['speedup']}x faster than cold "
    f"(cold {cw['cold_ms']}ms, warm {cw['warm_hit_ms']}ms)"
)
assert rw["hit_rate"] >= 0.30, (
    f"cache gate: repeat-workload hit rate {rw['hit_rate']:.1%} < 30%"
)
assert cc["flips"] == 0, (
    f"cache gate: {cc['flips']} cold-vs-cached verdict flips"
)
print(
    f"speedup={cw['speedup']}x hit_rate={rw['hit_rate']:.0%} "
    f"flips={cc['flips']}: cache regression gate ok"
)
EOF

# Query-regression gate: the optimized union must not lose to the
# naive evaluation (planning cost included), must actually prune, and
# repeated planning must hit the shared implication cache.
python - <<'EOF'
import json

bench = json.load(open("BENCH_query.json"))
ev, pc = bench["union_eval"], bench["plan_cache"]
assert ev["speedup"] >= 1.0, (
    f"query gate: optimized union lost to plain ({ev['speedup']}x; "
    f"plain {ev['plain_ms']}ms, optimized {ev['optimized_ms']}ms)"
)
assert ev["branches_saved"] >= 1, "query gate: optimizer never pruned"
assert ev["edges_traversed_optimized"] < ev["edges_traversed_plain"], (
    "query gate: optimized plan traversed no fewer edges"
)
assert pc["hit_rate"] > 0, "query gate: planning cache hit rate is zero"
print(
    f"speedup={ev['speedup']}x branches_saved={ev['branches_saved']} "
    f"plan_hit_rate={pc['hit_rate']:.0%}: query regression gate ok"
)
EOF

# Server-regression gate: closed-loop p99 must stay under the bound
# recorded by the benchmark, renamed-duplicate dedup must actually
# coalesce, and injected faults must never flip a verdict over the
# wire.
python - <<'EOF'
import json

bench = json.load(open("BENCH_server.json"))
load, dedup, inject = bench["load"], bench["dedup"], bench["inject"]
worst_p99 = max(level["p99_ms"] for level in load["levels"])
assert worst_p99 < load["p99_bound_ms"], (
    f"server gate: p99 {worst_p99}ms above {load['p99_bound_ms']}ms"
)
assert dedup["hit_rate"] > 0, "server gate: dedup hit rate is zero"
assert dedup["solves"] < dedup["requests"], (
    f"server gate: {dedup['solves']} solves for {dedup['requests']} "
    "requests -- single-flight never coalesced"
)
assert inject["faulted_runs"] > 0, "server gate: injection never fired"
assert inject["flips"] == 0, (
    f"server gate: {inject['flips']} verdict flips under injection"
)
print(
    f"p99={worst_p99}ms dedup_hit_rate={dedup['hit_rate']:.0%} "
    f"faulted_runs={inject['faulted_runs']} flips={inject['flips']}: "
    "server regression gate ok"
)
EOF

# Chaos-regression gate: across the 3-seed wire-chaos sweep, the
# failover client must keep availability >= 99% at a 30% connection
# fault rate, no wire fault may flip a definite verdict, the wedged
# solve must be reclaimed within twice the watchdog grace, and every
# phase's daemon must have drained cleanly.
python - <<'EOF'
import json

bench = json.load(open("BENCH_chaos.json"))["chaos"]
bound = bench["reclaim_bound_ms"]
floor = bench["availability_floor"]
for run in bench["runs"]:
    seed = run["seed"]
    assert run["flips"] == 0, (
        f"chaos gate: seed {seed} saw {run['flips']} verdict flip(s)"
    )
    assert run["availability"] >= floor, (
        f"chaos gate: seed {seed} availability "
        f"{run['availability']:.3f} below {floor}"
    )
    assert run["reclaim_ms"] < bound, (
        f"chaos gate: seed {seed} reclaim {run['reclaim_ms']:.0f}ms "
        f"at or above bound {bound}ms"
    )
    assert run["failover_recovered"], (
        f"chaos gate: seed {seed} failover never recovered"
    )
    assert all(state == "stopped" for state in run["drains"]), (
        f"chaos gate: seed {seed} left a daemon in {run['drains']}"
    )
    assert run["pass"], f"chaos gate: seed {seed}: {run['failures']}"
worst_avail = min(run["availability"] for run in bench["runs"])
worst_reclaim = max(run["reclaim_ms"] for run in bench["runs"])
print(
    f"availability>={worst_avail:.0%} flips=0 "
    f"reclaim<={worst_reclaim:.0f}ms (bound {bound}ms): "
    "chaos regression gate ok"
)
EOF
