#!/usr/bin/env sh
# Performance suite: every benchmark in benchmarks/ (marker: bench).
# Benchmarks print paper-style tables (-s) and drop machine-readable
# BENCH_*.json files at the repo root (see benchmarks/_report.py).
# Tier-1 correctness (scripts/tier1.sh) never runs these.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

# Long differential sweep: several seeds, many instances per fragment,
# machine-readable report next to the BENCH_*.json files.
for seed in 0 1 2; do
    python -m repro fuzz --seed "$seed" --per-fragment 200 \
        --deadline 300 --json-out "FUZZ_seed$seed.json"
done

# High-rate fault-injection sweep: half of all portfolio tasks get a
# fault (kill/raise/delay/corrupt).  Acceptance: zero TRUE<->FALSE
# flips against the uninjected oracle; demotions are tallied in the
# report.
for seed in 0 1 2; do
    python -m repro fuzz --seed "$seed" --per-fragment 50 \
        --deadline 300 --inject-rate 0.5 --inject-seed "$seed" \
        --json-out "FUZZ_inject_seed$seed.json"
done

# The full fault-tolerance stress set (tier-1 runs these too, but
# without the marker filter they drown in the rest of the suite).
python -m pytest tests -m stress -q

exec python -m pytest benchmarks/ -m bench -s "$@"
