#!/usr/bin/env sh
# Performance suite: every benchmark in benchmarks/ (marker: bench).
# Benchmarks print paper-style tables (-s) and drop machine-readable
# BENCH_*.json files at the repo root (see benchmarks/_report.py).
# Tier-1 correctness (scripts/tier1.sh) never runs these.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python -m pytest benchmarks/ -m bench -s "$@"
