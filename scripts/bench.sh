#!/usr/bin/env sh
# Performance suite: every benchmark in benchmarks/ (marker: bench).
# Benchmarks print paper-style tables (-s) and drop machine-readable
# BENCH_*.json files at the repo root (see benchmarks/_report.py).
# Tier-1 correctness (scripts/tier1.sh) never runs these.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

# Long differential sweep: several seeds, many instances per fragment,
# machine-readable report next to the BENCH_*.json files.
for seed in 0 1 2; do
    python -m repro fuzz --seed "$seed" --per-fragment 200 \
        --deadline 300 --json-out "FUZZ_seed$seed.json"
done

# High-rate fault-injection sweep: half of all portfolio tasks get a
# fault (kill/raise/delay/corrupt).  Acceptance: zero TRUE<->FALSE
# flips against the uninjected oracle; demotions are tallied in the
# report.
for seed in 0 1 2; do
    python -m repro fuzz --seed "$seed" --per-fragment 50 \
        --deadline 300 --inject-rate 0.5 --inject-seed "$seed" \
        --json-out "FUZZ_inject_seed$seed.json"
done

# The full fault-tolerance stress set (tier-1 runs these too, but
# without the marker filter they drown in the rest of the suite).
python -m pytest tests -m stress -q

python -m pytest benchmarks/ -m bench -s "$@"

# Parallel-regression gate: with cost-model dispatch, asking for more
# jobs must never cost more than it buys.  The benchmark asserts this
# too; gating again on the emitted JSON keeps the check honest if the
# benchmark's internal assertion is ever refactored away.
python - <<'EOF'
import json

small = json.load(open("BENCH_portfolio.json"))["small_untyped"]
t = small["timings_seconds"]
j1, j2 = t["jobs_1"], t["jobs_2"]
assert j2 <= 1.1 * j1 + 0.05, (
    f"regression gate: jobs=2 ({j2:.3f}s) lost to jobs=1 ({j1:.3f}s)"
)
print(f"jobs_1={j1:.3f}s jobs_2={j2:.3f}s: parallel regression gate ok")
EOF

# Cache-regression gate: warm alpha-renamed hits must stay >= 100x
# faster than the cold solve, the seeded repeat workload must keep a
# >= 30% hit rate, and the fuzz --cache-check sweep must report zero
# cold-vs-cached verdict flips.
python - <<'EOF'
import json

bench = json.load(open("BENCH_cache.json"))
cw, rw, cc = bench["cold_vs_warm"], bench["repeat_workload"], bench["cache_check"]
assert cw["speedup"] >= 100, (
    f"cache gate: warm hit only {cw['speedup']}x faster than cold "
    f"(cold {cw['cold_ms']}ms, warm {cw['warm_hit_ms']}ms)"
)
assert rw["hit_rate"] >= 0.30, (
    f"cache gate: repeat-workload hit rate {rw['hit_rate']:.1%} < 30%"
)
assert cc["flips"] == 0, (
    f"cache gate: {cc['flips']} cold-vs-cached verdict flips"
)
print(
    f"speedup={cw['speedup']}x hit_rate={rw['hit_rate']:.0%} "
    f"flips={cc['flips']}: cache regression gate ok"
)
EOF
