#!/usr/bin/env sh
# Tier-1 verification: the fast correctness suite (ROADMAP.md).
# Benchmarks live in benchmarks/ (marker: bench) and are NOT run here;
# use scripts/bench.sh for the performance suite.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m pytest -x -q "$@"
