#!/usr/bin/env sh
# Tier-1 verification: the fast correctness suite (ROADMAP.md).
# Benchmarks live in benchmarks/ (marker: bench) and are NOT run here;
# use scripts/bench.sh for the performance suite.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

# Differential smoke: a fixed-seed cross-validation sweep of every
# Table 1 engine must report zero disagreements.  No --deadline, so
# the sweep is deterministic run-to-run; scripts/bench.sh runs the
# longer multi-seed sweep.
python -m repro fuzz --seed 7 --per-fragment 25

# Fault-injection smoke: the same engines under a fixed-seed fault
# plan.  Injected worker kills, delays, raises and pickle corruption
# may demote answers to UNKNOWN but must never flip TRUE<->FALSE
# (exit 1 if they do).  scripts/bench.sh runs the higher-rate sweep.
python -m repro fuzz --seed 7 --per-fragment 5 \
    --inject-rate 0.25 --inject-seed 7

# --jobs auto smoke: cost-model dispatch end-to-end on an undecidable
# cell (the divergent-chase instance whose 3-node counter-model the
# portfolio must find), clean and under a hostile fault plan.  Exit 0
# means a definite answer; injected faults may only demote to UNKNOWN
# (exit 2), never error out.
sigma_file="$(mktemp)"
cache_dir="$(mktemp -d)"
trap 'rm -f "$sigma_file"; rm -rf "$cache_dir"' EXIT
printf '() => K\nK :: () => a.a.a\nK :: a.a.a => ()\na :: a => a\n' \
    > "$sigma_file"
python -m repro imply "$sigma_file" 'K :: a => ()' --jobs auto
python -m repro imply "$sigma_file" 'K :: a => ()' --jobs auto \
    --inject kill:1,raise:2 || [ $? -eq 2 ]

# Cache smoke: the same query twice against a fresh --cache-dir.  The
# first run stores its definite answer; the second MUST report a hit
# (the grep fails the script if it re-solved instead), and the stats
# subcommand must see the stored entry.
python -m repro imply "$sigma_file" 'K :: a => ()' \
    --cache-dir "$cache_dir"
python -m repro imply "$sigma_file" 'K :: a => ()' \
    --cache-dir "$cache_dir" | grep 'cache: *hit'
python -m repro cache stats --cache-dir "$cache_dir"

exec python -m pytest -x -q "$@"
