#!/usr/bin/env sh
# Tier-1 verification: the fast correctness suite (ROADMAP.md).
# Benchmarks live in benchmarks/ (marker: bench) and are NOT run here;
# use scripts/bench.sh for the performance suite.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

# Differential smoke: a fixed-seed cross-validation sweep of every
# Table 1 engine must report zero disagreements.  No --deadline, so
# the sweep is deterministic run-to-run; scripts/bench.sh runs the
# longer multi-seed sweep.
python -m repro fuzz --seed 7 --per-fragment 25

# Fault-injection smoke: the same engines under a fixed-seed fault
# plan.  Injected worker kills, delays, raises and pickle corruption
# may demote answers to UNKNOWN but must never flip TRUE<->FALSE
# (exit 1 if they do).  scripts/bench.sh runs the higher-rate sweep.
python -m repro fuzz --seed 7 --per-fragment 5 \
    --inject-rate 0.25 --inject-seed 7

# Query-layer differential smoke: fixed-seed optimizer/containment
# sweep against brute-force evaluation on chased models.  Exit 0 means
# zero disagreements; scripts/bench.sh runs the multi-seed sweep.
python -m repro query fuzz --seed 0 --rounds 5

# --jobs auto smoke: cost-model dispatch end-to-end on an undecidable
# cell (the divergent-chase instance whose 3-node counter-model the
# portfolio must find), clean and under a hostile fault plan.  Exit 0
# means a definite answer; injected faults may only demote to UNKNOWN
# (exit 2), never error out.
sigma_file="$(mktemp)"
cache_dir="$(mktemp -d)"
trap 'rm -f "$sigma_file"; rm -rf "$cache_dir"' EXIT
printf '() => K\nK :: () => a.a.a\nK :: a.a.a => ()\na :: a => a\n' \
    > "$sigma_file"
python -m repro imply "$sigma_file" 'K :: a => ()' --jobs auto
python -m repro imply "$sigma_file" 'K :: a => ()' --jobs auto \
    --inject kill:1,raise:2 || [ $? -eq 2 ]

# Cache smoke: the same query twice against a fresh --cache-dir.  The
# first run stores its definite answer; the second MUST report a hit
# (the grep fails the script if it re-solved instead), and the stats
# subcommand must see the stored entry.
python -m repro imply "$sigma_file" 'K :: a => ()' \
    --cache-dir "$cache_dir"
python -m repro imply "$sigma_file" 'K :: a => ()' \
    --cache-dir "$cache_dir" | grep 'cache: *hit'
python -m repro cache stats --cache-dir "$cache_dir"

# Server smoke: daemon up on a free port, one query answered over the
# wire, the repeat served from the daemon's shared cache, then SIGTERM
# while a deliberately slow request is in flight.  A clean drain means
# the in-flight solve still gets its answer (client exits 0) and the
# daemon exits 0 — never killing admitted work.
port_file="$(mktemp)"
server_cache="$(mktemp -d)"
trap 'rm -f "$sigma_file" "$port_file"; \
    rm -rf "$cache_dir" "$server_cache"; \
    kill "${server_pid:-}" 2>/dev/null || true' EXIT
python -m repro serve --port 0 --port-file "$port_file" \
    --cache-dir "$server_cache" --allow-delay &
server_pid=$!
tries=0
while [ ! -s "$port_file" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || { echo "server never bound a port"; exit 1; }
    sleep 0.1
done
server_addr="127.0.0.1:$(cat "$port_file")"
python -m repro imply "$sigma_file" 'K :: a => ()' --server "$server_addr"
python -m repro imply "$sigma_file" 'K :: a => ()' --server "$server_addr" \
    | grep 'cache: *hit'
ready_file="$port_file.ready"
python - "$server_addr" "$ready_file" <<'EOF' &
import pathlib
import sys

from repro.server import ServerClient, parse_host_port

host, port = parse_host_port(sys.argv[1])
with ServerClient(host, port, timeout=60) as client:
    assert client.health()["status"] == "ok"
    # The marker tells the shell the connection is live and the slow
    # request is about to hit the wire; SIGTERM then lands mid-flight.
    pathlib.Path(sys.argv[2]).touch()
    response = client.imply(
        ["() => K", "K :: () => a.a.a", "K :: a.a.a => ()", "a :: a => a"],
        "K :: a => ()",
        delay_ms=800,
    )
assert response["status"] == "ok", response
assert response["answer"] == "false", response
EOF
client_pid=$!
tries=0
while [ ! -e "$ready_file" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || { echo "drain client never connected"; exit 1; }
    sleep 0.1
done
sleep 0.2
kill -TERM "$server_pid"
wait "$client_pid"
wait "$server_pid"
rm -f "$ready_file"

# Chaos smoke: a fixed-seed wire-chaos sweep (fault-perpetrating TCP
# proxy between a real client and a real daemon) plus the watchdog
# reclaim and endpoint-failover phases.  Exit 0 means zero verdict
# flips, availability held, the wedged solve was reclaimed in bounded
# time, and every daemon drained cleanly; scripts/bench.sh runs the
# 3-seed sweep with the JSON gate.
python -m repro chaos --seed 7 --requests 20 --fault-rate 0.3 \
    --watchdog-grace-ms 400

exec python -m pytest -x -q "$@"
