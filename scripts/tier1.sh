#!/usr/bin/env sh
# Tier-1 verification: the fast correctness suite (ROADMAP.md).
# Benchmarks live in benchmarks/ (marker: bench) and are NOT run here;
# use scripts/bench.sh for the performance suite.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

# Differential smoke: a fixed-seed cross-validation sweep of every
# Table 1 engine must report zero disagreements.  No --deadline, so
# the sweep is deterministic run-to-run; scripts/bench.sh runs the
# longer multi-seed sweep.
python -m repro fuzz --seed 7 --per-fragment 25

exec python -m pytest -x -q "$@"
