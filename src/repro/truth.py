"""Three-valued truth for semi-decision procedures.

Several of the paper's implication problems are undecidable
(Theorems 4.1, 4.3, 5.2, 6.1, 6.2), so the corresponding procedures in
this library are *semi*-deciders: they may answer definitely yes,
definitely no, or give up within a budget.  :class:`Trilean` is the
shared answer type.
"""

from __future__ import annotations

import enum


class Trilean(enum.Enum):
    """A definite yes, a definite no, or an honest "ran out of budget"."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    @classmethod
    def of(cls, value: bool) -> "Trilean":
        """Lift a bool to a definite answer."""
        return cls.TRUE if value else cls.FALSE

    @property
    def is_definite(self) -> bool:
        return self is not Trilean.UNKNOWN

    def to_bool(self) -> bool:
        """Collapse to bool; raises on UNKNOWN."""
        if self is Trilean.UNKNOWN:
            raise ValueError("answer is UNKNOWN; no definite boolean")
        return self is Trilean.TRUE

    def __invert__(self) -> "Trilean":
        if self is Trilean.TRUE:
            return Trilean.FALSE
        if self is Trilean.FALSE:
            return Trilean.TRUE
        return Trilean.UNKNOWN

    def __and__(self, other: "Trilean") -> "Trilean":
        """Kleene conjunction."""
        if Trilean.FALSE in (self, other):
            return Trilean.FALSE
        if Trilean.UNKNOWN in (self, other):
            return Trilean.UNKNOWN
        return Trilean.TRUE

    def __or__(self, other: "Trilean") -> "Trilean":
        """Kleene disjunction."""
        if Trilean.TRUE in (self, other):
            return Trilean.TRUE
        if Trilean.UNKNOWN in (self, other):
            return Trilean.UNKNOWN
        return Trilean.FALSE
