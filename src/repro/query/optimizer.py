"""Constraint-aware optimization of path queries.

Two classical uses of implied word constraints (Section 2.2 calls
implication "useful for, among other things, query optimization"):

* **subsumption pruning** — in a union of word queries, a branch whose
  answers are provably contained in another branch's contributes
  nothing and is dropped (``Sigma |- p => q`` gives
  ``answers(p) c answers(q)`` in every database satisfying Sigma);
* **equivalent rewriting** — a word query may be replaced by any
  provably *equivalent* word (derivable in both directions); picking
  the shortlex-least equivalent, e.g. rewriting ``book.author.wrote``
  to ``book`` under inverse constraints, turns long navigations into
  extent scans.

Both are sound only on databases that satisfy Sigma; the optimizer is
deliberately decoupled from evaluation so callers choose when to trust
their constraints.

Every implication question is routed through
:func:`repro.reasoning.dispatcher.solve`, so the optimizer inherits
the cross-request cache, the cost-model dispatch, budgets and the
fault taxonomy.  Implications the solver cannot settle (Sigma with
equality-generating word constraints can defeat both the sound closure
and the chase) are treated as *not proven*: the branch is kept
conservatively and the unsettled question lands in
``OptimizationReport.notes`` — a legal query plus a legal Sigma never
crashes the optimizer.

For full regular patterns (not just unions of words),
:func:`optimize_rpq_union` prunes subsumed and provably-empty branches
through a :class:`~repro.query.containment.QueryContainmentChecker`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.constraints.ast import PathConstraint
from repro.constraints.ast import word as word_constraint
from repro.errors import IncompleteFragmentError
from repro.graph.structure import Graph, Node
from repro.paths import Path
from repro.query.containment import QueryContainmentChecker
from repro.query.rpq import RPQResult, evaluate_nfa, evaluate_word
from repro.reasoning.cache import ImplicationCache
from repro.reasoning.dispatcher import ImplicationProblem, solve
from repro.reasoning.word import WordImplicationDecider
from repro.truth import Trilean


@dataclass
class OptimizationReport:
    """What the optimizer did to a union-of-words query.

    ``pruned`` accounts for every dropped occurrence — subsumed
    branches, duplicate inputs (recorded as self-absorptions) and
    rewrite collisions — so ``len(pruned) == branches_saved`` always
    holds.
    """

    original: tuple[Path, ...]
    optimized: tuple[Path, ...]
    pruned: tuple[tuple[Path, Path], ...] = ()  # (dropped, absorbed-by)
    rewrites: tuple[tuple[Path, Path], ...] = ()  # (from, to)
    notes: list[str] = field(default_factory=list)

    @property
    def branches_saved(self) -> int:
        return len(self.original) - len(self.optimized)

    @property
    def labels_saved(self) -> int:
        return sum(len(p) for p in self.original) - sum(
            len(p) for p in self.optimized
        )


class WordQueryOptimizer:
    """Optimizes word queries under a set of word constraints.

    >>> from repro.constraints import parse_constraints
    >>> sigma = parse_constraints('''
    ...     book.author => person
    ...     book.author.wrote => book
    ... ''')
    >>> optimizer = WordQueryOptimizer(sigma)
    >>> report = optimizer.optimize_union(
    ...     ["book.author", "person", "book.author.wrote"])
    >>> sorted(str(p) for p in report.optimized)
    ['book.author.wrote', 'person']
    """

    def __init__(
        self,
        sigma: Iterable[PathConstraint],
        cache: ImplicationCache | None = None,
        jobs: int | str = "auto",
        deadline: float | None = None,
    ) -> None:
        self._sigma = tuple(sigma)
        # The rewrite decider only speaks P_w; with guarded constraints
        # in Sigma it saturates over the word subset (sound: word rules
        # stay valid in every context), while subsumption checks see the
        # full Sigma through the dispatcher.
        word_sigma = tuple(
            c for c in self._sigma if c.is_word_constraint()
        )
        self._decider = WordImplicationDecider(word_sigma)
        self._rewrites_restricted = len(word_sigma) < len(self._sigma)
        self._cache = cache
        self._jobs = jobs
        self._deadline = deadline
        self._subsumption_memo: dict[tuple[Path, Path], Trilean] = {}
        self._unsettled: list[str] = []
        #: Dispatcher traffic (the query benchmarks report these).
        self.stats = {"solve_calls": 0, "cache_hits": 0}

    @property
    def decider(self) -> WordImplicationDecider:
        return self._decider

    def subsumption(self, narrow: Path | str, wide: Path | str) -> Trilean:
        """Three-valued ``answers(narrow) c answers(wide)`` under Sigma.

        Routed through the dispatcher (cache, budgets, cost model).
        UNKNOWN means the solver could not settle the implication
        within budget — with equality-generating word constraints in
        Sigma that is a legal outcome, not an error.
        """
        narrow = Path.coerce(narrow)
        wide = Path.coerce(wide)
        if narrow == wide:
            return Trilean.TRUE
        memoized = self._subsumption_memo.get((narrow, wide))
        if memoized is not None:
            return memoized
        problem = ImplicationProblem(
            self._sigma, word_constraint(narrow, wide)
        )
        self.stats["solve_calls"] += 1
        try:
            result = solve(
                problem,
                jobs=self._jobs,
                deadline=self._deadline,
                cache=self._cache,
            )
            answer = result.answer
            if result.cache is not None and result.cache.status == "hit":
                self.stats["cache_hits"] += 1
        except IncompleteFragmentError:
            answer = Trilean.UNKNOWN
            self._unsettled.append(
                f"unsettled implication {narrow} => {wide}: "
                "treated as not proven; branch kept"
            )
        self._subsumption_memo[(narrow, wide)] = answer
        return answer

    def subsumes(self, narrow: Path | str, wide: Path | str) -> bool:
        """Is ``answers(narrow) c answers(wide)`` *proved*?"""
        return self.subsumption(narrow, wide) is Trilean.TRUE

    def equivalent(self, left: Path | str, right: Path | str) -> bool:
        """Provable equality of answer sets under Sigma."""
        return self.subsumes(left, right) and self.subsumes(right, left)

    def shortest_equivalent(
        self, path: Path | str, max_extra_length: int = 0
    ) -> Path:
        """The shortlex-least word provably equivalent to ``path``.

        Candidates are drawn from the ``post*`` language of the query
        word (everything it is contained in), filtered by reverse
        containment.  ``max_extra_length`` widens the candidate length
        bound beyond the original length.
        """
        path = Path.coerce(path)
        best = path
        for candidate in self._decider.consequences(
            path, max_length=len(path) + max_extra_length
        ):
            if candidate < best and self.subsumes(candidate, path):
                best = candidate
        return best

    def optimize_union(
        self, branches: Sequence[Path | str], rewrite: bool = True
    ) -> OptimizationReport:
        """Prune subsumed branches, then rewrite survivors.

        Pruning keeps the shortlex-least member of each mutual-
        subsumption clique, so the result is deterministic.  Duplicate
        input branches are recorded as self-absorptions; branches that
        rewrite onto the same word are recorded as absorbed by the
        branch that claimed the rewrite first.
        """
        original = tuple(Path.coerce(b) for b in branches)
        unsettled_before = len(self._unsettled)
        pruned_pairs: list[tuple[Path, Path]] = []
        # Deduplicate with accounting, keep deterministic order.
        ordered: list[Path] = []
        seen: set[Path] = set()
        duplicates = 0
        for branch in sorted(original):
            if branch in seen:
                pruned_pairs.append((branch, branch))
                duplicates += 1
                continue
            seen.add(branch)
            ordered.append(branch)

        kept: list[Path] = []
        for candidate in ordered:
            absorbed_by = None
            for other in ordered:
                if other == candidate:
                    continue
                if self.subsumption(candidate, other) is Trilean.TRUE:
                    # Mutual subsumption: keep the shortlex-least.
                    if (
                        self.subsumption(other, candidate) is Trilean.TRUE
                        and candidate < other
                    ):
                        continue
                    absorbed_by = other
                    break
            if absorbed_by is None:
                kept.append(candidate)
            else:
                pruned_pairs.append((candidate, absorbed_by))
        subsumed = len(pruned_pairs) - duplicates

        rewrites: list[tuple[Path, Path]] = []
        merged = 0
        if rewrite:
            targets: list[tuple[Path, Path]] = []
            for branch in kept:
                best = self.shortest_equivalent(branch)
                if best != branch:
                    rewrites.append((branch, best))
                targets.append((branch, best))
            kept = []
            claimed: dict[Path, Path] = {}
            for branch, best in sorted(targets, key=lambda t: t[1]):
                if best in claimed:
                    pruned_pairs.append((branch, best))
                    merged += 1
                    continue
                claimed[best] = branch
                kept.append(best)

        report = OptimizationReport(
            original=original,
            optimized=tuple(kept),
            pruned=tuple(pruned_pairs),
            rewrites=tuple(rewrites),
        )
        if duplicates:
            report.notes.append(
                f"dropped {duplicates} duplicate branch(es) "
                "(recorded as self-absorptions)"
            )
        if subsumed:
            report.notes.append(
                f"pruned {subsumed} subsumed branch(es)"
            )
        if merged:
            report.notes.append(
                f"merged {merged} branch(es) rewriting onto the same word"
            )
        if rewrite and self._rewrites_restricted:
            report.notes.append(
                "rewrites saturated over the word subset of Sigma "
                "(guarded constraints join subsumption checks only)"
            )
        report.notes.extend(self._unsettled[unsettled_before:])
        return report

    def evaluate_union(
        self, graph: Graph, branches: Sequence[Path | str], optimize: bool = True
    ) -> tuple[frozenset[Node], list[RPQResult], OptimizationReport | None]:
        """Evaluate a union query, optionally optimized first.

        Returns (answers, per-branch results, report).  Correctness
        requires the graph to satisfy Sigma — the guarantee the
        integrity-checking engine provides.
        """
        report = self.optimize_union(branches) if optimize else None
        plan = report.optimized if report is not None else [
            Path.coerce(b) for b in branches
        ]
        results = [evaluate_word(graph, branch) for branch in plan]
        answers: set[Node] = set()
        for result in results:
            answers |= result.answers
        return frozenset(answers), results, report


# ---------------------------------------------------------------------------
# Full regular patterns: containment-checker-driven union optimization.
# ---------------------------------------------------------------------------


@dataclass
class RPQOptimizationReport:
    """What :func:`optimize_rpq_union` did to a union of patterns."""

    original: tuple[str, ...]
    optimized: tuple[str, ...]
    pruned: tuple[tuple[str, str], ...] = ()  # (dropped, absorbed-by)
    emptied: tuple[str, ...] = ()  # provably-empty branches dropped
    notes: list[str] = field(default_factory=list)

    @property
    def branches_saved(self) -> int:
        return len(self.original) - len(self.optimized)


def optimize_rpq_union(
    branches: Sequence[str],
    checker: QueryContainmentChecker,
) -> RPQOptimizationReport:
    """Prune a union of regular patterns under the checker's Sigma.

    A branch is dropped when it is *provably* empty over the schema or
    provably contained in another branch; UNKNOWN containments keep
    the branch (sound either way — dropping needs proof).  Mutual
    containment keeps the lexicographically-least pattern string.
    """
    original = tuple(str(b) for b in branches)
    pruned: list[tuple[str, str]] = []
    emptied: list[str] = []
    notes: list[str] = []

    ordered: list[str] = []
    seen: set[str] = set()
    for branch in sorted(original):
        if branch in seen:
            pruned.append((branch, branch))
            continue
        seen.add(branch)
        if checker.provably_empty(branch):
            emptied.append(branch)
            continue
        ordered.append(branch)
    if emptied:
        notes.append(
            f"dropped {len(emptied)} branch(es) whose language misses "
            "Paths(Delta) entirely"
        )

    kept: list[str] = []
    unknowns = 0
    for candidate in ordered:
        absorbed_by = None
        for other in ordered:
            if other == candidate:
                continue
            verdict = checker.contains(candidate, other).verdict
            if verdict is Trilean.UNKNOWN:
                unknowns += 1
                continue
            if verdict is Trilean.TRUE:
                if (
                    checker.contains(other, candidate).verdict
                    is Trilean.TRUE
                    and candidate < other
                ):
                    continue
                absorbed_by = other
                break
        if absorbed_by is None:
            kept.append(candidate)
        else:
            pruned.append((candidate, absorbed_by))
    if unknowns:
        notes.append(
            f"{unknowns} containment question(s) unsettled; branches "
            "kept conservatively"
        )
    return RPQOptimizationReport(
        original=original,
        optimized=tuple(kept),
        pruned=tuple(pruned),
        emptied=tuple(emptied),
        notes=notes,
    )


def evaluate_rpq_union(
    graph: Graph,
    branches: Sequence[str],
    checker: QueryContainmentChecker | None = None,
    start: Node | None = None,
) -> tuple[frozenset[Node], list[RPQResult], RPQOptimizationReport | None]:
    """Evaluate a union of regular patterns, optimized when a checker
    is supplied.

    Each surviving branch is compiled through the checker (wildcard
    resolution + ``Paths(Delta)`` restriction in typed contexts) and
    trimmed to its useful states before the product search runs.
    """
    report = (
        optimize_rpq_union(branches, checker)
        if checker is not None
        else None
    )
    plan = (
        report.optimized
        if report is not None
        else tuple(str(b) for b in branches)
    )
    results = []
    for pattern in plan:
        if checker is not None:
            nfa = checker.compile(pattern).trim()
        else:
            from repro.automata.regex import compile_regex

            nfa = compile_regex(pattern, alphabet=graph.labels())
        results.append(evaluate_nfa(graph, nfa, pattern, start))
    answers: set[Node] = set()
    for result in results:
        answers |= result.answers
    return frozenset(answers), results, report
