"""Constraint-aware optimization of path queries.

Two classical uses of implied word constraints (Section 2.2 calls
implication "useful for, among other things, query optimization"):

* **subsumption pruning** — in a union of word queries, a branch whose
  answers are provably contained in another branch's contributes
  nothing and is dropped (``Sigma |- p => q`` gives
  ``answers(p) c answers(q)`` in every database satisfying Sigma);
* **equivalent rewriting** — a word query may be replaced by any
  provably *equivalent* word (derivable in both directions); picking
  the shortlex-least equivalent, e.g. rewriting ``book.author.wrote``
  to ``book`` under inverse constraints, turns long navigations into
  extent scans.

Both are sound only on databases that satisfy Sigma; the optimizer is
deliberately decoupled from evaluation so callers choose when to trust
their constraints.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.constraints.ast import PathConstraint
from repro.graph.structure import Graph, Node
from repro.paths import Path
from repro.query.rpq import RPQResult, evaluate_word
from repro.reasoning.word import WordImplicationDecider
from repro.constraints.ast import word as word_constraint


@dataclass
class OptimizationReport:
    """What the optimizer did to a union-of-words query."""

    original: tuple[Path, ...]
    optimized: tuple[Path, ...]
    pruned: tuple[tuple[Path, Path], ...] = ()  # (dropped, absorbed-by)
    rewrites: tuple[tuple[Path, Path], ...] = ()  # (from, to)
    notes: list[str] = field(default_factory=list)

    @property
    def branches_saved(self) -> int:
        return len(self.original) - len(self.optimized)

    @property
    def labels_saved(self) -> int:
        return sum(len(p) for p in self.original) - sum(
            len(p) for p in self.optimized
        )


class WordQueryOptimizer:
    """Optimizes word queries under a set of word constraints.

    >>> from repro.constraints import parse_constraints
    >>> sigma = parse_constraints('''
    ...     book.author => person
    ...     book.author.wrote => book
    ... ''')
    >>> optimizer = WordQueryOptimizer(sigma)
    >>> report = optimizer.optimize_union(
    ...     ["book.author", "person", "book.author.wrote"])
    >>> sorted(str(p) for p in report.optimized)
    ['book.author.wrote', 'person']
    """

    def __init__(self, sigma: Iterable[PathConstraint]) -> None:
        self._decider = WordImplicationDecider(sigma)

    @property
    def decider(self) -> WordImplicationDecider:
        return self._decider

    def subsumes(self, narrow: Path | str, wide: Path | str) -> bool:
        """Is ``answers(narrow) c answers(wide)`` implied?"""
        return self._decider.implies(
            word_constraint(Path.coerce(narrow), Path.coerce(wide))
        )

    def equivalent(self, left: Path | str, right: Path | str) -> bool:
        """Provable equality of answer sets under Sigma."""
        return self.subsumes(left, right) and self.subsumes(right, left)

    def shortest_equivalent(
        self, path: Path | str, max_extra_length: int = 0
    ) -> Path:
        """The shortlex-least word provably equivalent to ``path``.

        Candidates are drawn from the ``post*`` language of the query
        word (everything it is contained in), filtered by reverse
        containment.  ``max_extra_length`` widens the candidate length
        bound beyond the original length.
        """
        path = Path.coerce(path)
        best = path
        for candidate in self._decider.consequences(
            path, max_length=len(path) + max_extra_length
        ):
            if candidate < best and self.subsumes(candidate, path):
                best = candidate
        return best

    def optimize_union(
        self, branches: Sequence[Path | str], rewrite: bool = True
    ) -> OptimizationReport:
        """Prune subsumed branches, then rewrite survivors.

        Pruning keeps the shortlex-least member of each mutual-
        subsumption clique, so the result is deterministic.
        """
        original = tuple(Path.coerce(b) for b in branches)
        # Deduplicate, keep deterministic order.
        ordered = sorted(set(original))
        pruned_pairs: list[tuple[Path, Path]] = []
        kept: list[Path] = []
        for candidate in ordered:
            absorbed_by = None
            for other in ordered:
                if other == candidate:
                    continue
                if self.subsumes(candidate, other):
                    # Mutual subsumption: keep the shortlex-least.
                    if self.subsumes(other, candidate) and candidate < other:
                        continue
                    absorbed_by = other
                    break
            if absorbed_by is None:
                kept.append(candidate)
            else:
                pruned_pairs.append((candidate, absorbed_by))

        rewrites: list[tuple[Path, Path]] = []
        if rewrite:
            rewritten: list[Path] = []
            for branch in kept:
                best = self.shortest_equivalent(branch)
                if best != branch:
                    rewrites.append((branch, best))
                rewritten.append(best)
            kept = sorted(set(rewritten))

        report = OptimizationReport(
            original=original,
            optimized=tuple(kept),
            pruned=tuple(pruned_pairs),
            rewrites=tuple(rewrites),
        )
        if report.branches_saved:
            report.notes.append(
                f"pruned {report.branches_saved} subsumed branch(es)"
            )
        return report

    def evaluate_union(
        self, graph: Graph, branches: Sequence[Path | str], optimize: bool = True
    ) -> tuple[frozenset[Node], list[RPQResult], OptimizationReport | None]:
        """Evaluate a union query, optionally optimized first.

        Returns (answers, per-branch results, report).  Correctness
        requires the graph to satisfy Sigma — the guarantee the
        integrity-checking engine provides.
        """
        report = self.optimize_union(branches) if optimize else None
        plan = report.optimized if report is not None else [
            Path.coerce(b) for b in branches
        ]
        results = [evaluate_word(graph, branch) for branch in plan]
        answers: set[Node] = set()
        for result in results:
            answers |= result.answers
        return frozenset(answers), results, report
