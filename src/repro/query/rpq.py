"""Regular path query evaluation.

A regular path query (RPQ) asks for all nodes reachable from the root
by a path whose label sequence matches a regular expression.  The
standard algorithm runs a breadth-first search over the product of the
graph with the query automaton; the cost is bounded by
``|G| x |A|`` product states, independent of how many paths match.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.automata.nfa import NFA
from repro.automata.regex import compile_regex
from repro.graph.structure import Graph, Node
from repro.paths import Path


@dataclass(frozen=True)
class RPQResult:
    """Answer set plus evaluation statistics.

    ``edges_traversed`` counts *distinct graph edges* the product
    search crossed — each ``(node, label, target)`` edge at most once,
    however many automaton states happened to be paired with its
    source node.
    """

    pattern: str
    answers: frozenset[Node]
    product_states_visited: int
    edges_traversed: int


def evaluate_rpq(
    graph: Graph, pattern: str, start: Node | None = None
) -> RPQResult:
    """Evaluate a regular path query from ``start`` (default: root).

    >>> from repro.graph import figure1_graph
    >>> g = figure1_graph()
    >>> sorted(evaluate_rpq(g, "book.(ref)*.author").answers)
    ['person1', 'person2']
    """
    nfa = compile_regex(pattern, alphabet=graph.labels())
    return evaluate_nfa(graph, nfa, pattern, start)


def evaluate_word(
    graph: Graph, path: Path | str, start: Node | None = None
) -> RPQResult:
    """Evaluate a plain word query (single path) with the same stats."""
    path = Path.coerce(path)
    nfa = NFA.for_word(path.labels)
    return evaluate_nfa(graph, nfa, str(path), start)


def evaluate_nfa(
    graph: Graph, nfa: NFA, pattern: str, start: Node | None = None
) -> RPQResult:
    """Evaluate a pre-built query automaton (the entry point the
    constraint-aware optimizer uses after pruning the automaton)."""
    start_node = graph.root if start is None else start
    initial_states = nfa.epsilon_closure([nfa.initial])
    queue: deque[tuple[Node, object]] = deque(
        (start_node, q) for q in initial_states
    )
    visited: set[tuple[Node, object]] = set(queue)
    answers: set[Node] = set()
    finals = nfa.finals
    edges_seen: set[tuple[Node, str, Node]] = set()
    for node, state in visited:
        if state in finals:
            answers.add(node)
    while queue:
        node, state = queue.popleft()
        for label, target in graph.out_edges(node):
            moved = nfa.step([state], label)
            if not moved:
                continue
            # The edge was crossed in the product; count it once no
            # matter how many automaton states pair with this node.
            edges_seen.add((node, label, target))
            for next_state in moved:
                pair = (target, next_state)
                if pair in visited:
                    continue
                visited.add(pair)
                if next_state in finals:
                    answers.add(target)
                queue.append(pair)
    return RPQResult(
        pattern=pattern,
        answers=frozenset(answers),
        product_states_visited=len(visited),
        edges_traversed=len(edges_seen),
    )


# Backwards-compatible alias (pre-optimizer internal name).
_evaluate_nfa = evaluate_nfa
