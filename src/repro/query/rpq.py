"""Regular path query evaluation.

A regular path query (RPQ) asks for all nodes reachable from the root
by a path whose label sequence matches a regular expression.  The
standard algorithm runs a breadth-first search over the product of the
graph with the query automaton; the cost is bounded by
``|G| x |A|`` product states, independent of how many paths match.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.automata.nfa import NFA
from repro.automata.regex import compile_regex
from repro.graph.structure import Graph, Node
from repro.paths import Path


@dataclass(frozen=True)
class RPQResult:
    """Answer set plus evaluation statistics."""

    pattern: str
    answers: frozenset[Node]
    product_states_visited: int
    edges_traversed: int


def evaluate_rpq(
    graph: Graph, pattern: str, start: Node | None = None
) -> RPQResult:
    """Evaluate a regular path query from ``start`` (default: root).

    >>> from repro.graph import figure1_graph
    >>> g = figure1_graph()
    >>> sorted(evaluate_rpq(g, "book.(ref)*.author").answers)
    ['person1', 'person2']
    """
    nfa = compile_regex(pattern, alphabet=graph.labels())
    return _evaluate_nfa(graph, nfa, pattern, start)


def evaluate_word(
    graph: Graph, path: Path | str, start: Node | None = None
) -> RPQResult:
    """Evaluate a plain word query (single path) with the same stats."""
    path = Path.coerce(path)
    nfa = NFA.for_word(path.labels)
    return _evaluate_nfa(graph, nfa, str(path), start)


def _evaluate_nfa(
    graph: Graph, nfa: NFA, pattern: str, start: Node | None
) -> RPQResult:
    start_node = graph.root if start is None else start
    initial_states = nfa.epsilon_closure([nfa.initial])
    queue: deque[tuple[Node, object]] = deque(
        (start_node, q) for q in initial_states
    )
    visited: set[tuple[Node, object]] = set(queue)
    answers: set[Node] = set()
    finals = nfa.finals
    edges = 0
    for node, state in visited:
        if state in finals:
            answers.add(node)
    while queue:
        node, state = queue.popleft()
        for label, target in graph.out_edges(node):
            for next_state in nfa.step([state], label):
                edges += 1
                pair = (target, next_state)
                if pair in visited:
                    continue
                visited.add(pair)
                if next_state in finals:
                    answers.add(target)
                queue.append(pair)
    return RPQResult(
        pattern=pattern,
        answers=frozenset(answers),
        product_states_visited=len(visited),
        edges_traversed=edges,
    )
