"""Containment of regular path queries under path constraints.

``P c Q`` under Sigma means ``answers(P) c answers(Q)`` in every
database satisfying Sigma.  The reduction to implication is the
classical one (Calvanese-De Giacomo-Lenzerini for DL constraints;
Section 2.2 of the paper for the word-constraint engine behind it):

    ``P c Q``  iff  ``L(P)  c  pre*(L(Q))``

where ``pre*`` is taken under the prefix-rewriting system of Sigma's
word images — every word of ``P`` must be provably contained in *some*
word of ``Q``.  Soundness of that reduction needs only the soundness
of the three word-constraint inference rules, so it holds in every
context; *completeness* needs a canonical model, which the paper
supplies exactly on the decidable cells:

* **semistructured, EGD-free P_w** ([AV97], restated in Section 4.2):
  derivability is complete, and the chased word tableau is a canonical
  countermodel, so both TRUE and FALSE are definite;
* **M with a schema** (Lemmas 4.7/4.8, Theorem 4.9): constraints
  word-image into a *symmetric* system, both query languages are
  restricted to ``Paths(Delta)``, and the quotient of the path
  unfolding decides both directions;
* **everything else** (EGD word constraints, guarded/backward
  constraints over semistructured data, M+ contexts): undecidable or
  outside the complete fragment.  The checker then answers
  three-valued: TRUE when a sound saturation or a
  :func:`repro.reasoning.dispatcher.solve`-backed per-word coverage
  proves it, FALSE when a chased witness instance explicitly violates
  the containment, honest UNKNOWN otherwise — never a guess, never a
  crash.

The product construction is on-the-fly (no explicit powerset), so
query automata of the sizes real queries produce are cheap; a
``max_product_pairs`` valve turns a pathological blow-up into UNKNOWN
instead of an OOM.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.automata.nfa import NFA
from repro.automata.regex import compile_regex
from repro.constraints.ast import PathConstraint, word as word_constraint
from repro.errors import ReproError
from repro.paths import Path
from repro.reasoning.cache import ImplicationCache
from repro.reasoning.dispatcher import Context, ImplicationProblem, solve
from repro.rewriting.prefix import PrefixRewriteSystem
from repro.truth import Trilean
from repro.types.siggen import SchemaSignature
from repro.types.typesys import Schema


@dataclass(frozen=True)
class ContainmentResult:
    """The three-valued outcome of one containment question."""

    left: str
    right: str
    verdict: Trilean
    method: str
    decidable: bool
    #: A word of ``L(left)`` not provably covered by ``right``.  On
    #: decidable cells this is a genuine counterexample word; on
    #: UNKNOWN verdicts it is the unsettled candidate.
    witness: Path | None = None
    notes: tuple[str, ...] = ()

    @property
    def holds(self) -> bool:
        """True iff containment is *proved* (UNKNOWN is not proof)."""
        return self.verdict is Trilean.TRUE

    def describe(self) -> str:
        head = f"{self.left} c {self.right}: {self.verdict.value}"
        if self.witness is not None:
            head += f" (witness {self.witness})"
        return f"{head} [{self.method}]"


def _word_rules(
    sigma: Iterable[PathConstraint],
) -> tuple[list[tuple[Path, Path]], list[PathConstraint]]:
    """The prefix-rewrite rules Sigma soundly justifies, plus the
    residue it does not.

    Word constraints rewrite directly (``u => v`` gives
    ``answers(u.z) c answers(v.z)`` by right-congruence, sound in
    every context, EGDs included).  A *forward* guarded constraint
    soundly contributes its word image ``prefix.lhs => prefix.rhs``
    (any witness of the prefix relays the conclusion).  Backward
    constraints have no sound word image outside M — Lemma 4.8 needs
    M's totality — so they land in the residue.
    """
    rules: list[tuple[Path, Path]] = []
    residue: list[PathConstraint] = []
    for psi in sigma:
        if psi.is_forward():
            rules.append(
                (psi.prefix.concat(psi.lhs), psi.prefix.concat(psi.rhs))
            )
        else:
            residue.append(psi)
    return rules, residue


class QueryContainmentChecker:
    """Decides (or soundly semi-decides) RPQ containment under Sigma.

    >>> from repro.constraints import parse_constraints
    >>> sigma = parse_constraints('''
    ...     book.author => person
    ...     person.wrote => book
    ... ''')
    >>> checker = QueryContainmentChecker(sigma)
    >>> checker.contains("book.author", "person").verdict.value
    'true'
    >>> checker.contains("person", "book.author").verdict.value
    'false'
    >>> checker.contains("book.author.wrote | person.wrote",
    ...                  "book").verdict.value
    'true'
    """

    def __init__(
        self,
        sigma: Iterable[PathConstraint],
        context: Context | str = Context.SEMISTRUCTURED,
        schema: Schema | None = None,
        cache: ImplicationCache | None = None,
        jobs: int | str = "auto",
        deadline: float | None = None,
        chase_steps: int = 400,
        enumeration_count: int = 64,
        max_product_pairs: int = 200_000,
    ) -> None:
        self._sigma = tuple(sigma)
        self._context = (
            Context(context) if isinstance(context, str) else context
        )
        if self._context is not Context.SEMISTRUCTURED and schema is None:
            raise ValueError(
                f"context {self._context.value} needs a schema"
            )
        self._schema = schema
        self._signature = (
            SchemaSignature(schema) if schema is not None else None
        )
        self._cache = cache
        self._jobs = jobs
        self._deadline = deadline
        self._chase_steps = chase_steps
        self._enumeration_count = enumeration_count
        self._max_product_pairs = max_product_pairs
        #: Dispatcher traffic of the fallback path (benchmark fodder).
        self.stats = {"solve_calls": 0, "cache_hits": 0}
        self._alphabet = set()
        for psi in self._sigma:
            self._alphabet |= psi.alphabet()
        if self._signature is not None:
            self._alphabet |= self._signature.edge_labels
        self._covered_memo: dict[str, NFA] = {}

    @property
    def sigma(self) -> tuple[PathConstraint, ...]:
        return self._sigma

    @property
    def context(self) -> Context:
        return self._context

    # -- pattern compilation -------------------------------------------

    def compile(self, pattern: str) -> NFA:
        """The query automaton of ``pattern``.

        The ``_`` wildcard ranges over Sigma's and the schema's labels;
        in typed contexts the language is additionally intersected with
        ``Paths(Delta)`` (paths outside it reach no node in any typed
        structure, so the restriction never changes answer sets).
        """
        nfa = compile_regex(pattern, alphabet=frozenset(self._alphabet))
        if self._signature is not None:
            nfa = nfa.intersect(self._signature.paths_nfa())
        return nfa

    # -- the decision --------------------------------------------------

    def contains(
        self, left: str | Path, right: str | Path
    ) -> ContainmentResult:
        """Three-valued ``answers(left) c answers(right)`` under Sigma."""
        left, right = str(left), str(right)
        left_nfa = self.compile(left)
        if self._context is Context.M:
            return self._contains_typed_m(left, right, left_nfa)
        if self._context is Context.SEMISTRUCTURED and self._exact_word_cell():
            return self._contains_exact_word(left, right, left_nfa)
        return self._contains_fallback(left, right, left_nfa)

    def equivalence(self, left: str | Path, right: str | Path) -> Trilean:
        """Kleene conjunction of both containment directions."""
        return (
            self.contains(left, right).verdict
            & self.contains(right, left).verdict
        )

    def provably_empty(self, pattern: str) -> bool:
        """Is ``answers(pattern)`` empty in *every* model over the
        schema?  (Only the typed contexts can prove emptiness: a
        pattern whose language misses ``Paths(Delta)`` entirely reaches
        no node anywhere.)"""
        if self._signature is None:
            return False
        return self.compile(pattern).is_empty()

    # -- exact cells ---------------------------------------------------

    def _exact_word_cell(self) -> bool:
        """All-word, EGD-free Sigma: [AV97] derivability is complete."""
        return all(psi.is_word_constraint() for psi in self._sigma) and not any(
            psi.rhs.is_empty() and not psi.lhs.is_empty()
            for psi in self._sigma
        )

    def _covered_automaton(self, right: str, builder) -> NFA:
        cached = self._covered_memo.get(right)
        if cached is None:
            cached = builder()
            self._covered_memo[right] = cached
        return cached

    def _contains_exact_word(
        self, left: str, right: str, left_nfa: NFA
    ) -> ContainmentResult:
        system = PrefixRewriteSystem(
            [(psi.lhs, psi.rhs) for psi in self._sigma]
        )
        covered = self._covered_automaton(
            right, lambda: system.pre_star_of_nfa(self.compile(right))
        )
        try:
            witness = left_nfa.subset_witness(
                covered,
                extra_alphabet=self._alphabet,
                max_pairs=self._max_product_pairs,
            )
        except RuntimeError as exc:
            return ContainmentResult(
                left, right, Trilean.UNKNOWN,
                method="word-prestar-product",
                decidable=True,
                notes=(f"product budget exhausted: {exc}",),
            )
        if witness is None:
            return ContainmentResult(
                left, right, Trilean.TRUE,
                method="word-prestar-product",
                decidable=True,
                notes=("L(left) c pre*(L(right)) under Sigma's rules; "
                       "complete for EGD-free P_w [AV97]",),
            )
        return ContainmentResult(
            left, right, Trilean.FALSE,
            method="word-prestar-product",
            decidable=True,
            witness=Path(witness),
            notes=("witness word matches left but derives into no word "
                   "of right; the chased witness tableau is a "
                   "countermodel",),
        )

    def _contains_typed_m(
        self, left: str, right: str, left_nfa: NFA
    ) -> ContainmentResult:
        assert self._signature is not None
        images: list[tuple[Path, Path]] = []
        unsatisfiable = False
        for psi in self._sigma:
            from repro.reasoning.typed_m import word_image

            self._signature.require_valid_path(psi.prefix)
            self._signature.require_valid_path(psi.prefix.concat(psi.lhs))
            img_left, img_right = word_image(psi)
            self._signature.require_valid_path(img_left)
            self._signature.require_valid_path(img_right)
            images.append((img_left, img_right))
            if self._signature.type_of_path(
                img_left
            ) != self._signature.type_of_path(img_right):
                unsatisfiable = True
        if unsatisfiable:
            return ContainmentResult(
                left, right, Trilean.TRUE,
                method="typed-M-word-image-product",
                decidable=True,
                notes=("premises unsatisfiable over U(Delta); "
                       "vacuously contained",),
            )
        system = PrefixRewriteSystem(images, symmetric=True)
        covered = self._covered_automaton(
            right, lambda: system.post_star_of_nfa(self.compile(right))
        )
        try:
            witness = left_nfa.subset_witness(
                covered,
                extra_alphabet=self._alphabet,
                max_pairs=self._max_product_pairs,
            )
        except RuntimeError as exc:
            return ContainmentResult(
                left, right, Trilean.UNKNOWN,
                method="typed-M-word-image-product",
                decidable=True,
                notes=(f"product budget exhausted: {exc}",),
            )
        if witness is None:
            return ContainmentResult(
                left, right, Trilean.TRUE,
                method="typed-M-word-image-product",
                decidable=True,
                notes=("every valid left word is image-equivalent to a "
                       "valid right word (Lemmas 4.7/4.8; complete by "
                       "the Theorem 4.9 canonical quotient)",),
            )
        return ContainmentResult(
            left, right, Trilean.FALSE,
            method="typed-M-word-image-product",
            decidable=True,
            witness=Path(witness),
            notes=("witness is a valid path equivalent to no valid "
                   "right word; the U(Delta) quotient separates it",),
        )

    # -- the sound three-valued fallback --------------------------------

    def _solve_word(self, lhs: Path, rhs: Path) -> Trilean:
        """One dispatcher-routed implication, never raising."""
        problem = ImplicationProblem(
            self._sigma,
            word_constraint(lhs, rhs),
            self._context,
            schema=self._schema,
        )
        self.stats["solve_calls"] += 1
        try:
            result = solve(
                problem,
                jobs=self._jobs,
                deadline=self._deadline,
                cache=self._cache,
            )
        except ReproError:
            return Trilean.UNKNOWN
        if result.cache is not None and result.cache.status == "hit":
            self.stats["cache_hits"] += 1
        return result.answer

    def _verify_witness_semistructured(
        self, left: str, right: str, witness: Path
    ) -> bool:
        """Try to turn an unproved witness into a definite refutation.

        Chase the witness word's line graph under Sigma; if the chase
        reaches a fixpoint (a genuine Sigma-model) and the containment
        fails on it, the witness is real.  Typed contexts skip this —
        the chased graph is not a structure of ``U(Delta)``.
        """
        from repro.graph.builders import line_graph
        from repro.query.rpq import evaluate_rpq
        from repro.reasoning.chase import chase

        outcome = chase(
            line_graph(witness.labels),
            list(self._sigma),
            max_steps=self._chase_steps,
        )
        if not outcome.fixpoint:
            return False
        model = outcome.graph
        left_answers = evaluate_rpq(model, left).answers
        right_answers = evaluate_rpq(model, right).answers
        return not left_answers <= right_answers

    def _contains_fallback(
        self, left: str, right: str, left_nfa: NFA
    ) -> ContainmentResult:
        rules, residue = _word_rules(self._sigma)
        system = PrefixRewriteSystem(rules)
        notes: list[str] = []
        if residue:
            notes.append(
                f"{len(residue)} backward constraint(s) contribute no "
                "sound word rule outside M; verdicts stay sound but "
                "incomplete"
            )
        covered = self._covered_automaton(
            right, lambda: system.pre_star_of_nfa(self.compile(right))
        )
        try:
            witness = left_nfa.subset_witness(
                covered,
                extra_alphabet=self._alphabet,
                max_pairs=self._max_product_pairs,
            )
        except RuntimeError as exc:
            return ContainmentResult(
                left, right, Trilean.UNKNOWN,
                method="sound-word-saturation",
                decidable=False,
                notes=tuple(notes) + (f"product budget exhausted: {exc}",),
            )
        if witness is None:
            return ContainmentResult(
                left, right, Trilean.TRUE,
                method="sound-word-saturation",
                decidable=False,
                notes=tuple(notes)
                + ("proved by saturation over Sigma's sound word rules",),
            )

        # The saturation missed at least one word.  When the left
        # language is finite, route every uncovered word through the
        # dispatcher (cache, cost model, budgets) against enumerated
        # right candidates — TRUE stays sound.
        if not left_nfa.has_cycle_on_live_path():
            max_len = max(len(left_nfa.states), 1)
            unsettled: Path | None = None
            right_nfa = self.compile(right)
            candidates = [
                Path(w)
                for w in right_nfa.enumerate_words(
                    max_len + max(
                        (len(r) for _, r in system.rules), default=0
                    ) + 2,
                    self._enumeration_count,
                )
            ]
            for labels in left_nfa.enumerate_words(
                max_len, self._enumeration_count
            ):
                if covered.accepts(labels):
                    continue
                w = Path(labels)
                if any(
                    self._solve_word(w, v) is Trilean.TRUE
                    for v in candidates
                ):
                    continue
                unsettled = w
                break
            if unsettled is None:
                return ContainmentResult(
                    left, right, Trilean.TRUE,
                    method="dispatcher-word-coverage",
                    decidable=False,
                    notes=tuple(notes)
                    + ("every left word dispatcher-proved contained in "
                       "some right word",),
                )
            witness_path = unsettled
        else:
            witness_path = Path(witness)
            notes.append(
                "left language is infinite; enumeration-based coverage "
                "skipped"
            )

        if (
            self._context is Context.SEMISTRUCTURED
            and self._verify_witness_semistructured(
                left, right, witness_path
            )
        ):
            return ContainmentResult(
                left, right, Trilean.FALSE,
                method="chase-witness",
                decidable=False,
                witness=witness_path,
                notes=tuple(notes)
                + ("the chased witness line graph is an explicit "
                   "Sigma-model violating the containment",),
            )
        return ContainmentResult(
            left, right, Trilean.UNKNOWN,
            method="sound-word-saturation",
            decidable=False,
            witness=witness_path,
            notes=tuple(notes)
            + ("unproved and unrefuted within budget; answering "
               "UNKNOWN instead of guessing",),
        )
