"""Regular path queries and constraint-aware optimization.

The paper motivates path-constraint implication with query
optimization (Sections 1-2): knowing that ``book.author => person``
lets an engine answer ``book.author``-shaped queries from the
``person`` extent, and implied containments let it prune union
branches.  This package provides the query side:

* :mod:`repro.query.rpq` — regular path query evaluation by
  automaton-graph product;
* :mod:`repro.query.containment` — three-valued containment of
  regular path queries under path constraints (exact on the decidable
  cells of the paper, sound-but-incomplete elsewhere);
* :mod:`repro.query.optimizer` — subsumption pruning and
  equivalent-path rewriting driven by the reasoning dispatcher, plus
  containment-checker-driven pruning of regular-pattern unions.
"""

from repro.query.containment import ContainmentResult, QueryContainmentChecker
from repro.query.optimizer import (
    OptimizationReport,
    RPQOptimizationReport,
    WordQueryOptimizer,
    evaluate_rpq_union,
    optimize_rpq_union,
)
from repro.query.rpq import RPQResult, evaluate_nfa, evaluate_rpq, evaluate_word

__all__ = [
    "ContainmentResult",
    "QueryContainmentChecker",
    "RPQResult",
    "evaluate_nfa",
    "evaluate_rpq",
    "evaluate_word",
    "evaluate_rpq_union",
    "optimize_rpq_union",
    "RPQOptimizationReport",
    "WordQueryOptimizer",
    "OptimizationReport",
]
