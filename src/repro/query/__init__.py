"""Regular path queries and constraint-aware optimization.

The paper motivates path-constraint implication with query
optimization (Sections 1-2): knowing that ``book.author => person``
lets an engine answer ``book.author``-shaped queries from the
``person`` extent, and implied containments let it prune union
branches.  This package provides the query side:

* :mod:`repro.query.rpq` — regular path query evaluation by
  automaton-graph product;
* :mod:`repro.query.optimizer` — subsumption pruning and
  equivalent-path rewriting driven by the word-constraint decider.
"""

from repro.query.rpq import RPQResult, evaluate_rpq, evaluate_word
from repro.query.optimizer import OptimizationReport, WordQueryOptimizer

__all__ = [
    "RPQResult",
    "evaluate_rpq",
    "evaluate_word",
    "WordQueryOptimizer",
    "OptimizationReport",
]
