"""Enumerating members of U_f(Delta) for M schemas.

Over the restricted model M, a structure satisfying ``Phi(Delta)`` is
determined by: a finite set of nodes per class sort, one node per
reachable atomic sort occurrence (atoms carry no outgoing structure,
so one representative per sort loses no constraint-relevant
generality — P_c constraints only compare reachability), and a *total,
deterministic* choice of target for every (record node, label) pair.
This module enumerates exactly those choices, yielding sorted graphs
that pass the Phi(Delta) checker by construction.

This gives the typed deciders a brute-force semantic oracle: Theorem
4.9's soundness can be checked by confirming that decided implications
hold on every enumerated structure, and refutations can be witnessed
by enumerated counter-models.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

from repro.graph.structure import Graph
from repro.types.siggen import SchemaSignature
from repro.types.typesys import ClassRef, Schema, Type


def enumerate_m_structures(
    schema: Schema,
    max_per_class: int = 2,
    limit: int | None = None,
    reachable_only: bool = True,
) -> Iterator[Graph]:
    """Yield members of U_f(Delta) for an M schema.

    ``max_per_class`` bounds the node count per class sort; atomic
    sorts get a single node.  With ``reachable_only`` (default),
    structures with nodes unreachable from the root are skipped —
    root-anchored P_c constraints cannot see them, and the Phi(Delta)
    checker's sort inference requires reachability.

    The count grows as ``prod(classes) * n^(edges)``; callers pass a
    ``limit``.
    """
    schema.require_m()
    signature = SchemaSignature(schema)

    # Sorts: the root record, class sorts, atomic sorts.
    class_sorts = [
        state for state in signature.states if isinstance(state, ClassRef)
    ]
    class_sorts.sort(key=lambda s: s.name)

    def nodes_of(state: Type, counts: dict[str, int]) -> list:
        if state == signature.root_type:
            return ["r"]
        if isinstance(state, ClassRef):
            return [(state.name, i) for i in range(counts[state.name])]
        # atomic sort: a single representative
        return [("atom", signature.sort_name(state))]

    emitted = 0
    for sizes in itertools.product(
        range(1, max_per_class + 1), repeat=len(class_sorts)
    ):
        counts = {
            sort.name: size for sort, size in zip(class_sorts, sizes)
        }
        # Every (source node, label) slot needs a target choice among
        # the nodes of the target sort.
        slots: list[tuple[object, str, list]] = []
        impossible = False
        for state in [signature.root_type] + class_sorts:
            sources = nodes_of(state, counts)
            body = schema.resolve(state)
            if not body.is_record():
                continue
            for label in body.labels:  # type: ignore[attr-defined]
                target_state = signature.transition(state, label)
                targets = nodes_of(target_state, counts)
                if not targets:
                    impossible = True
                    break
                for source in sources:
                    slots.append((source, label, targets))
            if impossible:
                break
        if impossible:
            continue

        for choice in itertools.product(
            *[targets for (_, _, targets) in slots]
        ):
            graph = Graph(root="r")
            graph.set_sort("r", signature.sort_name(signature.root_type))
            for state in class_sorts:
                for node in nodes_of(state, counts):
                    graph.add_node(node, sort=state.name)
            for (source, label, _), target in zip(slots, choice):
                graph.add_edge(source, label, target)
                if graph.sort_of(target) is None:
                    # atomic representative, sorted lazily
                    graph.set_sort(target, target[1])
            if reachable_only and graph.reachable() != graph.nodes:
                continue
            yield graph
            emitted += 1
            if limit is not None and emitted >= limit:
                return


def find_m_countermodel(
    schema: Schema,
    sigma,
    phi,
    max_per_class: int = 2,
    limit: int = 20_000,
) -> Graph | None:
    """Brute-force search of U_f(Delta) for a counter-model.

    An independent semantic oracle for the typed-M decider: a hit
    proves non-implication; exhaustion up to the bound proves nothing
    (but in the test suite it cross-validates Theorem 4.9 on every
    decided FALSE for small schemas).
    """
    from repro.checking.engine import satisfies_all
    from repro.checking.satisfaction import violations

    sigma = list(sigma)
    for graph in enumerate_m_structures(
        schema, max_per_class=max_per_class, limit=limit
    ):
        if satisfies_all(graph, sigma) and violations(graph, phi, limit=1):
            return graph
    return None
