"""The object-oriented type systems M+ and M (Section 3).

* **M+** supports classes, records, sets and recursive structures; a
  schema is ``Delta = (C, nu, DBtype)``.
* **M** is the restriction without sets, where record fields hold only
  atomic values and oids; its databases are comparable to feature
  structures.
* **M+_f** is M+ with finite sets (Section 6); the schema machinery is
  identical — finiteness matters only to which structures count as
  instances, which this library tracks with an explicit flag on
  enumeration helpers.

A schema determines a first-order signature ``sigma(Delta) =
(r, E(Delta), T(Delta))`` and a type constraint ``Phi(Delta)``
(Section 3.2.2); graphs satisfying ``Phi(Delta)`` are the abstraction
of typed instances (Lemma 3.1).
"""

from repro.types.typesys import (
    AtomicType,
    ClassRef,
    MEMBERSHIP_LABEL,
    RecordType,
    Schema,
    SetType,
    Type,
)
from repro.types.siggen import SchemaSignature
from repro.types.instances import Instance
from repro.types.typecheck import TypingReport, check_type_constraint

__all__ = [
    "AtomicType",
    "ClassRef",
    "SetType",
    "RecordType",
    "Type",
    "Schema",
    "SchemaSignature",
    "Instance",
    "TypingReport",
    "check_type_constraint",
    "MEMBERSHIP_LABEL",
]
