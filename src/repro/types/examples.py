"""Schemas from the paper, plus generators for synthetic M schemas.

* :func:`example_3_1_schema` — the bibliography schema of Example 3.1
  (an M+ schema with optional sub-elements as sets);
* :func:`delta1_schema` — the gadget schema Delta_1 of Section 5.2
  used in the reduction behind Theorem 5.2;
* :func:`feature_structure_schema` — a small M schema in the style of
  the feature structures the paper compares M to;
* :func:`random_m_schema` — deterministic random M schemas for the
  cubic-decider benchmarks.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.types.typesys import (
    AtomicType,
    ClassRef,
    RecordType,
    Schema,
    SetType,
)

STRING = AtomicType("string")
INT = AtomicType("int")


def example_3_1_schema() -> Schema:
    """The M+ schema of Example 3.1 (Penn-bib).

    Person and Book classes; optional sub-elements (age, year) and
    multi-valued relationships (wrote, ref, author) are set-typed.
    """
    person = RecordType(
        [
            ("name", STRING),
            ("SSN", STRING),
            ("age", SetType(INT)),
            ("wrote", SetType(ClassRef("Book"))),
        ]
    )
    book = RecordType(
        [
            ("title", STRING),
            ("ISBN", STRING),
            ("year", SetType(INT)),
            ("ref", SetType(ClassRef("Book"))),
            ("author", SetType(ClassRef("Person"))),
        ]
    )
    db_type = RecordType(
        [
            ("person", SetType(ClassRef("Person"))),
            ("book", SetType(ClassRef("Book"))),
        ]
    )
    return Schema({"Person": person, "Book": book}, db_type)


def delta1_schema(alphabet: Sequence[str]) -> Schema:
    """The schema Delta_1 of Section 5.2.

    For alphabet ``Gamma_0 = {l_1, ..., l_m}``::

        C   -> [l_1: C, ..., l_m: C]
        C_s -> {C}
        C_l -> [a: C, b: C_s, K: C_l]
        DBtype = [l: C_l]

    The labels ``a``, ``b``, ``K`` and ``l`` must not occur in the
    alphabet (the paper assumes this; we enforce it).
    """
    reserved = {"a", "b", "K", "l"}
    clash = reserved & set(alphabet)
    if clash:
        raise ValueError(
            f"alphabet letters {sorted(clash)} collide with the gadget "
            "labels a, b, K, l"
        )
    c_body = RecordType([(letter, ClassRef("C")) for letter in alphabet])
    cs_body = SetType(ClassRef("C"))
    cl_body = RecordType(
        [("a", ClassRef("C")), ("b", ClassRef("Cs")), ("K", ClassRef("Cl"))]
    )
    db_type = RecordType([("l", ClassRef("Cl"))])
    return Schema({"C": c_body, "Cs": cs_body, "Cl": cl_body}, db_type)


def feature_structure_schema() -> Schema:
    """A small M schema: AGREE/HEAD feature structures.

    M databases "are comparable to feature structures studied in
    feature logics" (Section 3.3); this schema gives the tests and
    examples a linguistically flavoured playground::

        Agr  -> [number: string, person: string]
        Cat  -> [head: Cat, agreement: Agr, phon: string]
        DBtype = [sentence: Cat, subject: Cat]
    """
    agr = RecordType([("number", STRING), ("person", STRING)])
    cat = RecordType(
        [("head", ClassRef("Cat")), ("agreement", ClassRef("Agr")), ("phon", STRING)]
    )
    db_type = RecordType([("sentence", ClassRef("Cat")), ("subject", ClassRef("Cat"))])
    return Schema({"Agr": agr, "Cat": cat}, db_type)


def chain_m_schema(depth: int) -> Schema:
    """An M schema whose Paths(Delta) is a chain with a loop at the end
    (used by scaling benchmarks): ``DBtype -f1-> C1 -f2-> ... -> Cn``
    with ``Cn`` looping back to ``C1`` via ``back``."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    classes: dict[str, RecordType] = {}
    for i in range(1, depth + 1):
        fields: list[tuple[str, object]] = [("tag", STRING)]
        if i < depth:
            fields.append((f"f{i + 1}", ClassRef(f"C{i + 1}")))
        else:
            fields.append(("back", ClassRef("C1")))
        classes[f"C{i}"] = RecordType(fields)  # type: ignore[arg-type]
    db_type = RecordType([("f1", ClassRef("C1"))])
    return Schema(classes, db_type)


def random_m_schema(
    class_count: int, labels_per_class: int, seed: int = 0
) -> Schema:
    """A deterministic random M schema.

    Every class is a record of ``labels_per_class`` class-valued fields
    (targets chosen uniformly) plus one string field, so the type graph
    is total on its labels and deeply recursive — the worst case for
    the typed decider's saturation.
    """
    rng = random.Random(seed)
    names = [f"C{i}" for i in range(class_count)]
    classes: dict[str, RecordType] = {}
    for name in names:
        fields: list[tuple[str, object]] = [
            (f"g{j}", ClassRef(rng.choice(names))) for j in range(labels_per_class)
        ]
        fields.append(("tag", STRING))
        classes[name] = RecordType(fields)  # type: ignore[arg-type]
    db_type = RecordType([("entry", ClassRef(names[0]))])
    return Schema(classes, db_type)
