"""Checking the type constraint Phi(Delta) on graphs (Section 3.2.2).

A graph abstracts a typed database exactly when:

* every node has a unique sort in T(Delta), and the root has DBtype;
* an atomic-sorted node has no outgoing edges;
* a set-sorted node (or class whose body is a set) has only
  membership-labeled edges, all leading to nodes of the element sort;
* a record-sorted node (or class whose body is a record) has *exactly*
  one outgoing edge per record label and nothing else, each leading to
  a node of the field's sort;
* pure set and record sorts are extensional: two nodes of the same
  set sort with the same members (resp. same record sort with the same
  fields) are the same node.  Class sorts carry object identity and
  are exempt.

``check_type_constraint`` verifies all of this, inferring the sort
assignment from the root when the graph carries none, and returns a
report listing every violation (empty report == ``G |= Phi(Delta)``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.graph.structure import Graph, Node
from repro.types.siggen import SchemaSignature
from repro.types.typesys import (
    MEMBERSHIP_LABEL,
    AtomicType,
    RecordType,
    Schema,
    SetType,
    Type,
)


@dataclass(frozen=True)
class Violation:
    """One way a graph fails Phi(Delta)."""

    node: Node
    reason: str

    def __str__(self) -> str:
        return f"{self.node!r}: {self.reason}"


@dataclass
class TypingReport:
    """Outcome of a Phi(Delta) check.

    ``ok`` is the paper's ``G |= Phi(Delta)``; ``sorts`` is the
    (possibly inferred) sort assignment that was checked.
    """

    ok: bool
    sorts: dict[Node, str] = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        if self.ok:
            return "G |= Phi(Delta)"
        lines = [f"{len(self.violations)} violation(s):"]
        lines.extend(f"  - {v}" for v in self.violations[:20])
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        return "\n".join(lines)


def infer_sorts(
    schema: Schema, graph: Graph
) -> tuple[dict[Node, Type], list[Violation]]:
    """Propagate sorts from the root through the type graph.

    Returns the inferred assignment plus any conflicts (a node forced
    to two different sorts) and untyped leftovers.
    """
    signature = SchemaSignature(schema)
    assignment: dict[Node, Type] = {graph.root: signature.root_type}
    violations: list[Violation] = []
    queue: deque[Node] = deque([graph.root])
    while queue:
        node = queue.popleft()
        state = assignment[node]
        for label, target in graph.out_edges(node):
            expected = signature.transition(state, label)
            if expected is None:
                # Shape violations are reported by the main checker;
                # inference just cannot type the target through this edge.
                continue
            known = assignment.get(target)
            if known is None:
                assignment[target] = expected
                queue.append(target)
            elif known != expected:
                violations.append(
                    Violation(
                        target,
                        f"sort conflict: {signature.sort_name(known)} vs "
                        f"{signature.sort_name(expected)} (via "
                        f"{label} from {node!r})",
                    )
                )
    for node in graph.nodes:
        if node not in assignment:
            violations.append(
                Violation(node, "untyped: unreachable from the root")
            )
    return assignment, violations


def check_type_constraint(
    schema: Schema, graph: Graph, use_graph_sorts: bool = True
) -> TypingReport:
    """Does ``graph |= Phi(Delta)``?

    When ``use_graph_sorts`` and the graph carries a sort assignment,
    that assignment is used (after translating names back to type
    states); otherwise sorts are inferred from the root.
    """
    signature = SchemaSignature(schema)
    violations: list[Violation] = []

    graph_sorts = graph.sorts if use_graph_sorts else {}
    if graph_sorts:
        by_name = {signature.sort_name(s): s for s in signature.states}
        assignment: dict[Node, Type] = {}
        for node, name in graph_sorts.items():
            state = by_name.get(name)
            if state is None:
                violations.append(
                    Violation(node, f"sort {name!r} is not in T(Delta)")
                )
            else:
                assignment[node] = state
        for node in graph.nodes:
            if node not in graph_sorts:
                violations.append(Violation(node, "node has no sort"))
        root_state = assignment.get(graph.root)
        if root_state is not None and root_state != signature.root_type:
            violations.append(
                Violation(graph.root, "root does not have sort DBtype")
            )
    else:
        assignment, inference_violations = infer_sorts(schema, graph)
        violations.extend(inference_violations)

    # Local shape per node.
    for node, state in assignment.items():
        body = schema.resolve(state)
        if isinstance(body, AtomicType):
            if graph.out_degree(node) != 0:
                violations.append(
                    Violation(node, "atomic-sorted node has outgoing edges")
                )
        elif isinstance(body, SetType):
            element_state = signature.transition(state, MEMBERSHIP_LABEL)
            for label, target in graph.out_edges(node):
                if label != MEMBERSHIP_LABEL:
                    violations.append(
                        Violation(
                            node,
                            f"set-sorted node has a non-membership edge {label!r}",
                        )
                    )
                elif assignment.get(target) != element_state:
                    violations.append(
                        Violation(
                            node,
                            f"member {target!r} does not have the element sort",
                        )
                    )
        elif isinstance(body, RecordType):
            for label in body.labels:
                targets = graph.successors(node, label)
                if len(targets) != 1:
                    violations.append(
                        Violation(
                            node,
                            f"record label {label!r} has {len(targets)} edges "
                            "(expected exactly 1)",
                        )
                    )
                expected = signature.transition(state, label)
                for target in targets:
                    if assignment.get(target) != expected:
                        violations.append(
                            Violation(
                                node,
                                f"field {label!r} target {target!r} has the "
                                "wrong sort",
                            )
                        )
            for label, target in graph.out_edges(node):
                if label not in body:
                    violations.append(
                        Violation(
                            node, f"unexpected edge {label!r} on a record node"
                        )
                    )

    # Extensionality for pure set and record sorts.
    extensional: dict[tuple, Node] = {}
    for node, state in assignment.items():
        if isinstance(state, SetType):
            key = (
                "set",
                state,
                frozenset(graph.successors(node, MEMBERSHIP_LABEL)),
            )
        elif isinstance(state, RecordType):
            key = (
                "rec",
                state,
                tuple(
                    (label, frozenset(graph.successors(node, label)))
                    for label in state.labels
                ),
            )
        else:
            continue
        other = extensional.get(key)
        if other is None:
            extensional[key] = node
        else:
            violations.append(
                Violation(
                    node,
                    f"extensionality: duplicates {other!r} "
                    f"(same sort, same contents)",
                )
            )

    sorts = {node: signature.sort_name(state) for node, state in assignment.items()}
    return TypingReport(ok=not violations, sorts=sorts, violations=violations)
