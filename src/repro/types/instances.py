"""Typed database instances ``I = (pi, nu, d)`` (Section 3.2.1).

An instance of a schema assigns each class a finite set of oids, each
oid a value of its class body type, and fixes an entry-point value of
``DBtype``.  Values are modelled as:

* atoms — Python ``int``/``str`` (per the default atomic types);
* oids — :class:`Oid` wrappers (so a string atom can never be confused
  with an object identity);
* sets — ``frozenset`` of values;
* records — ``dict`` label -> value.

:meth:`Instance.to_graph` is the Lemma 3.1 abstraction: the instance
becomes a finite ``sigma(Delta)``-structure satisfying the type
constraint ``Phi(Delta)``, with set/record values deduplicated
extensionally and every node tagged with its sort.  The instance also
evaluates paths *directly* over values, so tests can confirm the
lemma's satisfaction-equivalence mechanically.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable, Iterator, Mapping

from repro.constraints.ast import PathConstraint
from repro.errors import InstanceError
from repro.graph.structure import Graph
from repro.paths import Path
from repro.types.siggen import SchemaSignature
from repro.types.typesys import (
    MEMBERSHIP_LABEL,
    AtomicType,
    ClassRef,
    RecordType,
    Schema,
    SetType,
    Type,
)

Value = object  # atoms, Oid, frozenset, Mapping


class Oid:
    """An object identity: equal only to itself (by key)."""

    __slots__ = ("key",)

    def __init__(self, key: Hashable) -> None:
        object.__setattr__(self, "key", key)

    def __setattr__(self, *args) -> None:
        raise AttributeError("Oid is immutable")

    def __reduce__(self):
        # The setattr guard breaks pickle's default path; rebuild via
        # __init__ so typed counter-model certificates can cross the
        # portfolio's process boundary.
        return (Oid, (self.key,))

    def __eq__(self, other):
        return isinstance(other, Oid) and other.key == self.key

    def __hash__(self):
        return hash(("oid", self.key))

    def __repr__(self):
        return f"Oid({self.key!r})"


_ATOM_PYTYPES = {"int": int, "string": str}


class Instance:
    """A database instance of an M+ (or M) schema.

    >>> from repro.types.examples import example_3_1_schema
    >>> schema = example_3_1_schema()
    >>> b = Oid("b1")
    >>> inst = Instance(
    ...     schema,
    ...     oids={"Book": {b}, "Person": set()},
    ...     values={b: {"title": "t", "ISBN": "i", "year": frozenset(),
    ...                 "ref": frozenset(), "author": frozenset()}},
    ...     entry={"person": frozenset(), "book": frozenset({b})},
    ... )
    >>> inst.validate()
    """

    def __init__(
        self,
        schema: Schema,
        oids: Mapping[str, Iterable[Oid]],
        values: Mapping[Oid, Value],
        entry: Value,
    ) -> None:
        self._schema = schema
        self._signature = SchemaSignature(schema)
        self._oids = {name: frozenset(members) for name, members in oids.items()}
        for name in schema.class_names:
            self._oids.setdefault(name, frozenset())
        self._values = dict(values)
        self._entry = entry

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def entry(self) -> Value:
        return self._entry

    def oids_of(self, class_name: str) -> frozenset[Oid]:
        return self._oids.get(class_name, frozenset())

    def value_of(self, oid: Oid) -> Value:
        try:
            return self._values[oid]
        except KeyError as exc:
            raise InstanceError(f"oid {oid!r} has no value") from exc

    def class_of(self, oid: Oid) -> str:
        for name, members in self._oids.items():
            if oid in members:
                return name
        raise InstanceError(f"oid {oid!r} belongs to no class")

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`InstanceError` unless this is a legal instance."""
        seen: dict[Oid, str] = {}
        for name, members in self._oids.items():
            if name not in self._schema.class_names:
                raise InstanceError(f"unknown class {name!r} in oid assignment")
            for oid in members:
                if oid in seen:
                    raise InstanceError(
                        f"oid {oid!r} assigned to both {seen[oid]!r} and {name!r}"
                    )
                seen[oid] = name
        for oid, class_name in seen.items():
            if oid not in self._values:
                raise InstanceError(f"oid {oid!r} has no value")
            self._check_value(
                self._values[oid], self._schema.body_of(class_name), f"nu({oid!r})"
            )
        for oid in self._values:
            if oid not in seen:
                raise InstanceError(f"value for unassigned oid {oid!r}")
        self._check_value(self._entry, self._schema.db_type, "entry point")

    def _check_value(self, value: Value, tau: Type, where: str) -> None:
        if isinstance(tau, AtomicType):
            pytype = _ATOM_PYTYPES.get(tau.name)
            ok = pytype is not None and isinstance(value, pytype)
            if isinstance(value, bool):  # bool is an int subtype; reject
                ok = False
            if not ok:
                raise InstanceError(f"{where}: {value!r} is not a {tau!r}")
        elif isinstance(tau, ClassRef):
            if not isinstance(value, Oid) or value not in self.oids_of(tau.name):
                raise InstanceError(
                    f"{where}: {value!r} is not an oid of class {tau.name}"
                )
        elif isinstance(tau, SetType):
            if not isinstance(value, (set, frozenset)):
                raise InstanceError(f"{where}: {value!r} is not a set")
            for member in value:
                self._check_value(member, tau.element, f"{where} member")
        elif isinstance(tau, RecordType):
            if not isinstance(value, Mapping):
                raise InstanceError(f"{where}: {value!r} is not a record")
            if set(value.keys()) != set(tau.labels):
                raise InstanceError(
                    f"{where}: record labels {sorted(value.keys())} do not "
                    f"match {sorted(tau.labels)}"
                )
            for label, field in value.items():
                self._check_value(field, tau.field(label), f"{where}.{label}")
        else:  # pragma: no cover - exhaustive over the AST
            raise InstanceError(f"unknown type {tau!r}")

    # -- the Lemma 3.1 abstraction ------------------------------------------

    def _node_key(self, value: Value, tau: Type) -> Hashable:
        """The canonical graph node for a value at a type.

        Oids keep their identity; set and record values are
        deduplicated extensionally *per type*, mirroring the
        extensionality clauses of Phi(Delta).  The entry-point value at
        DBtype is always the root node, so a nested value that happens
        to equal the entry point coincides with it extensionally.
        """
        if tau == self._schema.db_type and value == self._entry:
            return "r"
        if isinstance(tau, ClassRef):
            return ("oid", value.key)  # type: ignore[union-attr]
        if isinstance(tau, AtomicType):
            return ("atom", tau.name, value)
        name = self._signature.sort_name(tau)
        if isinstance(tau, SetType):
            members = frozenset(
                self._node_key(member, tau.element) for member in value  # type: ignore[union-attr]
            )
            return ("set", name, members)
        if isinstance(tau, RecordType):
            fields = tuple(
                sorted(
                    (label, self._node_key(value[label], tau.field(label)))  # type: ignore[index]
                    for label in tau.labels
                )
            )
            return ("rec", name, fields)
        raise InstanceError(f"unknown type {tau!r}")

    def to_graph(self) -> Graph:
        """The finite sigma(Delta)-structure of Lemma 3.1.

        The entry point becomes the root; every oid, atom, set value
        and record value becomes a node tagged with its sort; record
        fields become labeled edges and set members become edges with
        the membership label.
        """
        graph = Graph(root="r")
        graph.set_sort("r", self._signature.sort_name(self._schema.db_type))
        done: set[Hashable] = set()

        def visit(node: Hashable, value: Value, tau: Type) -> None:
            if node in done:
                return
            done.add(node)
            body = self._schema.resolve(tau)
            if isinstance(tau, ClassRef):
                value = self.value_of(value)  # type: ignore[arg-type]
            if isinstance(body, AtomicType):
                return
            if isinstance(body, SetType):
                for member in value:  # type: ignore[union-attr]
                    child = attach(member, body.element)
                    graph.add_edge(node, MEMBERSHIP_LABEL, child)
            elif isinstance(body, RecordType):
                for label in body.labels:
                    child = attach(value[label], body.field(label))  # type: ignore[index]
                    graph.add_edge(node, label, child)

        def attach(value: Value, tau: Type) -> Hashable:
            node = self._node_key(value, tau)
            if node not in done:
                graph.add_node(node, sort=self._signature.sort_name(tau))
                visit(node, value, tau)
            return node

        # Root first (under its own name), then any oids not reachable
        # from the entry point (they are still elements of |G|).
        visit("r", self._entry, self._schema.db_type)
        for class_name in sorted(self._schema.class_names):
            for oid in sorted(self.oids_of(class_name), key=lambda o: repr(o.key)):
                attach(oid, ClassRef(class_name))
        return graph

    # -- direct path evaluation (used to verify Lemma 3.1 in tests) ----------

    def eval_path(self, path: Path | str) -> frozenset[Hashable]:
        """Evaluate a path over *values*, returning canonical node keys.

        Semantically identical to ``self.to_graph().eval_path(path)``
        but computed without building the graph; the agreement of the
        two is the checkable content of Lemma 3.1.
        """
        path = Path.coerce(path)
        frontier: list[tuple[Value, Type]] = [(self._entry, self._schema.db_type)]
        for label in path:
            nxt: list[tuple[Value, Type]] = []
            for value, tau in frontier:
                body = self._schema.resolve(tau)
                if isinstance(tau, ClassRef):
                    value = self.value_of(value)  # type: ignore[arg-type]
                if isinstance(body, SetType) and label == MEMBERSHIP_LABEL:
                    nxt.extend((member, body.element) for member in value)  # type: ignore[union-attr]
                elif isinstance(body, RecordType) and label in body:
                    nxt.append((value[label], body.field(label)))  # type: ignore[index]
            frontier = nxt
            if not frontier:
                break
        return frozenset(self._node_key(value, tau) for value, tau in frontier)

    def satisfies(self, constraint: PathConstraint) -> bool:
        """Constraint satisfaction evaluated directly on the instance.

        Defined through the canonical graph (the paper defines
        ``I |= phi`` via the abstraction; see [10]); exposed here for
        convenience and exercised against direct path evaluation in the
        test suite.
        """
        from repro.checking.satisfaction import check

        return check(self.to_graph(), constraint).holds


# -- bounded instance enumeration (typed countermodel search) --------------


def _enumerate_values(
    tau: Type,
    oid_pool: Mapping[str, tuple[Oid, ...]],
    atom_pool: Mapping[str, tuple[Value, ...]],
    max_set_size: int,
) -> Iterator[Value]:
    if isinstance(tau, AtomicType):
        yield from atom_pool.get(tau.name, ())
    elif isinstance(tau, ClassRef):
        yield from oid_pool.get(tau.name, ())
    elif isinstance(tau, SetType):
        members = list(
            _enumerate_values(tau.element, oid_pool, atom_pool, max_set_size)
        )
        for size in range(min(max_set_size, len(members)) + 1):
            for combo in itertools.combinations(members, size):
                yield frozenset(combo)
    elif isinstance(tau, RecordType):
        per_field = [
            list(
                _enumerate_values(
                    tau.field(label), oid_pool, atom_pool, max_set_size
                )
            )
            for label in tau.labels
        ]
        for combo in itertools.product(*per_field):
            yield dict(zip(tau.labels, combo))


def enumerate_instances(
    schema: Schema,
    max_oids: int = 1,
    atom_pool: Mapping[str, tuple[Value, ...]] | None = None,
    max_set_size: int = 2,
    limit: int | None = None,
) -> Iterator[Instance]:
    """Enumerate small instances of a schema (a bounded model finder).

    For every assignment of up to ``max_oids`` oids per class and every
    combination of values for oids and the entry point (atoms drawn
    from ``atom_pool``, sets capped at ``max_set_size``), yield the
    instance.  The count grows combinatorially — callers pass a
    ``limit``.  Instances are yielded validated.
    """
    if atom_pool is None:
        atom_pool = {"int": (0,), "string": ("s",)}
    class_names = sorted(schema.class_names)
    emitted = 0
    for counts in itertools.product(
        range(max_oids + 1), repeat=len(class_names)
    ):
        oid_pool = {
            name: tuple(Oid(f"{name}#{i}") for i in range(count))
            for name, count in zip(class_names, counts)
        }
        all_oids = [oid for pool in oid_pool.values() for oid in pool]
        value_choices = [
            list(
                _enumerate_values(
                    schema.body_of(
                        next(n for n in class_names if oid in oid_pool[n])
                    ),
                    oid_pool,
                    atom_pool,
                    max_set_size,
                )
            )
            for oid in all_oids
        ]
        entry_choices = list(
            _enumerate_values(schema.db_type, oid_pool, atom_pool, max_set_size)
        )
        for assignment in itertools.product(*value_choices):
            values = dict(zip(all_oids, assignment))
            for entry in entry_choices:
                instance = Instance(
                    schema,
                    oids={n: oid_pool[n] for n in class_names},
                    values=values,
                    entry=entry,
                )
                yield instance
                emitted += 1
                if limit is not None and emitted >= limit:
                    return
