"""Type ASTs and schemas for the models M+ and M (Section 3.2/3.3).

Types over a class set C::

    tau ::= b | C | {tau} | [l1: tau1, ..., ln: taun]        (M+)

    t   ::= b | C
    tau ::= t | [l1: t1, ..., ln: tn]                        (M)

A schema is ``Delta = (C, nu, DBtype)`` where ``nu`` maps every class
to a type that is neither atomic nor a bare class, and ``DBtype`` is
likewise a proper structural type (the type of the persistent entry
point).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import ModelRestrictionError, SchemaError
from repro.paths import Path

#: The distinguished edge label for set membership (the paper uses the
#: symbol for set membership as a binary relation).
MEMBERSHIP_LABEL = "member"

#: Atomic types available by default (the paper's examples use these).
DEFAULT_ATOMIC_TYPES = ("int", "string")


class Type:
    """Base class of the type AST.  Instances are immutable/hashable."""

    __slots__ = ()

    def is_atomic(self) -> bool:
        return isinstance(self, AtomicType)

    def is_class(self) -> bool:
        return isinstance(self, ClassRef)

    def is_set(self) -> bool:
        return isinstance(self, SetType)

    def is_record(self) -> bool:
        return isinstance(self, RecordType)

    def children(self) -> Iterator["Type"]:
        """Immediate component types."""
        return iter(())

    def walk(self) -> Iterator["Type"]:
        """This type and all structural components (not through class
        references — those are resolved by the schema)."""
        yield self
        for child in self.children():
            yield from child.walk()


class AtomicType(Type):
    """A base type such as ``int`` or ``string``."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        object.__setattr__(self, "name", name)

    def __setattr__(self, *args) -> None:  # immutability
        raise AttributeError("AtomicType is immutable")

    def __reduce__(self):
        # The immutability guard blocks pickle's default slot-state
        # restore; reconstruct through __init__ instead (the portfolio
        # ships schemas to pool workers).
        return (AtomicType, (self.name,))

    def __eq__(self, other):
        return isinstance(other, AtomicType) and other.name == self.name

    def __hash__(self):
        return hash(("atomic", self.name))

    def __repr__(self):
        return self.name


class ClassRef(Type):
    """A reference to a named class."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        object.__setattr__(self, "name", name)

    def __setattr__(self, *args) -> None:
        raise AttributeError("ClassRef is immutable")

    def __reduce__(self):
        return (ClassRef, (self.name,))

    def __eq__(self, other):
        return isinstance(other, ClassRef) and other.name == self.name

    def __hash__(self):
        return hash(("class", self.name))

    def __repr__(self):
        return self.name


class SetType(Type):
    """The set type ``{element}`` (M+ only)."""

    __slots__ = ("element",)

    def __init__(self, element: Type) -> None:
        if not isinstance(element, Type):
            raise SchemaError(f"set element must be a Type, got {element!r}")
        object.__setattr__(self, "element", element)

    def __setattr__(self, *args) -> None:
        raise AttributeError("SetType is immutable")

    def __reduce__(self):
        return (SetType, (self.element,))

    def children(self) -> Iterator[Type]:
        yield self.element

    def __eq__(self, other):
        return isinstance(other, SetType) and other.element == self.element

    def __hash__(self):
        return hash(("set", self.element))

    def __repr__(self):
        return "{" + repr(self.element) + "}"


class RecordType(Type):
    """The record type ``[l1: tau1, ..., ln: taun]``.

    Field order is preserved for display but irrelevant to equality
    (records are compared as label -> type maps, like the paper's
    value semantics).
    """

    __slots__ = ("fields", "_map")

    def __init__(self, fields: Mapping[str, Type] | Iterable[tuple[str, Type]]):
        if isinstance(fields, Mapping):
            items = tuple(fields.items())
        else:
            items = tuple(fields)
        seen: set[str] = set()
        for label, tau in items:
            Path.single(label)  # labels must be valid edge labels
            if label == MEMBERSHIP_LABEL:
                raise SchemaError(
                    f"record label {label!r} collides with the membership "
                    "relation"
                )
            if label in seen:
                raise SchemaError(f"duplicate record label {label!r}")
            if not isinstance(tau, Type):
                raise SchemaError(f"field {label!r} must map to a Type")
            seen.add(label)
        object.__setattr__(self, "fields", items)
        object.__setattr__(self, "_map", dict(items))

    def __setattr__(self, *args) -> None:
        raise AttributeError("RecordType is immutable")

    def __reduce__(self):
        return (RecordType, (self.fields,))

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(label for label, _ in self.fields)

    def field(self, label: str) -> Type:
        return self._map[label]

    def __contains__(self, label: str) -> bool:
        return label in self._map

    def children(self) -> Iterator[Type]:
        for _, tau in self.fields:
            yield tau

    def __eq__(self, other):
        return isinstance(other, RecordType) and other._map == self._map

    def __hash__(self):
        return hash(("record", frozenset(self._map.items())))

    def __repr__(self):
        inner = ", ".join(f"{label}: {tau!r}" for label, tau in self.fields)
        return f"[{inner}]"


def _is_m_component(tau: Type) -> bool:
    """An M record field: atomic or class only."""
    return tau.is_atomic() or tau.is_class()


class Schema:
    """A schema ``Delta = (C, nu, DBtype)`` of M+ (or M).

    >>> book = RecordType([("title", AtomicType("string")),
    ...                    ("author", SetType(ClassRef("Person")))])
    >>> person = RecordType([("name", AtomicType("string")),
    ...                      ("wrote", SetType(ClassRef("Book")))])
    >>> delta = Schema({"Book": book, "Person": person},
    ...                RecordType([("book", SetType(ClassRef("Book"))),
    ...                            ("person", SetType(ClassRef("Person")))]))
    >>> delta.is_m_schema()
    False
    """

    def __init__(
        self,
        classes: Mapping[str, Type],
        db_type: Type,
        atomic_types: Iterable[str] = DEFAULT_ATOMIC_TYPES,
    ) -> None:
        self._classes = dict(classes)
        self._db_type = db_type
        self._atomic_names = frozenset(atomic_types)
        self._validate()

    def _validate(self) -> None:
        if self._db_type.is_atomic() or self._db_type.is_class():
            raise SchemaError(
                "DBtype must be a set or record type (Section 3.2.1)"
            )
        for name, body in self._classes.items():
            if body.is_atomic() or body.is_class():
                raise SchemaError(
                    f"nu({name}) must be a set or record type, got {body!r}"
                )
        for tau in self.all_types():
            if tau.is_class() and tau.name not in self._classes:  # type: ignore[attr-defined]
                raise SchemaError(f"dangling class reference {tau!r}")
            if tau.is_atomic() and tau.name not in self._atomic_names:  # type: ignore[attr-defined]
                raise SchemaError(f"unknown atomic type {tau!r}")

    # -- accessors ----------------------------------------------------

    @property
    def classes(self) -> dict[str, Type]:
        """The class map nu (a copy)."""
        return dict(self._classes)

    @property
    def class_names(self) -> frozenset[str]:
        return frozenset(self._classes)

    @property
    def db_type(self) -> Type:
        return self._db_type

    @property
    def atomic_names(self) -> frozenset[str]:
        return self._atomic_names

    def body_of(self, name: str) -> Type:
        """nu(C) for a class name."""
        try:
            return self._classes[name]
        except KeyError as exc:
            raise SchemaError(f"unknown class {name!r}") from exc

    def resolve(self, tau: Type) -> Type:
        """Resolve a bare class reference to its body; other types pass
        through.  One level only (bodies cannot be bare classes)."""
        if isinstance(tau, ClassRef):
            return self.body_of(tau.name)
        return tau

    def all_types(self) -> Iterator[Type]:
        """Every type expression occurring in the schema."""
        yield from self._db_type.walk()
        for body in self._classes.values():
            yield from body.walk()

    # -- model restrictions --------------------------------------------

    def is_m_schema(self) -> bool:
        """Membership in the restricted model M (Section 3.3): no set
        types, and record fields hold only atomics/classes."""
        for tau in self.all_types():
            if tau.is_set():
                return False
            if tau.is_record():
                if not all(_is_m_component(f) for f in tau.children()):
                    return False
        # DBtype and class bodies must be records (tau ::= t | [l:t...],
        # and bodies/DBtype cannot be bare t).
        if not self._db_type.is_record():
            return False
        return all(body.is_record() for body in self._classes.values())

    def require_m(self) -> "Schema":
        """Raise unless this is an M schema; returns self for chaining."""
        if not self.is_m_schema():
            raise ModelRestrictionError(
                "schema uses set types or non-flat records and therefore "
                "is not a schema of the restricted model M"
            )
        return self

    def __repr__(self) -> str:
        classes = ", ".join(sorted(self._classes))
        return f"<Schema classes=[{classes}] db_type={self._db_type!r}>"
