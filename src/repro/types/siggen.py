"""From a schema to its signature and Paths(Delta) (Section 3.2.2).

A schema ``Delta`` determines:

* ``E(Delta)`` — the binary relation symbols: record labels reachable
  from DBtype plus the distinguished membership relation when a set
  type is reachable;
* ``T(Delta)`` — the unary relation symbols: one sort per reachable
  type (DBtype, classes, atomic types, set and record types);
* the *type graph* — a deterministic transition system on sorts, whose
  language from DBtype is exactly ``Paths(Delta)``, the set of label
  sequences realizable in some structure of ``U(Delta)``.

Because the type graph is deterministic, every path in
``Paths(Delta)`` has a well-defined *type*: the sort it lands on.  The
typed-M decider leans on this (Lemma 4.6: over M, every valid path
reaches exactly one node in every structure of ``U(Delta)``).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.automata.dfa import DFA
from repro.errors import PathNotInSchemaError
from repro.paths import Path
from repro.types.typesys import (
    MEMBERSHIP_LABEL,
    ClassRef,
    Schema,
    SetType,
    Type,
)


class SchemaSignature:
    """The derived signature ``sigma(Delta) = (r, E(Delta), T(Delta))``.

    States of the type graph are :class:`Type` values; class references
    are kept as states in their own right (so sorts line up with class
    names), and their transitions come from their bodies.
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._transitions: dict[tuple[Type, str], Type] = {}
        self._states: set[Type] = set()
        self._explore()

    def _successors(self, state: Type) -> Iterator[tuple[str, Type]]:
        body = self._schema.resolve(state)
        if isinstance(body, SetType):
            yield (MEMBERSHIP_LABEL, body.element)
        elif body.is_record():
            for label, tau in body.fields:  # type: ignore[attr-defined]
                yield (label, tau)
        # atomic types have no outgoing edges

    def _explore(self) -> None:
        start = self._schema.db_type
        stack = [start]
        self._states.add(start)
        while stack:
            state = stack.pop()
            for label, target in self._successors(state):
                self._transitions[(state, label)] = target
                if target not in self._states:
                    self._states.add(target)
                    stack.append(target)

    # -- signature components ---------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def root_type(self) -> Type:
        return self._schema.db_type

    @property
    def edge_labels(self) -> frozenset[str]:
        """E(Delta): the labels usable in paths over this schema."""
        return frozenset(label for (_, label) in self._transitions)

    @property
    def states(self) -> frozenset[Type]:
        """The reachable sorts (as Type values)."""
        return frozenset(self._states)

    def sort_name(self, state: Type) -> str:
        """The display name of a sort in T(Delta)."""
        if state == self._schema.db_type:
            return "DBtype"
        if isinstance(state, ClassRef):
            return state.name
        return repr(state)

    @property
    def type_names(self) -> frozenset[str]:
        """T(Delta) as display names."""
        return frozenset(self.sort_name(s) for s in self._states)

    # -- the Paths(Delta) automaton ------------------------------------------

    def transition(self, state: Type, label: str) -> Type | None:
        return self._transitions.get((state, label))

    def paths_dfa(self) -> DFA:
        """A DFA (all states accepting) whose language is Paths(Delta)."""
        dfa = DFA(initial=self.sort_name(self.root_type))
        for (src, label), dst in self._transitions.items():
            dfa.add_transition(self.sort_name(src), label, self.sort_name(dst))
        for state in self._states:
            dfa.add_final(self.sort_name(state))
        return dfa

    def paths_nfa(self) -> "NFA":
        """The Paths(Delta) automaton as an :class:`NFA` (all states
        accepting), ready for product constructions with query
        automata and the ``post*`` saturation engine."""
        from repro.automata.nfa import NFA

        nfa = NFA(initial=self.sort_name(self.root_type))
        for (src, label), dst in self._transitions.items():
            nfa.add_transition(
                self.sort_name(src), label, self.sort_name(dst)
            )
        for state in self._states:
            nfa.add_final(self.sort_name(state))
        return nfa

    def type_of_path(self, path: Path | str) -> Type | None:
        """The sort a valid path lands on; None when the path is not in
        Paths(Delta)."""
        path = Path.coerce(path)
        state = self.root_type
        for label in path:
            nxt = self._transitions.get((state, label))
            if nxt is None:
                return None
            state = nxt
        return state

    def is_valid_path(self, path: Path | str) -> bool:
        """Membership in Paths(Delta)."""
        return self.type_of_path(path) is not None

    def require_valid_path(self, path: Path | str) -> Type:
        """Type of a path, raising :class:`PathNotInSchemaError` when
        the path is not in Paths(Delta)."""
        path = Path.coerce(path)
        state = self.type_of_path(path)
        if state is None:
            raise PathNotInSchemaError(
                f"path {path} is not in Paths(Delta) for this schema"
            )
        return state

    def sample_paths(self, max_length: int) -> Iterator[Path]:
        """All members of Paths(Delta) up to a length bound, shortlex
        (workload generation for the typed benchmarks)."""
        frontier: list[tuple[tuple[str, ...], Type]] = [((), self.root_type)]
        yield Path.empty()
        for _ in range(max_length):
            nxt: list[tuple[tuple[str, ...], Type]] = []
            for word, state in frontier:
                for label in sorted(
                    lab for (st, lab) in self._transitions if st == state
                ):
                    target = self._transitions[(state, label)]
                    extended = word + (label,)
                    yield Path(extended)
                    nxt.append((extended, target))
            frontier = nxt

    def __repr__(self) -> str:
        return (
            f"<SchemaSignature sorts={len(self._states)} "
            f"labels={sorted(self.edge_labels)}>"
        )
