"""repro: path and type constraint reasoning for semistructured data.

A faithful, production-quality reproduction of

    Peter Buneman, Wenfei Fan, Scott Weinstein.
    "Interaction between Path and Type Constraints." PODS 1999.

The library provides the paper's data models (sigma-structure graphs;
the object-oriented models M and M+), the path constraint language P_c
with its fragments, every decidable implication problem as a working
decision procedure, sound semi-deciders and executable reductions for
the undecidable ones, and the constructions behind the paper's figures.

Quickstart::

    from repro import Graph, parse_constraints, check, implies_word

    g = Graph(root="r")
    b = g.add_edge("r", "book", g.fresh_node())
    p = g.add_edge(b, "author", g.fresh_node())
    g.add_edge("r", "person", p)

    sigma = parse_constraints("book.author => person")
    assert check(g, sigma[0]).holds
"""

from repro.errors import ReproError
from repro.truth import Trilean
from repro.paths import EPSILON, Path
from repro.graph import Graph, Signature, figure1_graph
from repro.constraints import (
    Direction,
    PathConstraint,
    backward,
    forward,
    parse_constraint,
    parse_constraints,
    word,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "Trilean",
    "Path",
    "EPSILON",
    "Graph",
    "Signature",
    "figure1_graph",
    "Direction",
    "PathConstraint",
    "forward",
    "backward",
    "word",
    "parse_constraint",
    "parse_constraints",
    "__version__",
]


def __getattr__(name: str):
    # Lazily surface the high-level API without importing every
    # subsystem at package import time.
    lazy = {
        "check": ("repro.checking", "check"),
        "check_all": ("repro.checking", "check_all"),
        "implies_word": ("repro.reasoning", "implies_word"),
        "implies_local_extent": ("repro.reasoning", "implies_local_extent"),
        "implies_typed_m": ("repro.reasoning", "implies_typed_m"),
        "solve": ("repro.reasoning", "solve"),
        "ImplicationProblem": ("repro.reasoning", "ImplicationProblem"),
        "Schema": ("repro.types", "Schema"),
    }
    if name in lazy:
        module_name, attr = lazy[name]
        import importlib

        module = importlib.import_module(module_name)
        return getattr(module, attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
