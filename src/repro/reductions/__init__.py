"""Executable reductions behind the paper's undecidability theorems.

Undecidability cannot be "run", but its *reductions* can, and the
paper's counter-model gadgets are concrete finite structures this
package constructs and verifies:

* :mod:`repro.reductions.monoid_to_pwk` — Theorem 4.3: the word
  problem for (finite) monoids encoded as P_w(K) implication on
  untyped data, with the Figure 2 counter-model builder (Lemma 4.5);
* :mod:`repro.reductions.local_extent_figure` — the Figure 3
  H-structure from the decidability proof of Theorem 5.1 (Lemma 5.3);
* :mod:`repro.reductions.monoid_to_mplus` — Theorem 5.2: the word
  problem encoded as local-extent implication over the M+ schema
  Delta_1, with the Figure 4 typed counter-model builder (Lemma 5.4).
"""

from repro.reductions.monoid_to_pwk import PwkEncoding, encode_pwk, figure2_structure
from repro.reductions.local_extent_figure import attach_prefix, figure3_structure
from repro.reductions.monoid_to_mplus import (
    MplusEncoding,
    encode_mplus,
    figure4_structure,
)

__all__ = [
    "PwkEncoding",
    "encode_pwk",
    "figure2_structure",
    "figure3_structure",
    "attach_prefix",
    "MplusEncoding",
    "encode_mplus",
    "figure4_structure",
]
