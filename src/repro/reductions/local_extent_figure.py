"""The structures of Lemma 5.3's proof (Figure 3 and the prefix wrap).

Two constructions from the decidability proof of Theorem 5.1:

* :func:`attach_prefix` — the first reduction step's model surgery:
  given a model ``G_1`` of the rho-stripped constraints, build ``G``
  by adding a fresh root and a fresh path spelling ``rho`` down to
  ``G_1``'s root; then ``G`` models the original constraints.
* :func:`figure3_structure` — the second step's gadget (Figure 3):
  from a finite model ``G`` of ``Sigma^2_K ^ not phi^2``, build ``H``
  with a new root ``r_H``, a K-self-loop on ``r_H`` and a K-edge to
  ``G``'s root.  ``H`` then models ``Sigma^1_K u Sigma^1_r ^ not
  phi^1`` — the step that shows the unbounded rest Sigma^1_r cannot
  interact (every node K-reachable from ``r_H`` is ``r_H`` itself or
  ``r_G``, and the ``K``-guard protects the bounded constraints).
"""

from __future__ import annotations

from repro.graph.structure import Graph, Node
from repro.paths import Path


def _import_into(target: Graph, source: Graph, tag: str) -> dict[Node, Node]:
    """Copy ``source``'s nodes/edges into ``target`` under fresh
    ``(tag, node)`` identifiers; returns the node mapping."""
    mapping: dict[Node, Node] = {}
    for node in source.nodes:
        mapping[node] = target.add_node((tag, node))
    for src, label, dst in source.edges():
        target.add_edge(mapping[src], label, mapping[dst])
    for node, sort in source.sorts.items():
        target.set_sort(mapping[node], sort)
    return mapping


def attach_prefix(graph: Graph, rho: Path | str) -> Graph:
    """A new structure with a fresh root and a fresh ``rho``-path down
    to (a copy of) ``graph``'s root.

    For the empty path this is just a tagged copy.
    """
    rho = Path.coerce(rho)
    out = Graph(root="r")
    mapping = _import_into(out, graph, "g")
    old_root = mapping[graph.root]
    if rho.is_empty():
        # Splice: the new root *is* the old root.
        out.merge_nodes("r", old_root)
    else:
        out.add_path("r", rho, dst=old_root)
    return out


def figure3_structure(graph: Graph, guard: str = "K") -> Graph:
    """The Figure 3 H-structure over a model ``G``.

    ``|H| = |G| u {r_H}`` and ``E_H = E_G u {K(r_H, r_H),
    K(r_H, r_G)}``.
    """
    out = Graph(root="rH")
    mapping = _import_into(out, graph, "g")
    out.add_edge("rH", guard, "rH")
    out.add_edge("rH", guard, mapping[graph.root])
    return out
