"""Theorem 5.2: the word problem reduced to *typed* local-extent
implication over the M+ schema Delta_1 (Section 5.2).

For the alphabet ``Gamma_0 = {l_1 .. l_m}``, the gadget schema is::

    C   -> [l_1: C, ..., l_m: C]
    C_s -> {C}
    C_l -> [a: C, b: C_s, K: C_l]
    DBtype = [l: C_l]

and the constraint set Sigma (prefix bounded by ``l`` and ``K``)::

    (1) l.K :: a               => b.member          (a's target is in the set)
    (2) l.K :: b.member.l_j    => b.member          (the set is closed)
    (3) l.b.member :: lambda_i => rho_i             (equations, inside the set)
    (4) l   :: ()              => K                 (forces o_K = o_l)

A test equation becomes ``phi = l.K :: a.alpha => a.beta``.  Over
untyped data the bounded part {(1), (2), phi} ignores (3) and (4)
entirely (Lemma 5.3); over Delta_1 the type constraint forces the
Figure 4 shape, (3) and (4) *do* interact, and the implication holds
iff ``Gamma |= (alpha, beta)`` — hence undecidability (Lemma 5.4).

:func:`figure4_structure` builds the typed counter-model from a finite
monoid witness, with sorts assigned, so the type checker can confirm
membership in ``U_f(Delta_1)`` mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.ast import PathConstraint, forward
from repro.graph.structure import Graph
from repro.monoids.finite import Homomorphism
from repro.monoids.presentation import MonoidPresentation
from repro.paths import Path
from repro.types.examples import delta1_schema
from repro.types.typesys import MEMBERSHIP_LABEL, Schema


@dataclass(frozen=True)
class MplusEncoding:
    """The typed constraint-side image of a monoid presentation."""

    presentation: MonoidPresentation
    schema: Schema
    sigma: tuple[PathConstraint, ...]
    rho: Path
    guard: str

    def test_constraint(self, alpha: Path | str, beta: Path | str) -> PathConstraint:
        """``phi_(alpha,beta) = l.K :: a.alpha => a.beta``."""
        alpha = Path.coerce(alpha)
        beta = Path.coerce(beta)
        return forward(
            self.rho.append(self.guard),
            Path.single("a").concat(alpha),
            Path.single("a").concat(beta),
        )

    def verify_countermodel(
        self, graph: Graph, alpha: Path | str, beta: Path | str
    ) -> bool:
        """Is ``graph`` a member of U_f(Delta_1) modelling Sigma and
        violating the test constraint?"""
        from repro.checking.engine import satisfies_all
        from repro.checking.satisfaction import violations
        from repro.types.typecheck import check_type_constraint

        if not check_type_constraint(self.schema, graph).ok:
            return False
        if not satisfies_all(graph, self.sigma):
            return False
        return bool(
            violations(graph, self.test_constraint(alpha, beta), limit=1)
        )


def encode_mplus(presentation: MonoidPresentation) -> MplusEncoding:
    """Build the Section 5.2 encoding of a presentation."""
    schema = delta1_schema(presentation.alphabet)
    el = Path.single("l")
    lk = el.append("K")
    b_member = Path.parse(f"b.{MEMBERSHIP_LABEL}")
    sigma: list[PathConstraint] = [
        forward(lk, Path.single("a"), b_member),
    ]
    for letter in presentation.alphabet:
        sigma.append(forward(lk, b_member.append(letter), b_member))
    for lam, rho in presentation.equations:
        sigma.append(forward(el.concat(b_member), lam, rho))
    sigma.append(forward(el, Path.empty(), Path.single("K")))
    return MplusEncoding(
        presentation=presentation,
        schema=schema,
        sigma=tuple(sigma),
        rho=el,
        guard="K",
    )


def figure4_structure(
    presentation: MonoidPresentation, hom: Homomorphism
) -> Graph:
    """The Figure 4 typed counter-model.

    The root (DBtype) points via ``l`` to the C_l node ``o_l``, which
    carries the K-self-loop forced by constraint (4), an ``a``-edge to
    the identity's C node, and a ``b``-edge to the C_s node whose
    members are all image-submonoid elements; C nodes form the Cayley
    graph of the image under right multiplication.
    """
    if not hom.respects(presentation):
        raise ValueError(
            "the homomorphism does not respect the presentation's equations"
        )
    monoid = hom.monoid
    image = sorted(hom.image_submonoid())

    graph = Graph(root="r")
    graph.set_sort("r", "DBtype")
    graph.add_edge("r", "l", "ol")
    graph.set_sort("ol", "Cl")
    graph.add_edge("ol", "K", "ol")
    graph.add_edge("ol", "a", ("m", monoid.identity))
    graph.add_edge("ol", "b", "os")
    graph.set_sort("os", "Cs")
    for element in image:
        node = ("m", element)
        graph.add_node(node, sort="C")
        graph.add_edge("os", MEMBERSHIP_LABEL, node)
    for element in image:
        for letter in presentation.alphabet:
            target = monoid.multiply(element, hom.images[letter])
            graph.add_edge(("m", element), letter, ("m", target))
    return graph
