"""Theorem 4.3: the word problem reduced to P_w(K) implication.

Given an alphabet ``Gamma_0 = {l_1 .. l_m}`` and equations
``Gamma = {(lambda_i, rho_i)}``, the encoding over the signature
``(r, Gamma_0 u {K})`` is::

    ()        => K                      (the root is K-tagged)
    K.l_j     => K              for every letter l_j
    K :: lambda_i => rho_i      for every equation
    K :: rho_i    => lambda_i

and a test equation ``(alpha, beta)`` becomes the pair of word
constraints ``alpha => beta`` and ``beta => alpha``.  Lemma 4.5:
``Gamma (finitely) implies (alpha, beta)`` iff the encoding
(finitely) implies both test constraints.

The "if" direction's witness is the Figure 2 structure: from a finite
monoid M and homomorphism h respecting Gamma with ``h(alpha) !=
h(beta)``, take the image submonoid as nodes, K-edges from the root
(the identity) to every node, and ``l_j``-edges following right
multiplication.  :func:`figure2_structure` builds it;
:meth:`PwkEncoding.verify_countermodel` checks it really models the
encoding while violating a test constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.ast import PathConstraint, forward, word
from repro.graph.structure import Graph
from repro.monoids.finite import Homomorphism
from repro.monoids.presentation import MonoidPresentation
from repro.paths import Path


@dataclass(frozen=True)
class PwkEncoding:
    """The constraint-side image of a monoid presentation."""

    presentation: MonoidPresentation
    guard: str
    sigma: tuple[PathConstraint, ...]

    def test_constraints(
        self, alpha: Path | str, beta: Path | str
    ) -> tuple[PathConstraint, PathConstraint]:
        """The pair ``(alpha => beta, beta => alpha)`` for a test
        equation."""
        alpha = Path.coerce(alpha)
        beta = Path.coerce(beta)
        return (word(alpha, beta), word(beta, alpha))

    def verify_countermodel(
        self, graph: Graph, alpha: Path | str, beta: Path | str
    ) -> bool:
        """Does ``graph`` model Sigma while violating a test
        constraint (i.e. witness non-implication)?"""
        from repro.checking.engine import satisfies_all
        from repro.checking.satisfaction import violations

        if not satisfies_all(graph, self.sigma):
            return False
        phi_ab, phi_ba = self.test_constraints(alpha, beta)
        return bool(
            violations(graph, phi_ab, limit=1)
            or violations(graph, phi_ba, limit=1)
        )


def encode_pwk(
    presentation: MonoidPresentation, guard: str = "K"
) -> PwkEncoding:
    """Build the Theorem 4.3 encoding of a presentation.

    The guard label must be outside the presentation's alphabet.
    """
    if guard in presentation.alphabet:
        raise ValueError(
            f"the guard {guard!r} must not occur in the alphabet"
        )
    guard_path = Path.single(guard)
    sigma: list[PathConstraint] = [word(Path.empty(), guard_path)]
    for letter in presentation.alphabet:
        sigma.append(word(guard_path.append(letter), guard_path))
    for lam, rho in presentation.equations:
        sigma.append(forward(guard_path, lam, rho))
        sigma.append(forward(guard_path, rho, lam))
    return PwkEncoding(
        presentation=presentation, guard=guard, sigma=tuple(sigma)
    )


def figure2_structure(
    presentation: MonoidPresentation, hom: Homomorphism
) -> Graph:
    """The Figure 2 counter-model.

    Nodes are the elements of ``h(Gamma_0*)`` (the image submonoid);
    the root is the identity's node; every node receives a K-edge from
    the root; each node ``m`` has an ``l_j``-edge to ``m . h(l_j)``.

    The caller supplies a homomorphism *respecting* the presentation
    (checked); the structure then models the encoding, and violates
    the test pair for exactly the words the homomorphism separates.
    """
    if not hom.respects(presentation):
        raise ValueError(
            "the homomorphism does not respect the presentation's equations"
        )
    monoid = hom.monoid
    image = sorted(hom.image_submonoid())
    graph = Graph(root=("m", monoid.identity))
    for element in image:
        graph.add_node(("m", element))
    for element in image:
        graph.add_edge(graph.root, "K", ("m", element))
        for letter in presentation.alphabet:
            target = monoid.multiply(element, hom.images[letter])
            graph.add_edge(("m", element), letter, ("m", target))
    return graph
