"""Graph builders: the paper's running example and synthetic workloads.

``figure1_graph`` reconstructs Figure 1 of the paper (the Penn-bib
bibliography document).  ``from_nested_dict`` turns a nested-dict
document (an XML-like tree) into a graph.  ``line_graph`` and
``random_graph`` generate deterministic synthetic workloads for the
benchmarks — all randomness flows through an explicit seed.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence

from repro.graph.structure import Graph, Node


def from_nested_dict(document: Mapping, root: Node = "r") -> Graph:
    """Build a graph from a nested-dict document.

    Each dict is a node; each key is an edge label; each value may be a
    dict (subtree), a list (several edges with the same label), or a
    scalar (a leaf node labeled by its value).  Shared subtrees are not
    detected — the result is a tree, like a parsed XML document.

    >>> g = from_nested_dict({"book": {"title": "Found. of DBs"}})
    >>> len(g.eval_path("book.title"))
    1
    """
    graph = Graph(root=root)

    def build(node: Node, value) -> None:
        if isinstance(value, Mapping):
            for label, child in value.items():
                attach(node, label, child)
        else:
            graph.set_sort(node, f"value:{value!r}")

    def attach(node: Node, label: str, child) -> None:
        if isinstance(child, Sequence) and not isinstance(child, (str, bytes)):
            for element in child:
                attach(node, label, element)
        else:
            target = graph.add_edge(node, label, graph.fresh_node())
            build(target, child)

    build(root, document)
    return graph


def figure1_graph() -> Graph:
    """The XML document of Figure 1 (the Penn-bib database).

    Three books, two persons; ``author``/``wrote`` inverse edges; a
    ``ref`` edge between books; string/int leaves for ``title``,
    ``ISBN``, ``year``, ``name``, ``SSN``, ``age``.  Node identifiers
    are human-readable strings so tests and examples can refer to them.
    """
    g = Graph(root="r")
    books = ["book1", "book2", "book3"]
    persons = ["person1", "person2"]
    for b in books:
        g.add_edge("r", "book", b)
    for p in persons:
        g.add_edge("r", "person", p)

    # Authorship, mirrored by the inverse `wrote` edges (Figure 1 shows
    # four author/wrote pairs).
    authorship = [
        ("book1", "person1"),
        ("book2", "person1"),
        ("book2", "person2"),
        ("book3", "person2"),
    ]
    for book, person in authorship:
        g.add_edge(book, "author", person)
        g.add_edge(person, "wrote", book)

    # A citation between books.
    g.add_edge("book1", "ref", "book2")

    # Scalar attributes.
    for b in books:
        g.add_edge(b, "title", f"{b}.title")
        g.add_edge(b, "ISBN", f"{b}.isbn")
    g.add_edge("book1", "year", "book1.year")
    for p in persons:
        g.add_edge(p, "name", f"{p}.name")
        g.add_edge(p, "SSN", f"{p}.ssn")
    g.add_edge("person1", "age", "person1.age")
    return g


def penn_bib_with_locals() -> Graph:
    """Penn-bib extended with MIT and Warner local databases (Section 1).

    The root gains ``MIT`` and ``Warner`` edges leading to the roots of
    two smaller bibliography graphs, each internally satisfying the
    extent and inverse constraints.
    """
    g = figure1_graph()

    def add_local(prefix: str, label: str) -> None:
        local_root = f"{prefix}-root"
        g.add_edge("r", label, local_root)
        book = f"{prefix}-book1"
        person = f"{prefix}-person1"
        g.add_edge(local_root, "book", book)
        g.add_edge(local_root, "person", person)
        g.add_edge(book, "author", person)
        g.add_edge(person, "wrote", book)
        g.add_edge(book, "title", f"{book}.title")
        g.add_edge(person, "name", f"{person}.name")

    add_local("mit", "MIT")
    add_local("warner", "Warner")
    return g


def line_graph(labels: Sequence[str]) -> Graph:
    """A single path ``r -l1-> n1 -l2-> ... -lk-> nk``."""
    g = Graph(root="r")
    g.add_path("r", list(labels) and ".".join(labels) or "")
    return g


def random_graph(
    node_count: int,
    labels: Sequence[str],
    edge_probability: float = 0.2,
    seed: int = 0,
    ensure_connected: bool = True,
) -> Graph:
    """A random rooted graph with ``node_count`` nodes.

    Edges are sampled independently per (src, label, dst) with the
    given probability.  With ``ensure_connected`` every node is first
    attached to a uniformly random earlier node, so the whole graph is
    reachable from the root (constraint checking is only about the
    reachable part, per the ``rho(r, x)`` guards).
    """
    if node_count < 1:
        raise ValueError("need at least the root node")
    rng = random.Random(seed)
    labels = list(labels)
    g = Graph(root=0, nodes=range(node_count))
    if ensure_connected:
        for node in range(1, node_count):
            parent = rng.randrange(node)
            g.add_edge(parent, rng.choice(labels), node)
    for src in range(node_count):
        for label in labels:
            for dst in range(node_count):
                if rng.random() < edge_probability:
                    g.add_edge(src, label, dst)
    return g


def scaled_bibliography(books: int, persons: int, seed: int = 0) -> Graph:
    """A Penn-bib shaped graph with many books/persons (bench workload).

    Every book gets 1-3 authors; author/wrote edges are kept inverse;
    10% of books reference another book.
    """
    rng = random.Random(seed)
    g = Graph(root="r")
    book_ids = [f"b{i}" for i in range(books)]
    person_ids = [f"p{i}" for i in range(persons)]
    for b in book_ids:
        g.add_edge("r", "book", b)
        g.add_edge(b, "title", f"{b}.title")
        g.add_edge(b, "ISBN", f"{b}.isbn")
    for p in person_ids:
        g.add_edge("r", "person", p)
        g.add_edge(p, "name", f"{p}.name")
        g.add_edge(p, "SSN", f"{p}.ssn")
    for b in book_ids:
        for p in rng.sample(person_ids, k=min(len(person_ids), rng.randint(1, 3))):
            g.add_edge(b, "author", p)
            g.add_edge(p, "wrote", b)
        if rng.random() < 0.1:
            g.add_edge(b, "ref", rng.choice(book_ids))
    return g
