"""Rooted edge-labeled directed graphs (sigma-structures).

The paper models semistructured data as a rooted, edge-labeled,
directed graph — formally a first-order structure over a relational
signature ``sigma = (r, E)`` with a constant ``r`` (the root) and a
finite set ``E`` of binary relation symbols (the edge labels).  This
package provides:

* :class:`~repro.graph.signature.Signature` — the vocabulary;
* :class:`~repro.graph.structure.Graph` — a mutable sigma-structure
  with path evaluation and reachability queries;
* builders for the paper's running examples and synthetic workloads;
* JSON-style serialization and DOT export.
"""

from repro.graph.signature import Signature
from repro.graph.structure import Graph
from repro.graph.cache import CacheStats, PathCache
from repro.graph.builders import (
    figure1_graph,
    from_nested_dict,
    line_graph,
    random_graph,
)

__all__ = [
    "Signature",
    "Graph",
    "CacheStats",
    "PathCache",
    "figure1_graph",
    "from_nested_dict",
    "line_graph",
    "random_graph",
]
