"""Generation-stamped memoization of path images.

Every procedure in the library — constraint checking (Definition 2.1),
the chase semi-decider, the incremental integrity workload — bottoms
out in :meth:`Graph.eval_path` and friends, and the saturation loops
re-request the *same* images many times between mutations.
:class:`PathCache` memoizes those images with an LRU bound, keyed on
``(kind, path, node, generation)`` where ``generation`` is the owning
graph's monotone mutation counter: a mutation bumps the generation, so
every stale entry becomes unreachable at lookup time and the whole
store is purged lazily on the next request.  Correctness therefore
never depends on mutators notifying the cache.

``maxsize=0`` disables storage entirely while still counting requests
as misses — a pass-through evaluator the benchmarks use as the
uncached baseline (every miss is one raw adjacency-dict traversal).

The cache exposes the same evaluation surface as :class:`Graph`
(``eval_path``, ``eval_path_from_set``, ``eval_path_backward``,
``satisfies_path``), so hot consumers can route reads through
``graph.path_cache`` without touching any other call site.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.paths import Path

if TYPE_CHECKING:
    from repro.graph.structure import Graph, Node

#: Default LRU bound; large enough for the chase/incremental hot sets,
#: small enough that a long saturation run stays memory-bounded.
DEFAULT_MAXSIZE = 4096


@dataclass
class CacheStats:
    """Observability counters for one :class:`PathCache`.

    ``misses`` equals the number of raw graph traversals performed —
    the quantity the benchmarks assert shrinks under caching.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "requests": self.requests,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Store:
    """LRU store; split out so stats survive a clear()."""

    entries: OrderedDict = field(default_factory=OrderedDict)
    generation: int = -1


class PathCache:
    """Memoizes the path images of one :class:`Graph`.

    >>> from repro.graph import Graph
    >>> g = Graph(root="r")
    >>> _ = g.add_edge("r", "a", g.fresh_node())
    >>> cache = g.path_cache
    >>> cache.eval_path("a") == cache.eval_path("a")  # second is a hit
    True
    >>> cache.stats.hits, cache.stats.misses
    (1, 1)
    >>> _ = g.add_edge("r", "a", g.fresh_node())  # bumps the generation
    >>> sorted(cache.eval_path("a"))  # not served stale
    [0, 1]
    """

    __slots__ = ("_graph", "_maxsize", "_store", "_stats")

    def __init__(self, graph: "Graph", maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize}")
        self._graph = graph
        self._maxsize = maxsize
        self._store = _Store()
        self._stats = CacheStats()

    # -- introspection --------------------------------------------------

    @property
    def graph(self) -> "Graph":
        return self._graph

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def stats(self) -> CacheStats:
        return self._stats

    def cache_stats(self) -> dict[str, float]:
        """The counters as a plain dict (observability hook)."""
        return self._stats.as_dict()

    def __len__(self) -> int:
        return len(self._store.entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._store.entries.clear()

    # -- the memoized lookup --------------------------------------------

    def _get(self, kind: str, path: Path, node: object):
        graph = self._graph
        generation = graph.generation
        store = self._store
        if store.generation != generation:
            # Lazy purge: a mutation happened since the last request,
            # so every stored image is (potentially) stale.
            if store.entries:
                self._stats.invalidations += len(store.entries)
                store.entries.clear()
            store.generation = generation
        if self._maxsize == 0:
            self._stats.misses += 1
            return None
        key = (kind, path, node, generation)
        entries = store.entries
        try:
            value = entries[key]
        except KeyError:
            self._stats.misses += 1
            return None
        entries.move_to_end(key)
        self._stats.hits += 1
        return value

    def _put(self, kind: str, path: Path, node: object, value) -> None:
        if self._maxsize == 0:
            return
        entries = self._store.entries
        entries[(kind, path, node, self._store.generation)] = value
        while len(entries) > self._maxsize:
            entries.popitem(last=False)
            self._stats.evictions += 1

    # -- the Graph evaluation surface -----------------------------------

    def eval_path(
        self, path: "Path | str", start: "Node | None" = None
    ) -> frozenset:
        """Memoized :meth:`Graph.eval_path`."""
        path = Path.coerce(path)
        start = self._graph.root if start is None else start
        value = self._get("fwd", path, start)
        if value is None:
            value = self._graph.eval_path(path, start=start)
            self._put("fwd", path, start, value)
        return value

    def eval_path_from_set(
        self, path: "Path | str", starts: Iterable["Node"]
    ) -> frozenset:
        """Memoized :meth:`Graph.eval_path_from_set`."""
        path = Path.coerce(path)
        starts = frozenset(starts)
        value = self._get("set", path, starts)
        if value is None:
            value = self._graph.eval_path_from_set(path, starts)
            self._put("set", path, starts, value)
        return value

    def eval_path_backward(self, path: "Path | str", end: "Node") -> frozenset:
        """Memoized :meth:`Graph.eval_path_backward`."""
        path = Path.coerce(path)
        value = self._get("bwd", path, end)
        if value is None:
            value = self._graph.eval_path_backward(path, end)
            self._put("bwd", path, end, value)
        return value

    def satisfies_path(self, path: "Path | str", src: "Node", dst: "Node") -> bool:
        """Does ``path(src, dst)`` hold?  Membership in the memoized
        forward image, so repeated probes from one source are one
        traversal."""
        return dst in self.eval_path(path, start=src)

    def __repr__(self) -> str:
        stats = self._stats
        return (
            f"<PathCache entries={len(self)} maxsize={self._maxsize} "
            f"hits={stats.hits} misses={stats.misses}>"
        )
