"""Mutable sigma-structures: rooted, edge-labeled, directed graphs.

:class:`Graph` is the data substrate for everything else in the
library: path constraints are *checked* against graphs, the chase
*mutates* graphs, the reductions *construct* graphs, and typed
instances *abstract* to graphs (Lemma 3.1).

Design notes
------------
* Nodes are arbitrary hashable identifiers (ints and strings in
  practice).  Fresh nodes come from :meth:`Graph.fresh_node`, which
  never reissues an integer identifier the graph (or any graph it was
  copied from) has ever used — the chase relies on merged-away nodes
  staying dead.
* Edges are triples ``(src, label, dst)``; parallel edges with the same
  label are impossible (the relations are sets), parallel edges with
  different labels are fine.
* The adjacency representation is a two-level dict,
  ``src -> label -> set(dst)``, plus a mirrored reverse index, so both
  forward and backward path evaluation are linear in edges touched.
* A graph may carry an optional *sort assignment* mapping nodes to
  unary-relation names — this is how the typed abstraction of
  Section 3.2.2 records the ``T(Delta)`` relations.
* Every mutation bumps a monotone :attr:`Graph.generation` counter.
  The attached :class:`~repro.graph.cache.PathCache` (lazily created
  via :attr:`Graph.path_cache`) keys memoized path images on it, so
  cached images are invalidated exactly when the graph changes.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import TYPE_CHECKING

from repro.errors import GraphError, UnknownNodeError
from repro.graph.signature import Signature
from repro.paths import Path

if TYPE_CHECKING:
    from repro.graph.cache import CacheStats, PathCache

Node = Hashable


class Graph:
    """A rooted edge-labeled directed graph (a sigma-structure).

    >>> g = Graph(root="r")
    >>> b = g.add_edge("r", "book", g.fresh_node())
    >>> p = g.add_edge("r", "person", g.fresh_node())
    >>> _ = g.add_edge(b, "author", p)
    >>> sorted(g.eval_path("book.author"))  # nodes reached from the root
    [1]
    """

    #: Default LRU bound for the attached path cache.
    DEFAULT_CACHE_MAXSIZE = 4096

    def __init__(self, root: Node = "r", nodes: Iterable[Node] = ()) -> None:
        self._succ: dict[Node, dict[str, set[Node]]] = {}
        self._pred: dict[Node, dict[str, set[Node]]] = {}
        self._sorts: dict[Node, str] = {}
        self._next_fresh = 0
        self._generation = 0
        self._cache: PathCache | None = None
        self._cache_maxsize = self.DEFAULT_CACHE_MAXSIZE
        self._root = root
        self._ensure_node(root)
        for node in nodes:
            self._ensure_node(node)

    # -- generations and the path cache --------------------------------

    @property
    def generation(self) -> int:
        """Monotone mutation counter.

        Bumped by every mutator (``add_node``, ``add_edge``,
        ``remove_edge``, ``add_path``, ``merge_nodes``, ``set_sort``);
        derived graphs (``copy``/``rerooted``/``quotient``) carry it
        forward.  Two equal generations on the same graph guarantee
        identical path images, which is the cache-validity contract of
        :class:`~repro.graph.cache.PathCache`.
        """
        return self._generation

    def _touch(self) -> None:
        self._generation += 1

    @property
    def path_cache(self) -> "PathCache":
        """The attached memoizer for path evaluation (lazily created)."""
        if self._cache is None:
            from repro.graph.cache import PathCache

            self._cache = PathCache(self, maxsize=self._cache_maxsize)
        return self._cache

    def configure_path_cache(self, maxsize: int) -> "PathCache":
        """Replace the attached cache with one bounded at ``maxsize``.

        ``maxsize=0`` yields a pass-through cache that only counts
        evaluations — the uncached baseline the benchmarks compare
        against.  The setting is inherited by ``copy``/``rerooted``/
        ``quotient`` so a whole graph lineage can be (un)cached.
        """
        from repro.graph.cache import PathCache

        self._cache_maxsize = maxsize
        self._cache = PathCache(self, maxsize=maxsize)
        return self._cache

    def cache_stats(self) -> "CacheStats":
        """Hit/miss/eviction counters of the attached path cache."""
        return self.path_cache.stats

    # -- node management ----------------------------------------------

    @property
    def root(self) -> Node:
        """The distinguished root node (the constant ``r``)."""
        return self._root

    def _ensure_node(self, node: Node) -> Node:
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}
            # Keep the fresh-node watermark above every integer id ever
            # present, so fresh_node() cannot resurrect a node that a
            # later merge_nodes()/quotient() removed.
            if type(node) is int and node >= self._next_fresh:
                self._next_fresh = node + 1
            self._touch()
        return node

    def add_node(self, node: Node | None = None, sort: str | None = None) -> Node:
        """Add a node (creating a fresh identifier if none is given).

        ``sort`` optionally records a unary relation (type) for the
        node, as used by the typed abstraction of Section 3.2.2.
        """
        if node is None:
            node = self.fresh_node()
        self._ensure_node(node)
        if sort is not None:
            self._sorts[node] = sort
            self._touch()
        return node

    def fresh_node(self) -> Node:
        """A node identifier the graph has never used.

        The watermark only moves forward and survives ``copy()`` /
        ``rerooted()`` / ``quotient()``, so an id deleted by
        ``merge_nodes`` is never reissued — chase node maps stay
        injective on live nodes.
        """
        while True:
            candidate = self._next_fresh
            self._next_fresh += 1
            if candidate not in self._succ:
                return candidate

    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def _require_node(self, node: Node) -> Node:
        if node not in self._succ:
            raise UnknownNodeError(node)
        return node

    @property
    def nodes(self) -> frozenset[Node]:
        return frozenset(self._succ)

    def node_count(self) -> int:
        return len(self._succ)

    # -- sorts (unary relations / types) -------------------------------

    def set_sort(self, node: Node, sort: str) -> None:
        """Assign the unary relation (type name) of ``node``."""
        self._require_node(node)
        self._sorts[node] = sort
        self._touch()

    def sort_of(self, node: Node) -> str | None:
        """The unary relation of ``node``, or None if unsorted."""
        self._require_node(node)
        return self._sorts.get(node)

    def nodes_of_sort(self, sort: str) -> frozenset[Node]:
        return frozenset(n for n, s in self._sorts.items() if s == sort)

    @property
    def sorts(self) -> dict[Node, str]:
        """A copy of the node -> sort assignment."""
        return dict(self._sorts)

    # -- edge management -----------------------------------------------

    def add_edge(self, src: Node, label: str, dst: Node) -> Node:
        """Add ``label(src, dst)``; creates missing endpoints.

        Returns ``dst`` so construction code can chain naturally.
        """
        Path.single(label)  # validate the label
        self._ensure_node(src)
        self._ensure_node(dst)
        self._succ[src].setdefault(label, set()).add(dst)
        self._pred[dst].setdefault(label, set()).add(src)
        self._touch()
        return dst

    def add_path(self, src: Node, path: Path | str, dst: Node | None = None) -> Node:
        """Add a fresh chain of edges spelling ``path`` from ``src``.

        Intermediate nodes are fresh.  If ``dst`` is given, the *last*
        edge targets it (the shape the chase needs); otherwise the final
        node is fresh too.  For the empty path, ``dst`` must be ``src``
        or ``None``; returns the endpoint.
        """
        path = Path.coerce(path)
        self._require_node(src)
        if path.is_empty():
            if dst is not None and dst != src:
                raise GraphError(
                    "cannot add an empty path between two distinct nodes"
                )
            return src
        current = src
        for label in path.labels[:-1]:
            current = self.add_edge(current, label, self.fresh_node())
        if dst is None:
            dst = self.fresh_node()
        return self.add_edge(current, path.last(), dst)

    def remove_edge(self, src: Node, label: str, dst: Node) -> None:
        try:
            self._succ[src][label].remove(dst)
            self._pred[dst][label].remove(src)
        except KeyError as exc:
            raise GraphError(f"edge {label}({src!r}, {dst!r}) not present") from exc
        if not self._succ[src][label]:
            del self._succ[src][label]
        if not self._pred[dst][label]:
            del self._pred[dst][label]
        self._touch()

    def has_edge(self, src: Node, label: str, dst: Node) -> bool:
        return dst in self._succ.get(src, {}).get(label, ())

    def edges(self) -> Iterator[tuple[Node, str, Node]]:
        """Iterate all edges as ``(src, label, dst)`` triples."""
        for src, by_label in self._succ.items():
            for label, dsts in by_label.items():
                for dst in dsts:
                    yield (src, label, dst)

    def edge_count(self) -> int:
        return sum(
            len(dsts) for by_label in self._succ.values() for dsts in by_label.values()
        )

    def labels(self) -> frozenset[str]:
        """The set of labels actually used by some edge."""
        out: set[str] = set()
        for by_label in self._succ.values():
            out.update(label for label, dststs in by_label.items() if dststs)
        return frozenset(out)

    def signature(self, extra_labels: Iterable[str] = ()) -> Signature:
        """The smallest signature this graph is a structure of."""
        return Signature(self.labels() | set(extra_labels))

    # -- navigation -----------------------------------------------------

    def successors(self, node: Node, label: str) -> frozenset[Node]:
        """All ``y`` with ``label(node, y)``."""
        self._require_node(node)
        return frozenset(self._succ[node].get(label, ()))

    def predecessors(self, node: Node, label: str) -> frozenset[Node]:
        """All ``x`` with ``label(x, node)``."""
        self._require_node(node)
        return frozenset(self._pred[node].get(label, ()))

    def out_labels(self, node: Node) -> frozenset[str]:
        self._require_node(node)
        return frozenset(
            label for label, dsts in self._succ[node].items() if dsts
        )

    def out_degree(self, node: Node) -> int:
        """Total number of outgoing edges (over all labels)."""
        self._require_node(node)
        return sum(len(dsts) for dsts in self._succ[node].values())

    def out_edges(self, node: Node) -> Iterator[tuple[str, Node]]:
        self._require_node(node)
        for label, dsts in self._succ[node].items():
            for dst in dsts:
                yield (label, dst)

    # -- path evaluation -------------------------------------------------

    def eval_path(
        self, path: Path | str, start: Node | None = None
    ) -> frozenset[Node]:
        """The set ``{ y : path(start, y) }``; ``start`` defaults to the
        root, matching the paper's ``rho(r, x)`` idiom."""
        path = Path.coerce(path)
        start = self._root if start is None else self._require_node(start)
        frontier = {start}
        for label in path:
            nxt: set[Node] = set()
            for node in frontier:
                nxt |= self._succ[node].get(label, set())
            if not nxt:
                return frozenset()
            frontier = nxt
        return frozenset(frontier)

    def eval_path_from_set(
        self, path: Path | str, starts: Iterable[Node]
    ) -> frozenset[Node]:
        """Image of a node set under a path."""
        path = Path.coerce(path)
        frontier = set(starts)
        for label in path:
            nxt: set[Node] = set()
            for node in frontier:
                nxt |= self._succ.get(node, {}).get(label, set())
            frontier = nxt
            if not frontier:
                break
        return frozenset(frontier)

    def eval_path_backward(
        self, path: Path | str, end: Node
    ) -> frozenset[Node]:
        """The set ``{ x : path(x, end) }``."""
        path = Path.coerce(path)
        self._require_node(end)
        frontier = {end}
        for label in reversed(path.labels):
            prv: set[Node] = set()
            for node in frontier:
                prv |= self._pred[node].get(label, set())
            if not prv:
                return frozenset()
            frontier = prv
        return frozenset(frontier)

    def satisfies_path(
        self, path: Path | str, src: Node, dst: Node
    ) -> bool:
        """Does ``path(src, dst)`` hold?"""
        return dst in self.eval_path(path, start=src)

    def reachable(self, start: Node | None = None) -> frozenset[Node]:
        """All nodes reachable from ``start`` (default: root) by any
        label sequence, including ``start`` itself."""
        start = self._root if start is None else self._require_node(start)
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for dsts in self._succ[node].values():
                for dst in dsts:
                    if dst not in seen:
                        seen.add(dst)
                        stack.append(dst)
        return frozenset(seen)

    # -- structural operations ---------------------------------------------

    def _carry_state_to(self, out: "Graph") -> "Graph":
        """Propagate fresh-counter and cache settings to a derived
        graph.

        The fresh-node watermark must survive derivation: resetting it
        would let ``fresh_node`` on the copy reissue an id that a merge
        deleted, resurrecting a dead node and corrupting any external
        node map (the chase's ``resolve`` chains, notably).
        """
        out._next_fresh = max(out._next_fresh, self._next_fresh)
        out._cache_maxsize = self._cache_maxsize
        return out

    def copy(self) -> "Graph":
        """A structure-preserving deep copy (shares node identifiers)."""
        out = Graph(root=self._root)
        for node in self._succ:
            out._ensure_node(node)
        for src, label, dst in self.edges():
            out.add_edge(src, label, dst)
        out._sorts = dict(self._sorts)
        return self._carry_state_to(out)

    def rerooted(self, new_root: Node) -> "Graph":
        """The same graph with a different distinguished root."""
        self._require_node(new_root)
        out = Graph(root=new_root)
        for node in self._succ:
            out._ensure_node(node)
        for src, label, dst in self.edges():
            out.add_edge(src, label, dst)
        out._sorts = dict(self._sorts)
        return self._carry_state_to(out)

    def quotient(self, classes: Iterable[Iterable[Node]]) -> "Graph":
        """Quotient by a partition (given as an iterable of blocks).

        Nodes absent from every block stay singletons.  The image of a
        block is its canonical representative (its minimum under string
        ordering of ``repr``, for determinism).  Edges and sorts are
        pushed forward; conflicting sorts raise :class:`GraphError`.
        """
        rep: dict[Node, Node] = {}
        for block in classes:
            block = list(block)
            if not block:
                continue
            canon = min(block, key=repr)
            for node in block:
                self._require_node(node)
                if node in rep and rep[node] != canon:
                    raise GraphError(f"node {node!r} occurs in two blocks")
                rep[node] = canon

        def image(node: Node) -> Node:
            return rep.get(node, node)

        out = Graph(root=image(self._root))
        for node in self._succ:
            out._ensure_node(image(node))
        for src, label, dst in self.edges():
            out.add_edge(image(src), label, image(dst))
        for node, sort in self._sorts.items():
            existing = out._sorts.get(image(node))
            if existing is not None and existing != sort:
                raise GraphError(
                    f"quotient merges nodes of different sorts "
                    f"({existing!r} vs {sort!r})"
                )
            out._sorts[image(node)] = sort
        return self._carry_state_to(out)

    def merge_nodes(self, keep: Node, remove: Node) -> None:
        """Identify two nodes in place: ``remove``'s edges move to
        ``keep`` and ``remove`` disappears.

        Used by the chase to satisfy equality-generating constraints
        (conclusion path epsilon).  The root cannot be removed — pass
        it as ``keep``.  Merging nodes with conflicting sorts raises
        :class:`GraphError`.
        """
        self._require_node(keep)
        self._require_node(remove)
        if keep == remove:
            return
        if remove == self._root:
            raise GraphError("cannot remove the root; swap the arguments")
        keep_sort = self._sorts.get(keep)
        remove_sort = self._sorts.pop(remove, None)
        if keep_sort is not None and remove_sort is not None:
            if keep_sort != remove_sort:
                raise GraphError(
                    f"cannot merge nodes of different sorts "
                    f"({keep_sort!r} vs {remove_sort!r})"
                )
        elif remove_sort is not None:
            self._sorts[keep] = remove_sort
        for label, dsts in list(self._succ[remove].items()):
            for dst in list(dsts):
                self.remove_edge(remove, label, dst)
                self.add_edge(keep, label, keep if dst == remove else dst)
        for label, srcs in list(self._pred[remove].items()):
            for src in list(srcs):
                self.remove_edge(src, label, remove)
                self.add_edge(keep if src == remove else src, label, keep)
        del self._succ[remove]
        del self._pred[remove]
        self._touch()

    def is_deterministic(self) -> bool:
        """True when every (node, label) has at most one successor."""
        return all(
            len(dsts) <= 1
            for by_label in self._succ.values()
            for dsts in by_label.values()
        )

    # -- comparison ---------------------------------------------------------

    def same_structure(self, other: "Graph") -> bool:
        """Equality of node sets, roots, edges and sorts (not up to
        isomorphism — identifiers must match)."""
        return (
            self._root == other._root
            and self.nodes == other.nodes
            and set(self.edges()) == set(other.edges())
            and self._sorts == other._sorts
        )

    def __repr__(self) -> str:
        return (
            f"<Graph root={self._root!r} nodes={self.node_count()} "
            f"edges={self.edge_count()}>"
        )
