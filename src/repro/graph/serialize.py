"""Graph (de)serialization: JSON-style dicts and DOT export.

The dict format is stable and round-trips exactly::

    {
        "root": "r",
        "nodes": ["r", "b1", ...],
        "edges": [["r", "book", "b1"], ...],
        "sorts": {"b1": "Book", ...},
    }

Node identifiers must be JSON-representable (strings or ints) for the
dict format; :func:`to_dict` raises otherwise.
"""

from __future__ import annotations

from typing import Any

from repro.errors import GraphError
from repro.graph.structure import Graph

_JSONABLE = (str, int)


def _check_jsonable(node: Any) -> Any:
    if not isinstance(node, _JSONABLE):
        raise GraphError(
            f"node {node!r} is not serializable (use str or int identifiers)"
        )
    return node


def to_dict(graph: Graph) -> dict:
    """Serialize a graph to the stable dict format (sorted, canonical)."""
    nodes = sorted((_check_jsonable(n) for n in graph.nodes), key=repr)
    edges = sorted(graph.edges(), key=repr)
    out: dict = {
        "root": _check_jsonable(graph.root),
        "nodes": nodes,
        "edges": [[s, l, d] for (s, l, d) in edges],
    }
    sorts = graph.sorts
    if sorts:
        out["sorts"] = {repr(k): v for k, v in sorted(sorts.items(), key=repr)}
        # repr-keying would break round-tripping; use plain keys when
        # every node is a string, which is the common case.
        if all(isinstance(k, str) for k in sorts):
            out["sorts"] = dict(sorted(sorts.items()))
    return out


def from_dict(data: dict) -> Graph:
    """Rebuild a graph from :func:`to_dict` output."""
    try:
        root = data["root"]
        nodes = data["nodes"]
        edges = data["edges"]
    except KeyError as exc:
        raise GraphError(f"missing key in graph dict: {exc}") from exc
    graph = Graph(root=root, nodes=nodes)
    for src, label, dst in edges:
        graph.add_edge(src, label, dst)
    for node, sort in data.get("sorts", {}).items():
        graph.set_sort(node, sort)
    return graph


def to_dot(graph: Graph, name: str = "G") -> str:
    """Render a graph in Graphviz DOT syntax (for documentation)."""

    def quote(value: object) -> str:
        return '"' + str(value).replace('"', '\\"') + '"'

    lines = [f"digraph {name} {{"]
    lines.append(f"  {quote(graph.root)} [shape=doublecircle];")
    for node in sorted(graph.nodes, key=repr):
        sort = graph.sort_of(node)
        if sort is not None:
            lines.append(f"  {quote(node)} [label={quote(f'{node}:{sort}')}];")
    for src, label, dst in sorted(graph.edges(), key=repr):
        lines.append(f"  {quote(src)} -> {quote(dst)} [label={quote(label)}];")
    lines.append("}")
    return "\n".join(lines)
