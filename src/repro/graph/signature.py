"""Relational signatures ``sigma = (r, E)``.

A signature fixes the vocabulary of the constraint language
(Section 2.1): a constant symbol naming the root plus a finite set of
binary relation symbols naming the edge labels.  Graphs, constraints
and deciders all agree on labels by string identity, so the signature
is mostly a validation and documentation device — but the deciders use
it to know the full alphabet (e.g. when complementing automata).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import GraphError
from repro.paths import Path


class Signature:
    """The vocabulary ``(r, E)`` of a class of sigma-structures.

    >>> sig = Signature(["book", "author"], root_name="r")
    >>> "book" in sig
    True
    >>> sig.validate_path(Path.parse("book.author"))
    Path('book.author')
    """

    __slots__ = ("_labels", "_root_name")

    def __init__(self, labels: Iterable[str], root_name: str = "r") -> None:
        labels = tuple(labels)
        for label in labels:
            # Reuse Path's label validation by round-tripping.
            Path.single(label)
        self._labels = frozenset(labels)
        self._root_name = root_name

    @property
    def labels(self) -> frozenset[str]:
        """The edge alphabet E."""
        return self._labels

    @property
    def root_name(self) -> str:
        """The name of the root constant (purely cosmetic)."""
        return self._root_name

    def __contains__(self, label: str) -> bool:
        return label in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self):
        return iter(sorted(self._labels))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Signature):
            return self._labels == other._labels
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._labels)

    def __repr__(self) -> str:
        labels = ", ".join(sorted(self._labels))
        return f"Signature([{labels}], root_name={self._root_name!r})"

    def extend(self, labels: Iterable[str]) -> "Signature":
        """A new signature with extra labels added."""
        return Signature(self._labels | set(labels), self._root_name)

    def validate_path(self, path: Path | str) -> Path:
        """Check every label of ``path`` is in the alphabet.

        Returns the coerced :class:`Path`; raises :class:`GraphError`
        on a foreign label.
        """
        path = Path.coerce(path)
        foreign = path.alphabet() - self._labels
        if foreign:
            raise GraphError(
                f"path {path} uses labels {sorted(foreign)} outside the "
                f"signature alphabet {sorted(self._labels)}"
            )
        return path

    @classmethod
    def union(cls, *signatures: "Signature") -> "Signature":
        """The pointwise union of several signatures."""
        labels: set[str] = set()
        for sig in signatures:
            labels |= sig.labels
        root = signatures[0].root_name if signatures else "r"
        return cls(labels, root)
