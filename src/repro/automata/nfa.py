"""Nondeterministic finite automata with epsilon transitions.

States are arbitrary hashable values; the alphabet is implicit (every
symbol that labels some transition).  Mutability is deliberate: the
``post*`` saturation of :mod:`repro.rewriting.prefix` grows an NFA in
place until fixpoint.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

State = Hashable

#: Sentinel used as the label of epsilon transitions.
EPSILON = None


class NFA:
    """An epsilon-NFA with a single initial state.

    >>> a = NFA(initial="q0")
    >>> a.add_transition("q0", "x", "q1")
    True
    >>> a.add_final("q1")
    >>> a.accepts(["x"])
    True
    >>> a.accepts(["x", "x"])
    False
    """

    def __init__(self, initial: State = 0) -> None:
        self._initial = initial
        self._finals: set[State] = set()
        # state -> symbol (or EPSILON) -> set of states
        self._delta: dict[State, dict[object, set[State]]] = {initial: {}}
        self._fresh = 0

    # -- construction -------------------------------------------------

    @property
    def initial(self) -> State:
        return self._initial

    @property
    def finals(self) -> frozenset[State]:
        return frozenset(self._finals)

    @property
    def states(self) -> frozenset[State]:
        out: set[State] = set(self._delta)
        for by_symbol in self._delta.values():
            for targets in by_symbol.values():
                out |= targets
        out |= self._finals
        return frozenset(out)

    def fresh_state(self) -> State:
        """A state identifier of the form ``("s", n)`` not yet used."""
        while True:
            candidate = ("s", self._fresh)
            self._fresh += 1
            if candidate not in self._delta:
                return candidate

    def add_state(self, state: State) -> State:
        self._delta.setdefault(state, {})
        return state

    def add_final(self, state: State) -> None:
        self.add_state(state)
        self._finals.add(state)

    def add_transition(self, src: State, symbol: object, dst: State) -> bool:
        """Add a transition; returns True iff it was new."""
        self.add_state(src)
        self.add_state(dst)
        targets = self._delta[src].setdefault(symbol, set())
        if dst in targets:
            return False
        targets.add(dst)
        return True

    def has_transition(self, src: State, symbol: object, dst: State) -> bool:
        return dst in self._delta.get(src, {}).get(symbol, ())

    def add_word_path(
        self, src: State, word: Iterable[str], dst: State
    ) -> None:
        """Add a chain of fresh states spelling ``word`` from src to dst.

        An empty word becomes a single epsilon transition.
        """
        word = list(word)
        if not word:
            self.add_transition(src, EPSILON, dst)
            return
        current = src
        for symbol in word[:-1]:
            nxt = self.fresh_state()
            self.add_transition(current, symbol, nxt)
            current = nxt
        self.add_transition(current, word[-1], dst)

    def transitions(self) -> Iterator[tuple[State, object, State]]:
        for src, by_symbol in self._delta.items():
            for symbol, targets in by_symbol.items():
                for dst in targets:
                    yield (src, symbol, dst)

    def transition_count(self) -> int:
        return sum(
            len(targets)
            for by_symbol in self._delta.values()
            for targets in by_symbol.values()
        )

    def alphabet(self) -> frozenset[str]:
        out: set[str] = set()
        for by_symbol in self._delta.values():
            out.update(s for s in by_symbol if s is not EPSILON)
        return frozenset(out)  # type: ignore[arg-type]

    # -- execution ------------------------------------------------------

    def epsilon_closure(self, states: Iterable[State]) -> frozenset[State]:
        seen = set(states)
        stack = list(seen)
        while stack:
            state = stack.pop()
            for dst in self._delta.get(state, {}).get(EPSILON, ()):
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return frozenset(seen)

    def step(self, states: Iterable[State], symbol: str) -> frozenset[State]:
        """One symbol of subset execution (epsilon-closed in and out)."""
        closed = self.epsilon_closure(states)
        moved: set[State] = set()
        for state in closed:
            moved |= self._delta.get(state, {}).get(symbol, set())
        return self.epsilon_closure(moved)

    def run(self, word: Iterable[str]) -> frozenset[State]:
        """The state set after reading ``word`` from the initial state."""
        current = self.epsilon_closure([self._initial])
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                break
        return current

    def states_reachable_reading(self, word: Iterable[str]) -> frozenset[State]:
        """Alias of :meth:`run`, named for the saturation engine."""
        return self.run(word)

    def accepts(self, word: Iterable[str]) -> bool:
        return bool(self.run(word) & self._finals)

    def coaccessible_states(self) -> frozenset[State]:
        """States from which some final state is reachable."""
        reverse: dict[State, set[State]] = {}
        for src, _, dst in self.transitions():
            reverse.setdefault(dst, set()).add(src)
        seen = set(self._finals)
        stack = list(seen)
        while stack:
            state = stack.pop()
            for prev in reverse.get(state, ()):
                if prev not in seen:
                    seen.add(prev)
                    stack.append(prev)
        return frozenset(seen)

    def accepts_extension_of(self, prefix: Iterable[str]) -> bool:
        """Is some accepted word of the form ``prefix . rest``?

        Equivalent to non-emptiness of ``L(A) intersect prefix.X*``.
        """
        return bool(self.run(prefix) & self.coaccessible_states())

    def is_empty(self) -> bool:
        """True iff the accepted language is empty."""
        seen = {self._initial}
        stack = [self._initial]
        while stack:
            state = stack.pop()
            if state in self._finals:
                return False
            for targets in self._delta.get(state, {}).values():
                for dst in targets:
                    if dst not in seen:
                        seen.add(dst)
                        stack.append(dst)
        return True

    # -- language operations -----------------------------------------------

    def copy(self) -> "NFA":
        out = NFA(initial=self._initial)
        for state in self._delta:
            out.add_state(state)
        for src, symbol, dst in self.transitions():
            out.add_transition(src, symbol, dst)
        for state in self._finals:
            out.add_final(state)
        out._fresh = self._fresh
        return out

    @classmethod
    def for_word(cls, word: Iterable[str]) -> "NFA":
        """An NFA accepting exactly the one given word."""
        nfa = cls(initial=("w", 0))
        current = nfa.initial
        for i, symbol in enumerate(word, start=1):
            nxt = ("w", i)
            nfa.add_transition(current, symbol, nxt)
            current = nxt
        nfa.add_final(current)
        return nfa

    def trim(self) -> "NFA":
        """A copy keeping only *useful* states (reachable from the
        initial state and co-accessible to a final one).  The initial
        state always survives, so the result is a well-formed NFA even
        for the empty language."""
        reachable: set[State] = set()
        stack = [self._initial]
        while stack:
            state = stack.pop()
            if state in reachable:
                continue
            reachable.add(state)
            for targets in self._delta.get(state, {}).values():
                stack.extend(targets)
        live = (reachable & self.coaccessible_states()) | {self._initial}
        out = NFA(initial=self._initial)
        for src, symbol, dst in self.transitions():
            if src in live and dst in live:
                out.add_transition(src, symbol, dst)
        for state in self._finals & live:
            out.add_final(state)
        return out

    def intersect(self, other: "NFA") -> "NFA":
        """The product automaton: ``L(self) intersect L(other)``.

        States are pairs; epsilon moves advance one side at a time, so
        neither operand needs to be epsilon-free.  Only the part
        reachable from the initial pair is built.
        """
        out = NFA(initial=(self._initial, other._initial))
        seen = {out.initial}
        stack = [out.initial]
        while stack:
            pair = stack.pop()
            p, q = pair
            if p in self._finals and q in other._finals:
                out.add_final(pair)
            moves: list[tuple[object, tuple[State, State]]] = []
            for symbol, targets in self._delta.get(p, {}).items():
                if symbol is EPSILON:
                    moves.extend((EPSILON, (dst, q)) for dst in targets)
                else:
                    for dst2 in other._delta.get(q, {}).get(symbol, ()):
                        moves.extend(
                            (symbol, (dst, dst2)) for dst in targets
                        )
            for dst2 in other._delta.get(q, {}).get(EPSILON, ()):
                moves.append((EPSILON, (p, dst2)))
            for symbol, nxt in moves:
                out.add_transition(pair, symbol, nxt)
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return out

    def subset_witness(
        self,
        other: "NFA",
        extra_alphabet: Iterable[str] = (),
        max_pairs: int | None = None,
    ) -> tuple[str, ...] | None:
        """A shortest word in ``L(self) \\ L(other)``, or None.

        ``None`` means ``L(self) c L(other)``.  Breadth-first search
        over (self-subset, other-subset) pairs — on-the-fly
        determinization of both sides, so no explicit powerset is ever
        materialized; the frontier is bounded by the reachable pair
        count.  ``max_pairs`` caps that count for callers that need a
        guaranteed-cheap check; exceeding it raises :class:`RuntimeError`
        (the automata here come from short queries, so the cap is a
        safety valve, not an expected path).
        """
        alphabet = sorted(
            self.alphabet() | other.alphabet() | set(extra_alphabet)
        )
        start = (
            self.epsilon_closure([self._initial]),
            other.epsilon_closure([other._initial]),
        )
        from collections import deque

        queue = deque([((), start)])
        seen = {start}
        while queue:
            word, (mine, theirs) = queue.popleft()
            if (mine & self._finals) and not (theirs & other._finals):
                return word
            for symbol in alphabet:
                nxt_mine = self.step(mine, symbol)
                if not nxt_mine:
                    # No accepting continuation on my side: the other
                    # side cannot be beaten down this branch.
                    continue
                nxt = (nxt_mine, other.step(theirs, symbol))
                if nxt in seen:
                    continue
                if max_pairs is not None and len(seen) >= max_pairs:
                    raise RuntimeError(
                        f"subset check exceeded {max_pairs} product "
                        "subset pairs"
                    )
                seen.add(nxt)
                queue.append((word + (symbol,), nxt))
        return None

    def has_cycle_on_live_path(self) -> bool:
        """Is the accepted language infinite?

        True iff some cycle is both reachable from the initial state
        and co-accessible (can still reach a final state).  Used to
        decide whether a query language can be exhaustively enumerated.
        """
        live = self.coaccessible_states()
        reachable: set[State] = set()
        stack = [self._initial]
        while stack:
            state = stack.pop()
            if state in reachable:
                continue
            reachable.add(state)
            for targets in self._delta.get(state, {}).values():
                stack.extend(targets)
        core = reachable & live
        # Cycle detection by iterated removal of sink states.
        out_edges = {
            state: {
                dst
                for targets in self._delta.get(state, {}).values()
                for dst in targets
                if dst in core
            }
            for state in core
        }
        changed = True
        while changed:
            changed = False
            for state in list(out_edges):
                if not out_edges[state]:
                    del out_edges[state]
                    for remaining in out_edges.values():
                        remaining.discard(state)
                    changed = True
        return bool(out_edges)

    def enumerate_words(
        self, max_length: int, max_count: int | None = None
    ) -> Iterator[tuple[str, ...]]:
        """Yield accepted words in shortlex order up to ``max_length``.

        Used to extract small witnesses from ``post*`` languages.
        Deduplicates; may be exponential in ``max_length``, so callers
        pass small bounds (and optionally ``max_count``).
        """
        from collections import deque

        alphabet = sorted(self.alphabet())
        start = self.epsilon_closure([self._initial])
        queue: deque[tuple[tuple[str, ...], frozenset[State]]] = deque(
            [((), start)]
        )
        emitted = 0
        while queue:
            word, states = queue.popleft()
            if states & self._finals:
                yield word
                emitted += 1
                if max_count is not None and emitted >= max_count:
                    return
            if len(word) >= max_length:
                continue
            for symbol in alphabet:
                nxt = self.step(states, symbol)
                if nxt:
                    queue.append((word + (symbol,), nxt))
