"""Finite automata over edge-label alphabets.

Substrate for two parts of the library:

* the prefix-rewriting saturation engine (``repro.rewriting``), whose
  ``post*`` images are regular languages represented as NFAs;
* regular path queries (``repro.query``), which compile small regular
  expressions over edge labels to automata and evaluate them by
  graph product.
"""

from repro.automata.nfa import NFA
from repro.automata.dfa import DFA
from repro.automata.regex import compile_regex

__all__ = ["NFA", "DFA", "compile_regex"]
