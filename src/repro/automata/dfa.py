"""Deterministic finite automata.

The typed deciders use DFAs in two places: the ``Paths(Delta)`` DFA
derived from a schema's type graph (states are type names), and
determinized ``post*`` languages when benchmarks compare automata.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.automata.nfa import EPSILON, NFA

State = Hashable


class DFA:
    """A (possibly partial) DFA.

    Missing transitions are rejecting — there is no explicit sink.
    """

    def __init__(
        self,
        initial: State,
        transitions: dict[tuple[State, str], State] | None = None,
        finals: Iterable[State] = (),
        alphabet: Iterable[str] = (),
    ) -> None:
        self._initial = initial
        self._delta: dict[tuple[State, str], State] = dict(transitions or {})
        self._finals = set(finals)
        self._alphabet = set(alphabet)
        for (_, symbol), _dst in self._delta.items():
            self._alphabet.add(symbol)

    # -- construction ----------------------------------------------------

    @property
    def initial(self) -> State:
        return self._initial

    @property
    def finals(self) -> frozenset[State]:
        return frozenset(self._finals)

    @property
    def alphabet(self) -> frozenset[str]:
        return frozenset(self._alphabet)

    @property
    def states(self) -> frozenset[State]:
        out: set[State] = {self._initial}
        for (src, _), dst in self._delta.items():
            out.add(src)
            out.add(dst)
        out |= self._finals
        return frozenset(out)

    def add_transition(self, src: State, symbol: str, dst: State) -> None:
        self._alphabet.add(symbol)
        self._delta[(src, symbol)] = dst

    def add_final(self, state: State) -> None:
        self._finals.add(state)

    def transition(self, state: State, symbol: str) -> State | None:
        return self._delta.get((state, symbol))

    def transitions(self):
        for (src, symbol), dst in self._delta.items():
            yield (src, symbol, dst)

    # -- execution -------------------------------------------------------

    def run(self, word: Iterable[str]) -> State | None:
        """The state after reading ``word``, or None if the run dies."""
        state = self._initial
        for symbol in word:
            state = self._delta.get((state, symbol))
            if state is None:
                return None
        return state

    def accepts(self, word: Iterable[str]) -> bool:
        state = self.run(word)
        return state is not None and state in self._finals

    def live_states(self) -> frozenset[State]:
        """States reachable from the initial state."""
        seen = {self._initial}
        stack = [self._initial]
        while stack:
            state = stack.pop()
            for symbol in self._alphabet:
                dst = self._delta.get((state, symbol))
                if dst is not None and dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return frozenset(seen)

    # -- conversions --------------------------------------------------------

    def to_nfa(self) -> NFA:
        nfa = NFA(initial=self._initial)
        for (src, symbol), dst in self._delta.items():
            nfa.add_transition(src, symbol, dst)
        for state in self._finals:
            nfa.add_final(state)
        return nfa

    @classmethod
    def from_nfa(cls, nfa: NFA) -> "DFA":
        """Subset construction (epsilon-aware)."""
        alphabet = sorted(nfa.alphabet())
        start = nfa.epsilon_closure([nfa.initial])
        seen: dict[frozenset, int] = {start: 0}
        dfa = cls(initial=0, alphabet=alphabet)
        if start & nfa.finals:
            dfa.add_final(0)
        stack = [start]
        while stack:
            subset = stack.pop()
            src_id = seen[subset]
            for symbol in alphabet:
                target = nfa.step(subset, symbol)
                if not target:
                    continue
                if target not in seen:
                    seen[target] = len(seen)
                    stack.append(target)
                    if target & nfa.finals:
                        dfa.add_final(seen[target])
                dfa.add_transition(src_id, symbol, seen[target])
        return dfa

    # -- language algebra ------------------------------------------------------

    def complete(self, alphabet: Iterable[str] = ()) -> "DFA":
        """A total DFA over ``alphabet`` (default: own alphabet) with an
        explicit rejecting sink."""
        alphabet = set(alphabet) | self._alphabet
        sink = ("sink",)
        out = DFA(self._initial, dict(self._delta), self._finals, alphabet)
        for state in list(out.states) + [sink]:
            for symbol in alphabet:
                if (state, symbol) not in out._delta:
                    out._delta[(state, symbol)] = sink
        return out

    def complement(self, alphabet: Iterable[str]) -> "DFA":
        """The complement language over the given alphabet."""
        total = self.complete(alphabet)
        out = DFA(
            total._initial,
            dict(total._delta),
            total.states - total._finals,
            total._alphabet,
        )
        return out

    @classmethod
    def product(
        cls, left: "DFA", right: "DFA", accept: str = "and"
    ) -> "DFA":
        """Product automaton; ``accept`` is ``and``/``or``/``diff``."""
        alphabet = left._alphabet | right._alphabet
        lt = left.complete(alphabet)
        rt = right.complete(alphabet)
        initial = (lt._initial, rt._initial)
        out = cls(initial=initial, alphabet=alphabet)
        stack = [initial]
        seen = {initial}
        while stack:
            src = stack.pop()
            for symbol in alphabet:
                dst = (
                    lt._delta[(src[0], symbol)],
                    rt._delta[(src[1], symbol)],
                )
                out.add_transition(src, symbol, dst)
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        for state in seen:
            in_left = state[0] in lt._finals
            in_right = state[1] in rt._finals
            ok = {
                "and": in_left and in_right,
                "or": in_left or in_right,
                "diff": in_left and not in_right,
            }[accept]
            if ok:
                out.add_final(state)
        return out

    def is_empty(self) -> bool:
        return not (self.live_states() & self._finals)

    def equivalent(self, other: "DFA", alphabet: Iterable[str]) -> bool:
        """Language equivalence over the given alphabet."""
        alphabet = set(alphabet) | self._alphabet | other._alphabet
        diff1 = DFA.product(self, other, accept="diff")
        diff2 = DFA.product(other, self, accept="diff")
        return diff1.is_empty() and diff2.is_empty()

    def minimize(self) -> "DFA":
        """Moore's partition-refinement minimization of the reachable part."""
        alphabet = sorted(self._alphabet)
        total = self.complete(alphabet)
        states = sorted(total.live_states(), key=repr)
        partition_of: dict[State, int] = {
            s: (1 if s in total._finals else 0) for s in states
        }
        while True:
            signature: dict[State, tuple] = {}
            for s in states:
                signature[s] = (
                    partition_of[s],
                    tuple(
                        partition_of[total._delta[(s, a)]]
                        if total._delta[(s, a)] in partition_of
                        else -1
                        for a in alphabet
                    ),
                )
            blocks: dict[tuple, int] = {}
            new_partition: dict[State, int] = {}
            for s in states:
                sig = signature[s]
                if sig not in blocks:
                    blocks[sig] = len(blocks)
                new_partition[s] = blocks[sig]
            if new_partition == partition_of:
                break
            partition_of = new_partition
        out = DFA(initial=partition_of[total._initial], alphabet=alphabet)
        for s in states:
            for a in alphabet:
                dst = total._delta[(s, a)]
                if dst in partition_of:
                    out.add_transition(partition_of[s], a, partition_of[dst])
        for s in states:
            if s in total._finals:
                out.add_final(partition_of[s])
        return out

    def __repr__(self) -> str:
        return (
            f"<DFA states={len(self.states)} "
            f"alphabet={sorted(self._alphabet)} finals={len(self._finals)}>"
        )


__all__ = ["DFA", "EPSILON"]
