"""A small regular-expression engine over edge labels.

Used by regular path queries (Section 1 mentions [AV97]'s regular
expression constraints; our query engine evaluates regular path
queries against graphs).  The grammar, in increasing precedence::

    expr     := term ('|' term)*
    term     := factor+                 # concatenation is juxtaposition
    factor   := atom ('*' | '+' | '?')*
    atom     := label | '(' expr ')' | '_'     # '_' is any single label

Labels are the same tokens accepted by :class:`repro.paths.Path`,
except that regex metacharacters must be parenthesized away.  Dots are
treated as concatenation separators, so every plain path expression
(``book.author``) is also a valid regex.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.automata.nfa import EPSILON, NFA
from repro.errors import RegexSyntaxError

_TOKEN_RE = re.compile(r"\s*(?:(?P<op>[|*+?().])|(?P<label>[^\s|*+?().]+)|(?P<any>_))")

#: Wildcard token matching any single label; requires a known alphabet.
ANY = "_"


@dataclass(frozen=True)
class _Tok:
    kind: str  # 'op' or 'label' or 'any'
    text: str


def _tokenize(pattern: str) -> list[_Tok]:
    tokens: list[_Tok] = []
    pos = 0
    while pos < len(pattern):
        match = _TOKEN_RE.match(pattern, pos)
        if match is None:
            remainder = pattern[pos:].strip()
            if not remainder:
                break
            raise RegexSyntaxError(f"cannot tokenize {remainder!r}")
        pos = match.end()
        if match.group("op"):
            tokens.append(_Tok("op", match.group("op")))
        elif match.group("any"):
            tokens.append(_Tok("any", ANY))
        else:
            text = match.group("label")
            if text == ANY:
                tokens.append(_Tok("any", ANY))
            else:
                tokens.append(_Tok("label", text))
    return tokens


class _Parser:
    """Recursive-descent parser producing an NFA fragment tree."""

    def __init__(self, tokens: list[_Tok], alphabet: frozenset[str]):
        self._tokens = tokens
        self._pos = 0
        self._alphabet = alphabet

    def _peek(self) -> _Tok | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _advance(self) -> _Tok:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def parse(self) -> "_Frag":
        frag = self._expr()
        if self._pos != len(self._tokens):
            raise RegexSyntaxError(
                f"unexpected token {self._tokens[self._pos].text!r}"
            )
        return frag

    def _expr(self) -> "_Frag":
        frags = [self._term()]
        while True:
            tok = self._peek()
            if tok is None or tok.text != "|":
                break
            self._advance()
            frags.append(self._term())
        if len(frags) == 1:
            return frags[0]
        return _Frag.union(frags)

    def _term(self) -> "_Frag":
        frags: list[_Frag] = []
        while True:
            tok = self._peek()
            if tok is None or tok.text in ("|", ")"):
                break
            if tok.text == ".":
                # Dot is pure punctuation (path-style concatenation).
                self._advance()
                continue
            frags.append(self._factor())
        if not frags:
            return _Frag.epsilon()
        if len(frags) == 1:
            return frags[0]
        return _Frag.concat(frags)

    def _factor(self) -> "_Frag":
        frag = self._atom()
        while True:
            tok = self._peek()
            if tok is None or tok.text not in ("*", "+", "?"):
                break
            op = self._advance().text
            if op == "*":
                frag = _Frag.star(frag)
            elif op == "+":
                frag = _Frag.concat([frag, _Frag.star(frag.clone())])
            else:
                frag = _Frag.union([frag, _Frag.epsilon()])
        return frag

    def _atom(self) -> "_Frag":
        tok = self._peek()
        if tok is None:
            raise RegexSyntaxError("unexpected end of pattern")
        if tok.text == "(":
            self._advance()
            frag = self._expr()
            closing = self._peek()
            if closing is None or closing.text != ")":
                raise RegexSyntaxError("unbalanced parenthesis")
            self._advance()
            return frag
        if tok.kind == "any":
            self._advance()
            if not self._alphabet:
                raise RegexSyntaxError(
                    "wildcard '_' needs an explicit alphabet"
                )
            return _Frag.union(
                [_Frag.symbol(label) for label in sorted(self._alphabet)]
            )
        if tok.kind == "label":
            self._advance()
            return _Frag.symbol(tok.text)
        raise RegexSyntaxError(f"unexpected token {tok.text!r}")


class _Frag:
    """Thompson construction fragment: an NFA piece with one in, one out."""

    _counter = 0

    def __init__(self) -> None:
        self.transitions: list[tuple[int, object, int]] = []
        self.start = self._new_state()
        self.end = self._new_state()

    @classmethod
    def _new_state(cls) -> int:
        cls._counter += 1
        return cls._counter

    @classmethod
    def epsilon(cls) -> "_Frag":
        frag = cls()
        frag.transitions.append((frag.start, EPSILON, frag.end))
        return frag

    @classmethod
    def symbol(cls, label: str) -> "_Frag":
        frag = cls()
        frag.transitions.append((frag.start, label, frag.end))
        return frag

    @classmethod
    def concat(cls, frags: list["_Frag"]) -> "_Frag":
        out = cls()
        out.transitions.append((out.start, EPSILON, frags[0].start))
        for left, right in zip(frags, frags[1:]):
            out.transitions.extend(left.transitions)
            out.transitions.append((left.end, EPSILON, right.start))
        out.transitions.extend(frags[-1].transitions)
        out.transitions.append((frags[-1].end, EPSILON, out.end))
        return out

    @classmethod
    def union(cls, frags: list["_Frag"]) -> "_Frag":
        out = cls()
        for frag in frags:
            out.transitions.extend(frag.transitions)
            out.transitions.append((out.start, EPSILON, frag.start))
            out.transitions.append((frag.end, EPSILON, out.end))
        return out

    @classmethod
    def star(cls, inner: "_Frag") -> "_Frag":
        out = cls()
        out.transitions.extend(inner.transitions)
        out.transitions.append((out.start, EPSILON, out.end))
        out.transitions.append((out.start, EPSILON, inner.start))
        out.transitions.append((inner.end, EPSILON, inner.start))
        out.transitions.append((inner.end, EPSILON, out.end))
        return out

    def clone(self) -> "_Frag":
        mapping: dict[int, int] = {}

        def remap(state: int) -> int:
            if state not in mapping:
                mapping[state] = self._new_state()
            return mapping[state]

        out = _Frag.__new__(_Frag)
        out.transitions = [
            (remap(src), symbol, remap(dst))
            for (src, symbol, dst) in self.transitions
        ]
        out.start = remap(self.start)
        out.end = remap(self.end)
        return out

    def to_nfa(self) -> NFA:
        nfa = NFA(initial=self.start)
        for src, symbol, dst in self.transitions:
            nfa.add_transition(src, symbol, dst)
        nfa.add_final(self.end)
        return nfa


def compile_regex(pattern: str, alphabet: frozenset[str] | set[str] = frozenset()) -> NFA:
    """Compile a regular path expression to an NFA.

    >>> nfa = compile_regex("book.(author|editor).name?")
    >>> nfa.accepts(["book", "author", "name"])
    True
    >>> nfa.accepts(["book", "editor"])
    True
    """
    tokens = _tokenize(pattern)
    frag = _Parser(tokens, frozenset(alphabet)).parse()
    return frag.to_nfa()
