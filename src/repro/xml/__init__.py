"""A minimal XML frontend.

The paper's motivating setting is XML on the Web: documents are
semistructured graphs, proposals like XML-Data impose schemas, and
path constraints describe integrity.  This package closes the loop
with no external dependencies:

* :mod:`repro.xml.parser` — a small, strict XML subset parser
  (elements, attributes, text, comments);
* :mod:`repro.xml.graphize` — documents to sigma-structures;
* :mod:`repro.xml.schema` — XML-Data-style ``elementType``
  declarations to M+ schemas (the Section 1 example, literally).
"""

from repro.xml.parser import Element, parse_xml
from repro.xml.graphize import document_to_graph
from repro.xml.schema import schema_from_xml_data

__all__ = [
    "Element",
    "parse_xml",
    "document_to_graph",
    "schema_from_xml_data",
]
