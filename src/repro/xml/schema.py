"""XML-Data style schemas to M+ schemas (the Section 1 example).

The paper's example type::

    <elementType id="book">
        <attribute name="author" range="#person"/>
        <attribute name="ref" range="#book"/>
        <element type="#ISBN"/>
        <element type="#title"/>
        <element type="#year" occurs="optional"/>
    </elementType>

maps to the M+ class ``Book`` with ``author: {Person}``, ``ref:
{Book}``, a required singleton field per required element, and a set
per optional/repeated element (matching Example 3.1's reading
"optional sub-elements are specified as sets").  Element types whose
body is ``<string/>`` or ``<int/>`` become atomic fields on their
referencing classes.  The DB type collects one set-valued extent per
declared class.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.types.typesys import (
    AtomicType,
    ClassRef,
    RecordType,
    Schema,
    SetType,
    Type,
)
from repro.xml.parser import Element, parse_xml

_ATOMIC_TAGS = {"string": AtomicType("string"), "int": AtomicType("int")}


def _class_name(identifier: str) -> str:
    """Element-type ids become capitalized class names (book -> Book)."""
    return identifier[:1].upper() + identifier[1:]


def _strip_ref(ref: str) -> str:
    if not ref.startswith("#"):
        raise SchemaError(f"range/type reference {ref!r} must start with '#'")
    return ref[1:]


def schema_from_xml_data(source: str | Element) -> Schema:
    """Build an M+ schema from XML-Data-style declarations.

    ``source`` is either the XML text or a parsed root element whose
    children include ``elementType`` declarations.

    >>> schema = schema_from_xml_data('''
    ... <schema>
    ...   <elementType id="book">
    ...     <attribute name="author" range="#person"/>
    ...     <element type="#title"/>
    ...   </elementType>
    ...   <elementType id="person">
    ...     <element type="#name"/>
    ...   </elementType>
    ...   <elementType id="title"><string/></elementType>
    ...   <elementType id="name"><string/></elementType>
    ... </schema>''')
    >>> sorted(schema.class_names)
    ['Book', 'Person']
    """
    root = parse_xml(source) if isinstance(source, str) else source
    declarations = [e for e in root.iter() if e.tag == "elementType"]
    if not declarations:
        raise SchemaError("no elementType declarations found")

    # First pass: which ids are atomic wrappers, which are classes?
    atomic_ids: dict[str, AtomicType] = {}
    class_ids: list[Element] = []
    for declaration in declarations:
        identifier = declaration.get("id")
        if not identifier:
            raise SchemaError("elementType without an id")
        body_atoms = [c for c in declaration.children if c.tag in _ATOMIC_TAGS]
        if body_atoms and len(declaration.children) == len(body_atoms):
            atomic_ids[identifier] = _ATOMIC_TAGS[body_atoms[0].tag]
        else:
            class_ids.append(declaration)

    known = set(atomic_ids) | {d.get("id") for d in class_ids}

    def field_type(identifier: str, multi: bool) -> Type:
        if identifier not in known:
            raise SchemaError(f"reference to undeclared type {identifier!r}")
        if identifier in atomic_ids:
            base: Type = atomic_ids[identifier]
        else:
            base = ClassRef(_class_name(identifier))
        return SetType(base) if multi else base

    classes: dict[str, Type] = {}
    for declaration in class_ids:
        identifier = declaration.get("id")
        fields: list[tuple[str, Type]] = []
        for child in declaration.children:
            if child.tag == "attribute":
                name = child.get("name")
                target = _strip_ref(child.get("range", ""))
                if not name:
                    raise SchemaError(f"attribute without a name in {identifier}")
                # Attributes are relationships: multi-valued, class-ranged.
                fields.append((name, field_type(target, multi=True)))
            elif child.tag == "element":
                target = _strip_ref(child.get("type", ""))
                occurs = child.get("occurs", "required")
                multi = occurs in ("optional", "zeroOrMore", "oneOrMore")
                fields.append((target, field_type(target, multi=multi)))
            elif child.tag in _ATOMIC_TAGS:
                raise SchemaError(
                    f"elementType {identifier!r} mixes atomic body and fields"
                )
            else:
                raise SchemaError(
                    f"unsupported declaration <{child.tag}> in {identifier!r}"
                )
        classes[_class_name(identifier)] = RecordType(fields)

    db_fields = [
        (declaration.get("id"), SetType(ClassRef(_class_name(declaration.get("id")))))
        for declaration in class_ids
    ]
    return Schema(classes, RecordType(db_fields))
