"""A minimal, dependency-free XML subset parser.

Supports elements, attributes (single or double quoted), self-closing
tags, text content, comments and an optional XML declaration.  It does
*not* support namespaces, DTDs, CDATA or processing instructions —
the 1998-era documents this library models need none of them.  Errors
raise :class:`repro.errors.XMLSyntaxError` with positions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import XMLSyntaxError

_NAME = r"[A-Za-z_][A-Za-z0-9_.\-]*"
_TOKEN = re.compile(
    r"<!--(?P<comment>.*?)-->"
    r"|<\?(?P<pi>.*?)\?>"
    r"|<(?P<close>/)?(?P<name>" + _NAME + r")(?P<attrs>[^<>]*?)(?P<selfclose>/)?>"
    r"|(?P<text>[^<]+)",
    re.DOTALL,
)
_ATTR = re.compile(
    r"\s*(?P<key>" + _NAME + r")\s*=\s*(?P<quote>[\"'])(?P<value>.*?)(?P=quote)",
    re.DOTALL,
)

_ENTITIES = {"&lt;": "<", "&gt;": ">", "&amp;": "&", "&quot;": '"', "&apos;": "'"}


def _unescape(text: str) -> str:
    for entity, char in _ENTITIES.items():
        text = text.replace(entity, char)
    return text


@dataclass
class Element:
    """One XML element: tag, attributes, children, text content."""

    tag: str
    attributes: dict[str, str] = field(default_factory=dict)
    children: list["Element"] = field(default_factory=list)
    text: str = ""

    def find_all(self, tag: str) -> list["Element"]:
        """Direct children with the given tag."""
        return [child for child in self.children if child.tag == tag]

    def find(self, tag: str) -> "Element | None":
        """First direct child with the given tag, or None."""
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def get(self, attribute: str, default: str | None = None) -> str | None:
        return self.attributes.get(attribute, default)

    def iter(self):
        """Depth-first iteration over this element and descendants."""
        yield self
        for child in self.children:
            yield from child.iter()

    def __repr__(self) -> str:
        return (
            f"<Element {self.tag} attrs={len(self.attributes)} "
            f"children={len(self.children)}>"
        )


def _parse_attributes(raw: str, pos: int) -> dict[str, str]:
    attributes: dict[str, str] = {}
    cursor = 0
    while cursor < len(raw):
        match = _ATTR.match(raw, cursor)
        if match is None:
            if raw[cursor:].strip():
                raise XMLSyntaxError(
                    f"malformed attributes {raw[cursor:].strip()!r} near "
                    f"offset {pos}"
                )
            break
        key = match.group("key")
        if key in attributes:
            raise XMLSyntaxError(f"duplicate attribute {key!r} near offset {pos}")
        attributes[key] = _unescape(match.group("value"))
        cursor = match.end()
    return attributes


def parse_xml(source: str) -> Element:
    """Parse a document and return its root element.

    >>> root = parse_xml('<book isbn="1"><title>Found. of DBs</title></book>')
    >>> root.tag, root.attributes["isbn"], root.find("title").text
    ('book', '1', 'Found. of DBs')
    """
    stack: list[Element] = []
    root: Element | None = None
    pos = 0
    for match in _TOKEN.finditer(source):
        if match.start() != pos:
            raise XMLSyntaxError(
                f"unparseable content at offset {pos}: "
                f"{source[pos:match.start()]!r}"
            )
        pos = match.end()
        if match.group("comment") is not None or match.group("pi") is not None:
            continue
        if match.group("text") is not None:
            text = match.group("text")
            if text.strip():
                if not stack:
                    raise XMLSyntaxError(
                        f"text outside the root element at offset {match.start()}"
                    )
                stack[-1].text += _unescape(text.strip())
            continue
        name = match.group("name")
        if match.group("close"):
            if match.group("attrs").strip() or match.group("selfclose"):
                raise XMLSyntaxError(f"malformed closing tag </{name}>")
            if not stack or stack[-1].tag != name:
                open_tag = stack[-1].tag if stack else None
                raise XMLSyntaxError(
                    f"closing </{name}> does not match open <{open_tag}>"
                )
            closed = stack.pop()
            if not stack:
                if root is not None:
                    raise XMLSyntaxError("multiple root elements")
                root = closed
            continue
        element = Element(
            tag=name,
            attributes=_parse_attributes(match.group("attrs"), match.start()),
        )
        if stack:
            stack[-1].children.append(element)
        elif root is not None:
            raise XMLSyntaxError("multiple root elements")
        if match.group("selfclose"):
            if not stack:
                root = element
        else:
            stack.append(element)
    if pos != len(source) and source[pos:].strip():
        raise XMLSyntaxError(f"trailing content at offset {pos}")
    if stack:
        raise XMLSyntaxError(f"unclosed element <{stack[-1].tag}>")
    if root is None:
        raise XMLSyntaxError("no root element")
    return root
