"""XML documents as sigma-structures.

Following the paper's Figure 1 reading of an XML document: element
nesting becomes edges labeled with the child's tag; attributes become
edges to value leaves, except *reference* attributes (id/idref pairs),
which become edges to the referenced element — that is how the
``author``/``wrote``/``ref`` cross-links of the bibliography document
arise from flat XML.
"""

from __future__ import annotations

from repro.errors import XMLSyntaxError
from repro.graph.structure import Graph, Node
from repro.xml.parser import Element

#: Attribute used to declare an element's identity.
ID_ATTRIBUTE = "id"


def document_to_graph(
    root: Element,
    id_attribute: str = ID_ATTRIBUTE,
    reference_attributes: frozenset[str] | set[str] = frozenset(),
) -> Graph:
    """Turn a parsed document into a rooted graph.

    ``reference_attributes`` names the attributes whose values are
    idrefs: each becomes an edge (labeled by the attribute) to the
    element carrying that id.  The value may be a single id or a
    whitespace-separated list.  Other attributes become value leaves;
    text content becomes a leaf tagged with the text.

    >>> from repro.xml.parser import parse_xml
    >>> doc = parse_xml(
    ...     '<bib><book id="b1" author="p1"/><person id="p1"/></bib>')
    >>> g = document_to_graph(doc, reference_attributes={"author"})
    >>> len(g.eval_path("book.author"))
    1
    """
    graph = Graph(root="r")
    by_id: dict[str, Node] = {}
    pending_refs: list[tuple[Node, str, str]] = []

    def build(element: Element, node: Node) -> None:
        identity = element.attributes.get(id_attribute)
        if identity is not None:
            if identity in by_id:
                raise XMLSyntaxError(f"duplicate id {identity!r}")
            by_id[identity] = node
        for key, value in element.attributes.items():
            if key == id_attribute:
                continue
            if key in reference_attributes:
                for ref in value.split():
                    pending_refs.append((node, key, ref))
            else:
                leaf = graph.add_edge(node, key, graph.fresh_node())
                graph.set_sort(leaf, f"value:{value}")
        if element.text:
            graph.set_sort(node, f"text:{element.text}")
        for child in element.children:
            child_node = graph.add_edge(node, child.tag, graph.fresh_node())
            build(child, child_node)

    # The document root's own tag is not an edge: the graph root stands
    # for the document, mirroring Figure 1 (r has book/person edges).
    build(root, "r")
    for source, label, ref in pending_refs:
        target = by_id.get(ref)
        if target is None:
            raise XMLSyntaxError(f"dangling reference {ref!r} via {label!r}")
        graph.add_edge(source, label, target)
    return graph
