"""Prefix rewriting: ``post*`` saturation and derivation search.

A *prefix rewriting system* is a finite set of rules ``u_i -> v_i``
over words; a rule rewrites ``u_i . z`` to ``v_i . z`` (only at the
front of the word).  Derivability under the word-constraint inference
rules {reflexivity, transitivity, right-congruence} of Section 4.2 is
exactly reachability under prefix rewriting, and adding the
commutativity rule (sound over the typed model M) makes the system
symmetric.

``post*(w)`` — the set of words reachable from ``w`` — is a regular
language.  We compute an NFA for it by the classic saturation
construction: starting from the one-word automaton for ``w``, with a
pre-built spine for each rule's right-hand side, repeatedly add, for
every rule ``u -> v`` and every state ``q`` reachable from the initial
state by reading ``u``, the final edge that makes ``v`` read from the
initial state land on ``q``.  States never grow beyond the initial
chain plus the rule spines, so the construction reaches a fixpoint in
polynomial time.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.automata.nfa import EPSILON, NFA
from repro.paths import Path


@dataclass(frozen=True)
class RewriteStep:
    """One prefix-rewriting step in a derivation.

    ``source = rule_lhs . suffix`` rewrites to ``target = rule_rhs .
    suffix``.  ``inverted`` marks a use of the rule right-to-left
    (possible only in symmetric systems; it corresponds to the
    commutativity inference rule).
    """

    source: Path
    target: Path
    rule_index: int
    inverted: bool
    suffix: Path

    def describe(self) -> str:
        direction = "<-" if self.inverted else "->"
        return (
            f"{self.source} => {self.target}  "
            f"[rule {self.rule_index} {direction}, suffix {self.suffix}]"
        )


class PrefixRewriteSystem:
    """A finite prefix rewriting system with cached ``post*`` automata.

    >>> system = PrefixRewriteSystem([("a.b", "c"), ("c.d", "a")])
    >>> system.derives("a.b.d", "a")     # a.b.d => c.d => a
    True
    >>> system.derives("a", "a.b.d")     # not symmetric
    False
    >>> PrefixRewriteSystem([("a.b", "c"), ("c.d", "a")],
    ...                     symmetric=True).derives("a", "a.b.d")
    True
    """

    def __init__(
        self,
        rules: Iterable[tuple[Path | str, Path | str]],
        symmetric: bool = False,
    ) -> None:
        base = [
            (Path.coerce(lhs), Path.coerce(rhs)) for lhs, rhs in rules
        ]
        self._base_rules = tuple(base)
        self._symmetric = symmetric
        effective = list(base)
        if symmetric:
            effective.extend((rhs, lhs) for lhs, rhs in base)
        self._rules = tuple(effective)
        self._post_cache: dict[Path, NFA] = {}

    # -- introspection -----------------------------------------------------

    @property
    def rules(self) -> tuple[tuple[Path, Path], ...]:
        """The user-supplied rules (without symmetric inverses)."""
        return self._base_rules

    @property
    def symmetric(self) -> bool:
        return self._symmetric

    def alphabet(self) -> frozenset[str]:
        out: set[str] = set()
        for lhs, rhs in self._base_rules:
            out |= lhs.alphabet() | rhs.alphabet()
        return frozenset(out)

    def inverse(self) -> "PrefixRewriteSystem":
        """The system with every rule reversed (``pre*`` of self is
        ``post*`` of the inverse)."""
        return PrefixRewriteSystem(
            [(rhs, lhs) for lhs, rhs in self._base_rules],
            symmetric=self._symmetric,
        )

    # -- one-step rewriting ---------------------------------------------------

    def neighbors(self, word: Path) -> Iterator[RewriteStep]:
        """All one-step rewrites of ``word`` (including inverted rule
        uses when the system is symmetric)."""
        base_count = len(self._base_rules)
        for index, (lhs, rhs) in enumerate(self._rules):
            if lhs.is_prefix_of(word):
                suffix = word.strip_prefix(lhs)
                yield RewriteStep(
                    source=word,
                    target=rhs.concat(suffix),
                    rule_index=index % base_count if base_count else index,
                    inverted=index >= base_count,
                    suffix=suffix,
                )

    # -- post* saturation -------------------------------------------------------

    def post_star_automaton(self, word: Path | str) -> NFA:
        """An NFA accepting ``post*(word)``; memoized per word."""
        word = Path.coerce(word)
        cached = self._post_cache.get(word)
        if cached is not None:
            return cached
        nfa = self._saturate(word)
        self._post_cache[word] = nfa
        return nfa

    def _saturate(self, word: Path) -> NFA:
        nfa = NFA.for_word(word.labels)
        q0 = nfa.initial
        # Pre-build the spine of each rule's right-hand side: reading
        # rhs[:-1] from the initial state lands on the spine tip; the
        # saturation loop then only has to add the final edge per
        # (rule, target-state) pair.  Rules with |rhs| <= 1 need no
        # spine.  This eager spine is sound: no word is accepted
        # through a spine until some final edge lands on an accepting
        # continuation.
        tails: list[tuple[object, object]] = []  # (src_state, last_symbol)
        for index, (_, rhs) in enumerate(self._rules):
            if len(rhs) == 0:
                tails.append((q0, EPSILON))
            elif len(rhs) == 1:
                tails.append((q0, rhs.labels[0]))
            else:
                prev = q0
                for j, symbol in enumerate(rhs.labels[:-1]):
                    state = ("r", index, j)
                    nfa.add_transition(prev, symbol, state)
                    prev = state
                tails.append((prev, rhs.labels[-1]))

        changed = True
        while changed:
            changed = False
            for index, (lhs, _) in enumerate(self._rules):
                src, symbol = tails[index]
                for q in nfa.states_reachable_reading(lhs.labels):
                    if nfa.add_transition(src, symbol, q):
                        changed = True
        return nfa

    def post_star_of_nfa(self, nfa: NFA) -> NFA:
        """An NFA accepting ``post*(L(nfa))``: every word derivable
        from *some* member of the seed language.

        Generalizes :meth:`post_star_automaton` from a one-word seed to
        an arbitrary NFA — same spine construction, same saturation
        loop, same termination argument (states never grow beyond the
        seed's states plus one spine per rule, so only finitely many
        final edges can be added).  The seed automaton is not mutated.
        """
        out = nfa.copy()
        q0 = out.initial
        # Spine states must be fresh even when the seed is itself a
        # saturation result (chained post* calls), hence the nonce.
        existing = out.states
        nonce = 0
        while any(
            isinstance(s, tuple) and s[:2] == ("post*", nonce)
            for s in existing
        ):
            nonce += 1
        tails: list[tuple[object, object]] = []
        for index, (_, rhs) in enumerate(self._rules):
            if len(rhs) == 0:
                tails.append((q0, EPSILON))
            elif len(rhs) == 1:
                tails.append((q0, rhs.labels[0]))
            else:
                prev = q0
                for j, symbol in enumerate(rhs.labels[:-1]):
                    state = ("post*", nonce, index, j)
                    out.add_transition(prev, symbol, state)
                    prev = state
                tails.append((prev, rhs.labels[-1]))
        changed = True
        while changed:
            changed = False
            for index, (lhs, _) in enumerate(self._rules):
                src, symbol = tails[index]
                for q in out.states_reachable_reading(lhs.labels):
                    if out.add_transition(src, symbol, q):
                        changed = True
        return out

    def pre_star_of_nfa(self, nfa: NFA) -> NFA:
        """An NFA accepting ``pre*(L(nfa))``: every word that derives
        *into* the seed language (``post*`` of the inverse system)."""
        return self.inverse().post_star_of_nfa(nfa)

    def derives(self, source: Path | str, target: Path | str) -> bool:
        """Is ``target`` reachable from ``source``?

        This is the decision core of the untyped word-constraint
        decider (and, with ``symmetric=True``, of the typed-M decider).
        """
        source = Path.coerce(source)
        target = Path.coerce(target)
        if source == target:
            return True
        return self.post_star_automaton(source).accepts(target.labels)

    def derivable_words(
        self, source: Path | str, max_length: int, max_count: int | None = None
    ) -> Iterator[Path]:
        """Enumerate ``post*(source)`` members in shortlex order."""
        nfa = self.post_star_automaton(source)
        for labels in nfa.enumerate_words(max_length, max_count):
            yield Path(labels)

    # -- explicit derivations --------------------------------------------------

    def find_derivation(
        self,
        source: Path | str,
        target: Path | str,
        max_steps: int = 100_000,
        max_length: int | None = None,
    ) -> list[RewriteStep] | None:
        """An explicit rewrite sequence from source to target, or None.

        Breadth-first search over words, capped by a word-length bound
        and an expansion budget.  Callers that only need yes/no should
        use :meth:`derives` (complete and polynomial); this method
        exists to extract *certificates* (which the I_r proof builder
        turns into checkable proofs), so incompleteness within the
        budget is acceptable and reported as None.
        """
        source = Path.coerce(source)
        target = Path.coerce(target)
        if source == target:
            return []
        if not self.derives(source, target):
            return None
        if max_length is None:
            longest_rule = max(
                (len(rhs) for _, rhs in self._rules), default=0
            )
            max_length = max(len(source), len(target)) + longest_rule + 8

        parents: dict[Path, RewriteStep | None] = {source: None}
        queue: deque[Path] = deque([source])
        expansions = 0
        while queue and expansions < max_steps:
            word = queue.popleft()
            expansions += 1
            for step in self.neighbors(word):
                if step.target in parents or len(step.target) > max_length:
                    continue
                parents[step.target] = step
                if step.target == target:
                    return self._unwind(parents, target)
                queue.append(step.target)
        return None

    @staticmethod
    def _unwind(
        parents: dict[Path, RewriteStep | None], target: Path
    ) -> list[RewriteStep]:
        steps: list[RewriteStep] = []
        current = target
        while True:
            step = parents[current]
            if step is None:
                break
            steps.append(step)
            current = step.source
        steps.reverse()
        return steps

    def check_derivation(
        self, source: Path | str, target: Path | str, steps: list[RewriteStep]
    ) -> bool:
        """Verify an explicit derivation independently of the search."""
        current = Path.coerce(source)
        base_count = len(self._base_rules)
        for step in steps:
            if step.source != current:
                return False
            if not 0 <= step.rule_index < base_count:
                return False
            lhs, rhs = self._base_rules[step.rule_index]
            if step.inverted:
                if not self._symmetric:
                    return False
                lhs, rhs = rhs, lhs
            if lhs.concat(step.suffix) != current:
                return False
            if rhs.concat(step.suffix) != step.target:
                return False
            current = step.target
        return current == Path.coerce(target)

    def __repr__(self) -> str:
        kind = "symmetric " if self._symmetric else ""
        return f"<{kind}PrefixRewriteSystem rules={len(self._base_rules)}>"
