"""Prefix rewriting systems and their regularity-preserving closures.

The complete inference rules for word-constraint implication
(reflexivity, transitivity, right-congruence — Section 4.2, after
[AV97]) say exactly that the derivable consequences of a word
constraint set are the reflexive-transitive closure of *prefix
rewriting*: the rule ``alpha_i -> beta_i`` rewrites a word
``alpha_i . z`` to ``beta_i . z``.  The set of words reachable from a
given word under prefix rewriting is a regular language computable in
polynomial time by automaton saturation (Buchi; Caucal; the
pushdown-systems ``post*`` construction).  This package implements
that saturation, in both the directed form (untyped word implication)
and the symmetric form (adding the commutativity rule, which is sound
exactly over the typed model M).
"""

from repro.rewriting.prefix import PrefixRewriteSystem, RewriteStep

__all__ = ["PrefixRewriteSystem", "RewriteStep"]
