"""The constraint-implication server: a long-lived daemon multiplexing
implication queries onto the portfolio runtime.

The ROADMAP's production-scale north star needs more than a fast
``solve()`` — it needs the robustness machinery (supervised pools,
monotonic budgets, the cross-request cache) to compose under
*concurrent* load.  This package provides that composition point:

* :mod:`repro.server.protocol` — the versioned JSON-lines wire format
  (``imply``/``check``/``health``/``stats``/``shutdown`` requests);
* :mod:`repro.server.singleflight` — canonical-key request coalescing:
  concurrent alpha-equivalent queries share one solve, with followers'
  certificates renamed back into their own alphabets;
* :mod:`repro.server.daemon` — the asyncio server itself: bounded
  admission queue with explicit load-shedding, client-budget deadline
  propagation, graceful SIGTERM drain, warm-pool and cache sharing
  across connections;
* :mod:`repro.server.client` — a blocking client library with
  timeouts, capped-exponential retry with jitter, multi-endpoint
  failover behind per-endpoint circuit breakers, and honest fault
  surfacing (``result.faults`` travels over the wire);
* :mod:`repro.server.chaos` — deterministic wire-level chaos: a
  seeded fault-perpetrating TCP proxy, an embedded-daemon harness,
  and the ``repro chaos`` acceptance sweep (no fault may flip a
  definite verdict; wedged solves are reclaimed in bounded time).

The connection/drain discipline follows EdgeDB's server (bounded
queues, drain-then-exit) and Twisted's service idioms (one reactor,
explicit lifecycle); deduplication leans on the
containment-under-constraints observation (Calvanese-De
Giacomo-Lenzerini) that an implication verdict is a pure function of
the instance's structure.
"""

from repro.server.client import (
    ServerClient,
    parse_endpoints,
    parse_host_port,
)
from repro.server.daemon import ImplicationServer, ServerConfig
from repro.server.protocol import PROTOCOL_VERSION
from repro.server.singleflight import SingleFlightTable

__all__ = [
    "ImplicationServer",
    "PROTOCOL_VERSION",
    "ServerClient",
    "ServerConfig",
    "SingleFlightTable",
    "parse_endpoints",
    "parse_host_port",
]
