"""Deterministic wire-level chaos for the implication service.

:mod:`repro.reasoning.faultinject` exercises the *solver* runtime's
fault paths; this module does the same for the *service* layer — the
socket, the framing, the client's retry/failover loop, the daemon's
hostile-input handling — with the same discipline: every fault is
seeded and replayable, and the acceptance property is identical (a
fault may demote an answer to UNKNOWN or cost a retry, but may never
flip a definite verdict).

Three pieces:

* :class:`ChaosPlan` — the same spec grammar as
  :class:`~repro.reasoning.faultinject.FaultPlan`, mapping *connection
  ordinals* (accept order) to wire faults: targeted clauses like
  ``drop:3`` or ``delay:2:0.5``, and rate clauses ``rate:0.3[:seed]``
  drawing a fault kind per ordinal from a seeded PRNG.
* :class:`ChaosProxy` — a threaded TCP proxy between a real client
  and a real daemon that perpetrates the planned fault on each
  connection.  Faults live on the wire, not in mocks, so both ends'
  production error paths run.
* :func:`run_chaos_sweep` — the ``repro chaos`` driver: a seeded
  request sweep through the proxy scored against a clean in-process
  oracle (availability, demotions, verdict flips, p99 latency), a
  watchdog-reclaim measurement (a wedged solve must be abandoned and
  its thread's capacity restored within bounded time), and a
  two-daemon failover exercise.  After every phase the daemon must
  drain cleanly — chaos must never leave a wedged server behind.

Fault kinds (per connection, by accept ordinal):

===========  ==========================================================
``drop``     accept, then close immediately — the client's connect
             succeeds but its first read dies
``close``    forward *half* of the client's first frame upstream, then
             close both sides — the daemon reads a mid-frame disconnect
``partial``  forward the request intact, then send the client only
             half of the first response chunk before closing — the
             client reads a truncated frame
``garbage``  inject a seeded non-protocol line ahead of the first real
             response — the client must reject it and resync by
             reconnecting, never parse it as an answer
``delay``    trickle the request bytes upstream a few at a time
             (slow-loris, ``param`` seconds total), then pump
             transparently — exercises read patience on both ends
===========  ==========================================================
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.server.daemon import ImplicationServer, ServerConfig

#: All wire fault kinds; rate plans draw from all of them (unlike
#: solver-side rate plans, none of these can wedge a sweep — every
#: kind resolves in bounded time).
CHAOS_KINDS = ("drop", "close", "partial", "garbage", "delay")

#: Default slow-loris duration for rate-drawn ``delay`` faults.
_RATE_DELAY_S = 0.1

#: Golden-ratio multiplier decorrelating per-ordinal PRNG streams.
_SEED_STRIDE = 0x9E3779B1


@dataclass(frozen=True)
class ChaosAction:
    """What (if anything) to do to one proxied connection."""

    kind: str = "none"
    param: float = 0.0

    @property
    def fires(self) -> bool:
        return self.kind != "none"


NO_CHAOS = ChaosAction()


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic map from connection ordinal to wire fault.

    Same grammar as :class:`~repro.reasoning.faultinject.FaultPlan`:
    comma-separated clauses, each ``KIND:ORDINAL[:PARAM]`` or
    ``rate:R[:SEED]``.
    """

    spec: str = ""
    targeted: tuple[tuple[int, ChaosAction], ...] = ()
    rate: float = 0.0
    seed: int = 0

    @classmethod
    def from_spec(cls, spec: str) -> "ChaosPlan":
        targeted: list[tuple[int, ChaosAction]] = []
        rate = 0.0
        seed = 0
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            parts = clause.split(":")
            kind = parts[0]
            if kind == "rate":
                if len(parts) not in (2, 3):
                    raise ValueError(
                        f"bad chaos clause {clause!r}: "
                        "expected rate:R[:SEED]"
                    )
                rate = float(parts[1])
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(f"chaos rate {rate} not in [0, 1]")
                seed = int(parts[2]) if len(parts) == 3 else 0
                continue
            if kind not in CHAOS_KINDS:
                raise ValueError(
                    f"unknown chaos kind {kind!r} "
                    f"(expected one of {', '.join(CHAOS_KINDS)})"
                )
            if len(parts) == 2:
                ordinal, param = int(parts[1]), 0.0
            elif len(parts) == 3:
                ordinal, param = int(parts[1]), float(parts[2])
            else:
                raise ValueError(
                    f"bad chaos clause {clause!r}: "
                    "expected KIND:ORDINAL[:PARAM]"
                )
            targeted.append((ordinal, ChaosAction(kind, param)))
        return cls(
            spec=spec, targeted=tuple(targeted), rate=rate, seed=seed
        )

    def action_for(self, ordinal: int) -> ChaosAction:
        for target, action in self.targeted:
            if target == ordinal:
                return action
        if self.rate > 0.0:
            rng = random.Random(self.seed * _SEED_STRIDE + ordinal)
            if rng.random() < self.rate:
                kind = rng.choice(CHAOS_KINDS)
                param = _RATE_DELAY_S if kind == "delay" else 0.0
                return ChaosAction(kind, param)
        return NO_CHAOS


class ChaosProxy:
    """A TCP proxy that perpetrates one planned fault per connection.

    Threaded and synchronous on purpose: the proxy must be a separate
    actor from the daemon's event loop, so a fault that wedges one
    would be visible on the other — exactly like a real middlebox.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: ChaosPlan,
        host: str = "127.0.0.1",
    ) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.plan = plan
        self.host = host
        self.port: int | None = None
        self.counters: dict[str, int] = {"connections": 0}
        for kind in CHAOS_KINDS:
            self.counters[kind] = 0
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._open: set[socket.socket] = set()

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(64)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            stale = list(self._open)
        for sock in stale:
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the wire -----------------------------------------------------

    def _track(self, sock: socket.socket) -> None:
        with self._lock:
            self._open.add(sock)

    def _untrack_close(self, *socks: socket.socket) -> None:
        for sock in socks:
            with self._lock:
                self._open.discard(sock)
            try:
                sock.close()
            except OSError:
                pass

    def _accept_loop(self) -> None:
        assert self._listener is not None
        ordinal = 0
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            self.counters["connections"] += 1
            action = self.plan.action_for(ordinal)
            if action.fires:
                self.counters[action.kind] += 1
            handler = threading.Thread(
                target=self._handle,
                args=(conn, action),
                name=f"chaos-conn-{ordinal}",
                daemon=True,
            )
            ordinal += 1
            handler.start()

    def _handle(self, client: socket.socket, action: ChaosAction) -> None:
        self._track(client)
        if action.kind == "drop":
            self._untrack_close(client)
            return
        try:
            upstream = socket.create_connection(self.upstream, timeout=5.0)
        except OSError:
            self._untrack_close(client)
            return
        self._track(upstream)
        try:
            if action.kind == "close":
                chunk = client.recv(65536)
                if chunk:
                    upstream.sendall(chunk[: max(1, len(chunk) // 2)])
                return
            if action.kind == "delay":
                chunk = client.recv(65536)
                if not chunk:
                    return
                total = max(action.param, 0.01)
                step = max(1, len(chunk) // 8)
                pause = total / max(1, (len(chunk) + step - 1) // step)
                for start in range(0, len(chunk), step):
                    if self._stopping.is_set():
                        return
                    upstream.sendall(chunk[start : start + step])
                    time.sleep(pause)
                self._pump_bidirectional(client, upstream)
                return
            if action.kind == "garbage":
                chunk = client.recv(65536)
                if not chunk:
                    return
                upstream.sendall(chunk)
                noise = random.Random(
                    sum(chunk) * _SEED_STRIDE
                ).getrandbits(64)
                client.sendall(b"\xff\xfechaos-%016x\n" % noise)
                self._pump_bidirectional(client, upstream)
                return
            if action.kind == "partial":
                chunk = client.recv(65536)
                if not chunk:
                    return
                upstream.sendall(chunk)
                reply = upstream.recv(65536)
                if reply:
                    client.sendall(reply[: max(1, len(reply) // 2)])
                return
            self._pump_bidirectional(client, upstream)
        except OSError:
            pass
        finally:
            self._untrack_close(client, upstream)

    def _pump_bidirectional(
        self, client: socket.socket, upstream: socket.socket
    ) -> None:
        """Transparent relay until either side closes."""
        done = threading.Event()

        def pump(src: socket.socket, dst: socket.socket) -> None:
            try:
                while not self._stopping.is_set():
                    data = src.recv(65536)
                    if not data:
                        break
                    dst.sendall(data)
            except OSError:
                pass
            finally:
                done.set()
                for sock in (src, dst):
                    try:
                        sock.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass

        back = threading.Thread(
            target=pump, args=(upstream, client), daemon=True
        )
        back.start()
        pump(client, upstream)
        done.wait(timeout=5.0)


class EmbeddedServer:
    """A real :class:`ImplicationServer` on a background thread.

    The harness the sweep, the tests and the benchmarks all share:
    starts the daemon with its own event loop, exposes the bound
    port, and stops it through the *thread-safe* drain path so the
    clean-drain assertion means what it says.
    """

    def __init__(self, config: ServerConfig) -> None:
        self.server = ImplicationServer(config)
        self._loop: "object | None" = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    def start(self) -> "EmbeddedServer":
        import asyncio

        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            try:
                await self.server.start()
            except BaseException as exc:
                self._error = exc
                self._ready.set()
                raise
            self._ready.set()
            await self.server.wait_drained()
            await self.server.stop()

        def run() -> None:
            try:
                asyncio.run(main())
            except BaseException as exc:  # noqa: BLE001 - surfaced in stop()
                self._error = exc

        self._thread = threading.Thread(
            target=run, name="chaos-daemon", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("embedded server did not start in time")
        if self._error is not None:
            raise RuntimeError(
                f"embedded server failed to start: {self._error}"
            )
        return self

    @property
    def port(self) -> int:
        port = self.server.port
        assert port is not None
        return port

    def stop(self, timeout: float = 15.0) -> str:
        """Drain and join; returns the daemon's final state."""
        if self._loop is not None:
            loop = self._loop
            try:
                loop.call_soon_threadsafe(  # type: ignore[attr-defined]
                    self.server.initiate_drain
                )
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        return self.server.state

    def __enter__(self) -> "EmbeddedServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------

#: Base instances for the sweep, all definite at ``jobs=1``; label
#: renamings multiply them into distinct canonical keys so dedup does
#: not collapse the sweep onto a handful of flights.
_BASE_INSTANCES: tuple[tuple[tuple[str, ...], str], ...] = (
    (
        (
            "() => K",
            "K :: () => a.a.a",
            "K :: a.a.a => ()",
            "a :: a => a",
        ),
        "K :: a => ()",
    ),
    (
        (
            "() => K",
            "K :: () => a.a.a",
            "K :: a.a.a => ()",
            "a :: a => a",
        ),
        "K :: () => a.a.a",
    ),
    (
        ("() => A", "A :: () => b.b", "b :: b => b"),
        "A :: () => b.b",
    ),
)

_RENAMINGS: tuple[tuple[tuple[str, str], ...], ...] = (
    (),
    (("a", "c"), ("b", "d"), ("K", "L"), ("A", "B")),
    (("a", "e"), ("b", "f"), ("K", "M"), ("A", "C")),
)


def sweep_instances() -> list[tuple[list[str], str]]:
    """The deterministic instance pool the sweep draws from."""
    out: list[tuple[list[str], str]] = []
    for renaming in _RENAMINGS:
        for sigma, phi in _BASE_INSTANCES:
            lines = list(sigma)
            goal = phi
            for old, new in renaming:
                lines = [
                    line.replace(old, new) for line in lines
                ]
                goal = goal.replace(old, new)
            out.append((lines, goal))
    return out


def _oracle(instances: list[tuple[list[str], str]]) -> list[str]:
    """Clean in-process verdicts — the sweep's ground truth."""
    from repro.constraints import parse_constraint, parse_constraints
    from repro.reasoning import ImplicationProblem
    from repro.reasoning.dispatcher import solve

    verdicts = []
    for sigma_lines, phi_line in instances:
        problem = ImplicationProblem(
            parse_constraints("\n".join(sigma_lines)),
            parse_constraint(phi_line),
            "semistructured",
        )
        verdicts.append(solve(problem, jobs=1).answer.value)
    return verdicts


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def run_chaos_sweep(
    seed: int = 0,
    requests: int = 40,
    fault_rate: float = 0.3,
    watchdog_grace_ms: int = 500,
    retries: int = 4,
) -> dict:
    """The full chaos exercise; returns a JSON-serializable report.

    Three phases, each followed by a clean-drain assertion:

    1. **wire** — ``requests`` seeded solves through a
       :class:`ChaosProxy` at ``fault_rate``, scored against the
       in-process oracle.  A definite answer that contradicts the
       oracle is a *flip* (the one unforgivable outcome); an UNKNOWN
       where the oracle is definite is a *demotion* (honest);
       exhausted retries are *unavailable*.
    2. **reclaim** — a wedged solve (``wedge`` instrument) with a
       small budget must come back UNKNOWN with a ``hung_solve``
       fault, and the time past its budget must stay under twice the
       watchdog grace (the retire-and-respawn bound).
    3. **failover** — two daemons, kill the first mid-sweep; a
       client holding both endpoints must keep answering.

    ``report["pass"]`` is the conjunction of every gate;
    ``report["failures"]`` names each violated one.
    """
    from repro.server.client import ServerClient

    report: dict = {
        "seed": seed,
        "requests": requests,
        "fault_rate": fault_rate,
        "watchdog_grace_ms": watchdog_grace_ms,
    }
    failures: list[str] = []
    instances = sweep_instances()
    oracle = _oracle(instances)
    rng = random.Random(seed)

    # -- phase 1: wire chaos ------------------------------------------
    plan = ChaosPlan.from_spec(f"rate:{fault_rate}:{seed}")
    counts = {
        "ok_match": 0,
        "demoted": 0,
        "flips": 0,
        "unavailable": 0,
        "other": 0,
    }
    latencies_ms: list[float] = []
    grace = watchdog_grace_ms
    embedded = EmbeddedServer(
        ServerConfig(
            solver_threads=2,
            allow_delay=True,
            watchdog_grace_ms=grace,
            watchdog_hard_grace_ms=grace // 2,
        )
    ).start()
    proxy = ChaosProxy("127.0.0.1", embedded.port, plan).start()
    try:
        client = ServerClient(
            endpoints=[("127.0.0.1", proxy.port)],
            timeout=10.0,
            retries=retries,
            backoff_base=0.01,
            backoff_cap=0.2,
            jitter_seed=seed,
            failure_threshold=3,
            cooldown_s=0.05,
        )
        with client:
            for _ in range(requests):
                pick = rng.randrange(len(instances))
                sigma, phi = instances[pick]
                expected = oracle[pick]
                start = time.monotonic()
                try:
                    response = client.imply(sigma, phi, jobs=1)
                except Exception:  # noqa: BLE001 - chaos exhausts retries
                    counts["unavailable"] += 1
                    continue
                finally:
                    # One connection per request: chaos is planned by
                    # connection ordinal, so keep-alive pipelining
                    # would let one lucky socket dodge the whole plan.
                    client.close()
                latencies_ms.append((time.monotonic() - start) * 1e3)
                status = response.get("status")
                answer = response.get("answer")
                if status == "ok" and answer == expected:
                    counts["ok_match"] += 1
                elif status == "ok" and answer in ("true", "false"):
                    counts["flips"] += 1
                elif answer == "unknown" or status in (
                    "rejected",
                    "draining",
                ):
                    counts["demoted"] += 1
                else:
                    counts["other"] += 1
    finally:
        proxy.stop()
        wire_state = embedded.stop()
    answered = counts["ok_match"] + counts["demoted"]
    availability = answered / requests if requests else 1.0
    report["wire"] = {
        **counts,
        "availability": round(availability, 4),
        "p99_ms": round(_percentile(latencies_ms, 0.99), 3),
        "proxy": dict(proxy.counters),
        "drain_state": wire_state,
    }
    if counts["flips"]:
        failures.append(f"wire: {counts['flips']} verdict flip(s)")
    if availability < 0.99:
        failures.append(
            f"wire: availability {availability:.3f} below 0.99"
        )
    if wire_state != "stopped":
        failures.append(f"wire: daemon drain ended in {wire_state!r}")

    # -- phase 2: watchdog reclaim ------------------------------------
    budget_ms = 150
    embedded = EmbeddedServer(
        ServerConfig(
            solver_threads=2,
            allow_delay=True,
            watchdog_grace_ms=grace,
            watchdog_hard_grace_ms=grace // 2,
        )
    ).start()
    try:
        client = ServerClient(
            "127.0.0.1",
            embedded.port,
            timeout=10.0 + 4 * grace / 1e3,
            retries=0,
            jitter_seed=seed,
        )
        with client:
            start = time.monotonic()
            wedged = client.imply(
                *instances[0], jobs=1, budget_ms=budget_ms,
                no_dedup=True, wedge=True,
            )
            wall_ms = (time.monotonic() - start) * 1e3
            reclaim_ms = max(0.0, wall_ms - budget_ms)
            after = client.imply(*instances[0], jobs=1, no_dedup=True)
            stats = client.stats()
    finally:
        reclaim_state = embedded.stop()
    hung_events = [
        event["kind"]
        for event in wedged.get("faults", {}).get("events", [])
    ]
    retired = (
        stats.get("solver_pool", {}).get("retired", 0)
        if isinstance(stats, dict)
        else 0
    )
    report["reclaim"] = {
        "budget_ms": budget_ms,
        "wall_ms": round(wall_ms, 1),
        "reclaim_ms": round(reclaim_ms, 1),
        "bound_ms": 2 * grace,
        "wedged_answer": wedged.get("answer"),
        "fault_events": hung_events,
        "after_status": after.get("status"),
        "after_answer": after.get("answer"),
        "threads_retired": retired,
        "drain_state": reclaim_state,
    }
    if wedged.get("answer") != "unknown":
        failures.append(
            f"reclaim: wedged solve answered "
            f"{wedged.get('answer')!r}, not unknown"
        )
    if "hung_solve" not in hung_events:
        failures.append("reclaim: no hung_solve fault event on the wire")
    if reclaim_ms >= 2 * grace:
        failures.append(
            f"reclaim: {reclaim_ms:.0f} ms exceeds bound {2 * grace} ms"
        )
    if after.get("status") != "ok" or after.get("answer") != oracle[0]:
        failures.append("reclaim: post-wedge solve did not recover")
    if retired < 1:
        failures.append("reclaim: no solver thread was retired")
    if reclaim_state != "stopped":
        failures.append(
            f"reclaim: daemon drain ended in {reclaim_state!r}"
        )

    # -- phase 3: endpoint failover -----------------------------------
    first = EmbeddedServer(ServerConfig(solver_threads=1)).start()
    second = EmbeddedServer(ServerConfig(solver_threads=1)).start()
    killed_state = after_kill = None
    try:
        client = ServerClient(
            endpoints=[
                ("127.0.0.1", first.port),
                ("127.0.0.1", second.port),
            ],
            timeout=10.0,
            retries=retries,
            backoff_base=0.01,
            backoff_cap=0.2,
            jitter_seed=seed,
            failure_threshold=1,
            cooldown_s=0.5,
        )
        with client:
            before = client.imply(*instances[0], jobs=1)
            killed_state = first.stop()
            after_kill = client.imply(
                *instances[1], jobs=1, no_dedup=True
            )
            survivor_port = client.port
    finally:
        failover_state = second.stop()
    report["failover"] = {
        "before_status": before.get("status"),
        "killed_state": killed_state,
        "after_status": (after_kill or {}).get("status"),
        "after_answer": (after_kill or {}).get("answer"),
        "survivor_is_second": survivor_port == second.port,
        "drain_state": failover_state,
    }
    if (after_kill or {}).get("status") != "ok" or (
        after_kill or {}
    ).get("answer") != oracle[1]:
        failures.append("failover: client did not recover on endpoint B")
    if failover_state != "stopped":
        failures.append(
            f"failover: daemon drain ended in {failover_state!r}"
        )

    report["failures"] = failures
    report["pass"] = not failures
    return report
