"""The versioned JSON-lines wire protocol of the implication server.

One request or response per line, UTF-8 JSON objects, newline
terminated.  Every frame carries the protocol version under ``"v"``;
requests name their operation under ``"op"`` and may carry a client
correlation ``"id"`` that is echoed back verbatim.  The format is
deliberately self-describing and order-free so clients in any language
can speak it with a JSON library and a socket.

Operations
----------
``imply``
    ``sigma`` (list of constraint lines), ``phi`` (one constraint
    line), optional ``context`` (``semistructured``/``M``/``M+``/
    ``M+f``), ``schema`` (XML-Data text, required for typed contexts),
    ``budget_ms`` (client deadline, propagated into the solver's
    ``Budget`` and enforced while queued), ``jobs``, ``no_dedup``
    (opt out of single-flight coalescing), ``delay_ms`` (testing
    instrument; honored only when the daemon allows it).
``check``
    ``graph`` (the ``repro.graph.serialize`` dict format) +
    ``constraints`` (list of lines); returns the validation summary.
``query``
    constraint-aware query operations.  ``action`` picks one:
    ``contains`` (``sigma`` lines, ``left``/``right`` patterns,
    optional ``context``/``schema``) returns the three-valued
    containment verdict, method and witness; ``optimize`` (``sigma``
    lines + ``branches`` list) returns the optimized union with
    pruning/rewriting accounting.
``health``
    liveness + lifecycle state (``serving``/``draining``).
``stats``
    server counters, queue depth, warm-pool and cache statistics.
``shutdown``
    initiates a graceful drain (same path as SIGTERM).

Response statuses
-----------------
``ok``
    the operation ran; payload depends on the op.
``overloaded``
    admission control shed the request (bounded queue full, or the
    client budget provably cannot survive the current queue wait);
    carries ``retry_after_ms``.
``draining``
    the server is shutting down and refuses new work.
``rejected``
    the request was admitted but its deadline expired while queued —
    the answer is honestly ``unknown``, never a stale definite verdict.
``error``
    the request was malformed or the solver raised; carries ``error``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ProtocolError

#: Bump on incompatible wire-format changes; both ends check it.
PROTOCOL_VERSION = 1

#: Hard cap on a single frame — a client streaming an unbounded line
#: must not be able to balloon the daemon's memory.
MAX_LINE_BYTES = 8 << 20

#: The closed set of request operations.
OPS = ("imply", "check", "query", "health", "stats", "shutdown")

#: Response statuses (closed vocabulary; clients switch on these).
STATUSES = ("ok", "overloaded", "draining", "rejected", "error")


def encode(message: dict) -> bytes:
    """One wire frame: compact JSON + newline."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def parse_request(line: bytes | str) -> dict:
    """Validate one request frame; raises :class:`ProtocolError`.

    Only the envelope is validated here (shape, version, operation);
    per-op payload errors surface later as ``error`` responses so the
    connection survives a bad request.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"frame of {len(line)} bytes exceeds the "
                f"{MAX_LINE_BYTES}-byte limit"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not UTF-8: {exc}") from None
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame is not a JSON object")
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this server speaks v{PROTOCOL_VERSION})"
        )
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown operation {op!r} (expected one of {', '.join(OPS)})"
        )
    request_id = message.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError("request id must be a string or int")
    return message


def parse_response(line: bytes | str) -> dict:
    """Client-side frame validation; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"response is not UTF-8: {exc}") from None
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"response is not JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("response is not a JSON object")
    if message.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported response version {message.get('v')!r}"
        )
    if message.get("status") not in STATUSES:
        raise ProtocolError(
            f"unknown response status {message.get('status')!r}"
        )
    return message


# ---------------------------------------------------------------------------
# Response builders (the daemon's only way to emit frames, so every
# response carries the version and echoes the correlation id).
# ---------------------------------------------------------------------------


def _base(status: str, request_id: Any) -> dict:
    out: dict = {"v": PROTOCOL_VERSION, "status": status}
    if request_id is not None:
        out["id"] = request_id
    return out


def ok_response(request_id: Any, **fields: Any) -> dict:
    out = _base("ok", request_id)
    out.update(fields)
    return out


def error_response(request_id: Any, message: str) -> dict:
    out = _base("error", request_id)
    out["error"] = message
    return out


def overloaded_response(request_id: Any, retry_after_ms: int) -> dict:
    out = _base("overloaded", request_id)
    out["retry_after_ms"] = max(1, int(retry_after_ms))
    return out


def draining_response(request_id: Any) -> dict:
    out = _base("draining", request_id)
    out["error"] = "server is draining; no new work accepted"
    return out


def rejected_response(request_id: Any, reason: str) -> dict:
    out = _base("rejected", request_id)
    out["answer"] = "unknown"
    out["reason"] = reason
    return out


def hung_response(request_id: Any, reason: str) -> dict:
    """The honest answer for a solve the watchdog had to abandon.

    Same ``rejected``/UNKNOWN shape as a dead-budget rejection — a
    hung solve proves nothing about the instance — plus a ``faults``
    record carrying the ``hung_solve`` event (the wire shape of
    :meth:`repro.reasoning.result.FaultReport.to_dict`), so the
    abandonment is as auditable remotely as a worker crash is.
    """
    out = rejected_response(request_id, reason)
    out["faults"] = {
        "retries": 0,
        "degradations": 0,
        "answered_by": "",
        "events": [
            {
                "kind": "hung_solve",
                "engine": "watchdog",
                "attempt": 0,
                "detail": reason[:200],
            }
        ],
    }
    return out


def result_to_wire(
    result: Any,
    fragment: str,
    context: str,
    countermodel: dict | None = None,
) -> dict:
    """The serializable payload of a solved ``imply`` request.

    ``countermodel`` is passed explicitly (already renamed into the
    requester's alphabet and serialized) because the follower path of
    single-flight dedup rebuilds it per requester; faults and cache
    participation travel verbatim so a degraded or replayed answer is
    exactly as auditable remotely as locally.
    """
    payload: dict = {
        "answer": result.answer.value,
        "method": result.method,
        "decidable": result.decidable,
        "complexity": result.complexity,
        "fragment": fragment,
        "context": context,
        "notes": list(result.notes),
        "faults": result.faults.to_dict(),
    }
    if result.cache is not None:
        payload["cache"] = result.cache.to_dict()
    if countermodel is not None:
        payload["countermodel"] = countermodel
    return payload
