"""The asyncio implication daemon: ``repro serve``.

One process, one event loop, a bounded admission queue, a small pool
of solver threads, and the process-wide warm worker pool underneath —
the composition point where the library's robustness machinery
(supervised pools, monotonic budgets, the cross-request cache) meets
concurrent load.  The design follows EdgeDB's server discipline
(bounded queues and explicit shedding instead of unbounded buffering;
drain-then-exit) and Twisted's one-reactor service idiom.

Robustness properties, in order of the request path:

* **Admission control.**  ``imply``/``check`` work enters a bounded
  queue; when it is full the request is *shed* with an explicit
  ``overloaded`` response carrying ``retry_after_ms`` — the daemon
  never buffers unboundedly.  A client budget (``budget_ms``) becomes
  an absolute monotonic deadline at admission: a request whose budget
  provably cannot survive the estimated queue wait is rejected up
  front, and one whose deadline expires *while queued* is rejected at
  dequeue with an honest UNKNOWN — never solved against a dead budget,
  never answered with a stale definite verdict.
* **Single-flight dedup.**  Concurrent requests with the same
  canonical key coalesce onto one solve
  (:mod:`repro.server.singleflight`); followers get the leader's
  outcome with certificates renamed into their own alphabets.
  Disabled under fault injection (an injected run's purpose is to
  exercise the runtime, so every request must run) and per-request via
  ``no_dedup``.
* **Graceful drain.**  SIGTERM, SIGINT or a ``shutdown`` request moves
  the server to ``draining``: admitted work (queued and in-flight)
  completes and is answered, new work is refused with a ``draining``
  status, ``health``/``stats`` keep answering, and once the queue is
  empty the daemon retires the warm pool, flushes cache counters, and
  exits 0 under the established exit-code contract.

Faults never hide: ``result.faults`` (including injected ones) travels
over the wire verbatim, so a degraded answer is as auditable remotely
as locally.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import os
import signal
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.checking import check_all
from repro.constraints import parse_constraint, parse_constraints
from repro.errors import (
    GraphError,
    HungSolveError,
    ProtocolError,
    ReproError,
)
from repro.graph.serialize import from_dict as graph_from_dict
from repro.graph.serialize import to_dict as graph_to_dict
from repro.reasoning import (
    ImplicationProblem,
    classify,
    solve,
)
from repro.reasoning.cache import ImplicationCache
from repro.reasoning.canonical import (
    CanonicalForm,
    canonicalize_problem,
    rename_graph,
)
from repro.reasoning.faultinject import FaultPlan
from repro.reasoning.runtime import retire_warm_pool, warm_pool_stats
from repro.reasoning.shm import CancelFlag
from repro.reasoning.watchdog import RetiringSolverPool, SolveWatchdog
from repro.server import protocol
from repro.server.singleflight import FlightOutcome, SingleFlightTable

#: Prior for the queue-wait estimator before any solve has completed.
#: Deliberately small: an idle server should not shed its first
#: requests on a pessimistic guess.
_EWMA_PRIOR_S = 0.02

#: Exponential-moving-average weight of the newest solve time.
_EWMA_ALPHA = 0.2

#: How long ``stop()`` waits for connection handlers to flush their
#: final responses before cancelling them.
_FLUSH_GRACE_S = 0.25


@dataclass
class ServerConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 0
    max_queue: int = 64
    solver_threads: int = 2
    jobs: int | str = "auto"
    max_respawns: int = 2
    #: Default per-request budget applied when the client sends none
    #: (``None`` = unlimited, the library default).
    default_budget_ms: int | None = None
    cache: ImplicationCache | None = None
    inject: FaultPlan | None = None
    #: Honor the ``delay_ms`` and ``wedge`` request fields (testing
    #: instruments for queue/drain/watchdog behavior, like
    #: ``--inject`` is for fault paths).  ``delay_ms`` sleeps
    #: cooperatively (polls the cancel flag); ``wedge`` spins without
    #: polling, modelling a solve that stopped cooperating.
    allow_delay: bool = False
    #: Write the bound port here after startup (atomic), for smoke
    #: tests and supervisors that start the daemon on port 0.
    port_file: str | None = None
    #: Grace past a solve's deadline before the watchdog trips its
    #: cooperative cancel flag.  0 disables the watchdog entirely.
    watchdog_grace_ms: int = 5000
    #: Further grace after the cooperative cancel before the wedged
    #: solver thread is retired and replaced (None = same as
    #: ``watchdog_grace_ms``).
    watchdog_hard_grace_ms: int | None = None
    #: Implicit watchdog deadline for solves that arrived without a
    #: budget (None = unbudgeted solves are not watched).
    watchdog_max_solve_ms: int | None = None
    #: Per-pool-worker RLIMIT_AS ceiling in MiB (None = uncapped).
    max_worker_mb: int | None = None
    #: Degrade pooled solves to in-process sharded scans once this
    #: process's RSS passes this many MiB (None = no guard).
    memory_guard_mb: int | None = None


@dataclass
class _Admitted:
    """One unit of work that passed admission control."""

    op: str
    solve_fn: Callable[[], FlightOutcome]
    deadline: float | None = None
    key: str | None = None
    future: "asyncio.Future[FlightOutcome] | None" = None
    admitted_at: float = 0.0
    #: The solve's cooperative-cancel flag (daemon-owned; the watchdog
    #: trips it past deadline + grace).  None when unwatched.
    cancel: CancelFlag | None = None


class ImplicationServer:
    """The daemon.  ``run()`` is the blocking entry point; ``start``/
    ``stop`` are the asyncio lifecycle for embedding (tests run it in
    a background thread with its own loop)."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.state = "idle"  # idle -> serving -> draining -> stopped
        self.port: int | None = None
        self._started_at = 0.0
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue[_Admitted] | None = None
        self._flights = SingleFlightTable()
        self._workers: list[asyncio.Task] = []
        self._connections: set[asyncio.Task] = set()
        self._drain_event: asyncio.Event | None = None
        self._solver_pool: RetiringSolverPool | None = None
        self._watchdog: SolveWatchdog | None = None
        self._leaked_cancels: list = []
        self._ewma_solve_s: float | None = None
        self.counters = {
            "requests": 0,
            "imply": 0,
            "check": 0,
            "query": 0,
            "health": 0,
            "stats": 0,
            "shutdown": 0,
            "solved": 0,
            "errors": 0,
            "shed": 0,
            "rejected_upfront": 0,
            "rejected_deadline": 0,
            "dedup_followers": 0,
            "drain_refusals": 0,
            "protocol_errors": 0,
            "hung_solves": 0,
        }

    # -- lifecycle ----------------------------------------------------

    def run(self, announce: Callable[[str], None] | None = None) -> int:
        """Start, serve until drained, stop.  Returns the exit code
        (0 = clean drain) under the CLI's exit-code contract."""
        return asyncio.run(self._amain(announce))

    async def _amain(self, announce: Callable[[str], None] | None) -> int:
        await self.start()
        if announce is not None:
            announce(
                f"repro-server listening on "
                f"{self.config.host}:{self.port} (pid {os.getpid()})"
            )
        try:
            await self.wait_drained()
        finally:
            await self.stop()
        return 0

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._drain_event = asyncio.Event()
        self._solver_pool = RetiringSolverPool(self.config.solver_threads)
        if self.config.watchdog_grace_ms > 0:
            self._watchdog = SolveWatchdog()
        self._workers = [
            loop.create_task(self._worker())
            for _ in range(self.config.solver_threads)
        ]
        self._server = await asyncio.start_server(
            self._on_connection,
            self.config.host,
            self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self.state = "serving"
        for signum in (signal.SIGTERM, signal.SIGINT):
            # In a background-thread loop (tests) signal handlers are
            # unavailable; drain is then driven by the shutdown op.
            with contextlib.suppress(
                NotImplementedError, RuntimeError, ValueError
            ):
                loop.add_signal_handler(signum, self.initiate_drain)
        if self.config.port_file:
            self._write_port_file(self.config.port_file, self.port)

    @staticmethod
    def _write_port_file(path: str, port: int) -> None:
        directory = os.path.dirname(os.path.abspath(path)) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".repro-port-")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(f"{port}\n")
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def initiate_drain(self) -> None:
        """Move to draining (idempotent; SIGTERM/SIGINT/shutdown op)."""
        if self.state == "serving":
            self.state = "draining"
        if self._drain_event is not None:
            self._drain_event.set()

    async def wait_drained(self) -> None:
        """Block until a drain is requested and admitted work finishes."""
        assert self._drain_event is not None and self._queue is not None
        await self._drain_event.wait()
        # Everything admitted before the drain completes and is
        # answered; new work is refused in _dispatch meanwhile.
        await self._queue.join()

    async def stop(self) -> None:
        """Tear down: listener, connections, workers, warm pool."""
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        # Give handlers awaiting already-resolved flights a moment to
        # write their final frames, then close the stragglers (idle
        # keep-alive connections block in readline() forever).
        deadline = time.monotonic() + _FLUSH_GRACE_S
        while self._connections and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        for worker in self._workers:
            worker.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None
        if self._solver_pool is not None:
            # Never joins: a wedged solver thread (the very thing the
            # watchdog exists for) must not block a clean drain.
            self._solver_pool.shutdown()
            self._solver_pool = None
        # Reclaim the cancel flags parked by hung solves: a wedged
        # thread still polling one observes a released flag as
        # "cancelled" (CancelFlag.is_set is defensive), so unlinking
        # here is safe and a long-lived embedder leaks no segments.
        for cancel in self._leaked_cancels:
            with contextlib.suppress(Exception):
                cancel.release()
        self._leaked_cancels = []
        if self.config.cache is not None:
            self.config.cache.flush_counters()
        # The long-lived process owns the warm pool; retire it here so
        # a drained daemon leaves no workers behind.  The atexit
        # backstop (repro.reasoning.runtime) makes this idempotent.
        retire_warm_pool()
        self.state = "stopped"

    # -- connections --------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Oversized frame: the stream cannot be resynced.
                    self.counters["protocol_errors"] += 1
                    writer.write(
                        protocol.encode(
                            protocol.error_response(
                                None,
                                f"frame exceeds "
                                f"{protocol.MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = protocol.parse_request(line)
                except ProtocolError as exc:
                    self.counters["protocol_errors"] += 1
                    response = protocol.error_response(None, str(exc))
                else:
                    response = await self._dispatch(request)
                writer.write(protocol.encode(response))
                await writer.drain()
        except asyncio.CancelledError:
            pass
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            self._connections.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    # -- dispatch -----------------------------------------------------

    async def _dispatch(self, request: dict) -> dict:
        op = request["op"]
        request_id = request.get("id")
        self.counters["requests"] += 1
        self.counters[op] += 1
        if op == "health":
            return self._health_response(request_id)
        if op == "stats":
            return self._stats_response(request_id)
        if op == "shutdown":
            self.initiate_drain()
            return protocol.ok_response(request_id, state=self.state)
        if self.state != "serving":
            self.counters["drain_refusals"] += 1
            return protocol.draining_response(request_id)
        if op == "imply":
            return await self._handle_imply(request)
        if op == "query":
            return await self._handle_query(request)
        return await self._handle_check(request)

    def _health_response(self, request_id: Any) -> dict:
        return protocol.ok_response(
            request_id,
            state=self.state,
            uptime_ms=round((time.monotonic() - self._started_at) * 1e3, 1),
        )

    def _stats_response(self, request_id: Any) -> dict:
        imply_total = self._flights.led + self._flights.coalesced
        stats: dict = {
            "state": self.state,
            "uptime_ms": round(
                (time.monotonic() - self._started_at) * 1e3, 1
            ),
            "queue": {
                "depth": self._queue.qsize() if self._queue else 0,
                "max": self.config.max_queue,
            },
            "inflight": self._flights.inflight(),
            "dedup": {
                "led": self._flights.led,
                "coalesced": self._flights.coalesced,
                "hit_rate": (
                    self._flights.coalesced / imply_total
                    if imply_total
                    else 0.0
                ),
            },
            "ewma_solve_ms": (
                None
                if self._ewma_solve_s is None
                else round(self._ewma_solve_s * 1e3, 3)
            ),
            "counters": dict(self.counters),
            "warm_pool": warm_pool_stats(),
        }
        if self._solver_pool is not None:
            stats["solver_pool"] = self._solver_pool.stats()
        if self._watchdog is not None:
            stats["watchdog"] = self._watchdog.stats()
        if self.config.cache is not None:
            stats["cache"] = self.config.cache.stats()
        return protocol.ok_response(request_id, **stats)

    # -- imply --------------------------------------------------------

    async def _handle_imply(self, request: dict) -> dict:
        request_id = request.get("id")
        try:
            problem, fragment = self._parse_imply(request)
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            self.counters["errors"] += 1
            return protocol.error_response(
                request_id, f"bad imply request: {exc}"
            )
        budget_ms = request.get("budget_ms", self.config.default_budget_ms)
        deadline = (
            None
            if budget_ms is None
            else time.monotonic() + float(budget_ms) / 1e3
        )
        delay_ms = int(request.get("delay_ms") or 0)

        # Dedup is off under injection: coalescing would let one
        # injected run answer for many, hiding the runtime exercise
        # the injection exists to force.
        form: CanonicalForm | None = None
        dedup = self.config.inject is None and not request.get("no_dedup")
        if dedup:
            form = canonicalize_problem(problem)
            is_leader, flight = self._flights.join_or_lead(form.key)
            if not is_leader:
                self.counters["dedup_followers"] += 1
                outcome = await asyncio.shield(flight.future)
                return self._imply_response(
                    request_id, outcome, form, fragment, request, "follower"
                )
            cancel = self._make_cancel(deadline)
            admission_error = self._admit(
                _Admitted(
                    op="imply",
                    solve_fn=functools.partial(
                        self._solve_blocking,
                        problem,
                        deadline,
                        delay_ms,
                        form,
                        request,
                        cancel,
                    ),
                    deadline=deadline,
                    key=form.key,
                    admitted_at=time.monotonic(),
                    cancel=cancel,
                ),
                request_id,
                deadline,
            )
            if admission_error is not None:
                if cancel is not None:
                    with contextlib.suppress(Exception):
                        cancel.release()
                self._flights.abandon(form.key)
                return admission_error
            outcome = await asyncio.shield(flight.future)
            return self._imply_response(
                request_id, outcome, form, fragment, request, "leader"
            )

        future: asyncio.Future[FlightOutcome] = (
            asyncio.get_running_loop().create_future()
        )
        cancel = self._make_cancel(deadline)
        admission_error = self._admit(
            _Admitted(
                op="imply",
                solve_fn=functools.partial(
                    self._solve_blocking,
                    problem,
                    deadline,
                    delay_ms,
                    None,
                    request,
                    cancel,
                ),
                deadline=deadline,
                future=future,
                admitted_at=time.monotonic(),
                cancel=cancel,
            ),
            request_id,
            deadline,
        )
        if admission_error is not None:
            if cancel is not None:
                with contextlib.suppress(Exception):
                    cancel.release()
            return admission_error
        outcome = await asyncio.shield(future)
        return self._imply_response(
            request_id, outcome, None, fragment, request, "solo"
        )

    def _make_cancel(self, deadline: float | None) -> CancelFlag | None:
        """A cooperative-cancel flag, but only when it can ever fire.

        A flag is a shared-memory segment; allocating one per request
        would tax every solve for a watchdog that may never trip.  So
        one exists only when the watchdog is on *and* this solve will
        actually be watched (it has a deadline, or the server imposes
        an implicit one via ``watchdog_max_solve_ms``).
        """
        if self._watchdog is None:
            return None
        if deadline is None and self.config.watchdog_max_solve_ms is None:
            return None
        try:
            return CancelFlag.create()
        except Exception:  # noqa: BLE001 - degraded: unwatchable cancel
            return None

    def _parse_imply(
        self, request: dict
    ) -> tuple[ImplicationProblem, str]:
        sigma_lines = request.get("sigma")
        if not isinstance(sigma_lines, list) or not all(
            isinstance(line, str) for line in sigma_lines
        ):
            raise ValueError("sigma must be a list of constraint lines")
        phi_line = request.get("phi")
        if not isinstance(phi_line, str):
            raise ValueError("phi must be a constraint line")
        sigma = parse_constraints("\n".join(sigma_lines))
        phi = parse_constraint(phi_line)
        context = request.get("context", "semistructured")
        schema = None
        schema_text = request.get("schema")
        if schema_text is not None:
            from repro.xml import schema_from_xml_data

            schema = schema_from_xml_data(schema_text)
        problem = ImplicationProblem(sigma, phi, context, schema=schema)
        fragment = classify(problem.sigma, problem.phi).value
        return problem, fragment

    # -- admission control --------------------------------------------

    def _admit(
        self,
        item: _Admitted,
        request_id: Any,
        deadline: float | None,
    ) -> dict | None:
        """Admit ``item`` to the bounded queue, or answer why not.

        Returns ``None`` on admission, else the shed/reject response.
        Runs entirely without ``await`` so single-flight leaders can
        never strand followers between joining and enqueueing.
        """
        assert self._queue is not None
        depth = self._queue.qsize()
        wait_estimate = depth * (self._ewma_solve_s or _EWMA_PRIOR_S)
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= wait_estimate:
                # The budget cannot survive the queue: reject up front
                # instead of letting the deadline die in line.
                self.counters["rejected_upfront"] += 1
                return protocol.overloaded_response(
                    request_id, retry_after_ms=int(wait_estimate * 1e3) + 1
                )
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.counters["shed"] += 1
            retry = (self._ewma_solve_s or _EWMA_PRIOR_S) * max(1, depth)
            return protocol.overloaded_response(
                request_id, retry_after_ms=int(retry * 1e3) + 1
            )
        return None

    # -- the solver workers -------------------------------------------

    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            item = await self._queue.get()
            try:
                if (
                    item.deadline is not None
                    and time.monotonic() > item.deadline
                ):
                    # Admitted, but the client budget died in line:
                    # answering from a stale solve would be a lie, so
                    # the only honest payload is UNKNOWN/rejected.
                    self.counters["rejected_deadline"] += 1
                    waited_ms = (
                        time.monotonic() - item.admitted_at
                    ) * 1e3
                    self._discard_cancel(item)
                    outcome = FlightOutcome(
                        kind="rejected",
                        reason=(
                            "deadline expired while queued "
                            f"(waited {waited_ms:.0f} ms)"
                        ),
                    )
                else:
                    outcome = await self._run_solve(item)
                    if outcome.kind == "solved":
                        self.counters["solved"] += 1
                        elapsed_s = outcome.elapsed_ms / 1e3
                        self._ewma_solve_s = (
                            elapsed_s
                            if self._ewma_solve_s is None
                            else (1 - _EWMA_ALPHA) * self._ewma_solve_s
                            + _EWMA_ALPHA * elapsed_s
                        )
                    elif outcome.kind == "error":
                        self.counters["errors"] += 1
                self._resolve(item, outcome)
            except asyncio.CancelledError:
                self._resolve(
                    item,
                    FlightOutcome(
                        kind="error", error="server shutting down"
                    ),
                )
                raise
            except Exception as exc:  # noqa: BLE001 - daemon must survive
                self.counters["errors"] += 1
                self._resolve(
                    item,
                    FlightOutcome(
                        kind="error",
                        error=f"{type(exc).__name__}: {exc}",
                    ),
                )
            finally:
                self._queue.task_done()

    async def _run_solve(self, item: _Admitted) -> FlightOutcome:
        """Run one admitted item on the solver pool, watched.

        The watchdog escalates in two steps: past ``deadline + grace``
        it trips the solve's cooperative :class:`CancelFlag` (polled
        by every scan/chase of the portfolio); past a further hard
        grace it retires the wedged solver thread — the pool spawns a
        replacement so capacity is restored — and fails the future
        with :class:`HungSolveError`.  Either way the caller gets an
        honest UNKNOWN; a definite certificate is kept only when the
        solve delivered it itself (late but sound answers stand — the
        certificate is verifiable regardless of how long it took).
        """
        assert self._solver_pool is not None
        pool = self._solver_pool
        future = pool.submit(item.solve_fn)
        handle = None
        if self._watchdog is not None:
            wd_deadline = item.deadline
            max_ms = self.config.watchdog_max_solve_ms
            if wd_deadline is None and max_ms is not None:
                wd_deadline = item.admitted_at + max_ms / 1e3
            if wd_deadline is not None:
                hard_ms = self.config.watchdog_hard_grace_ms
                if hard_ms is None:
                    hard_ms = self.config.watchdog_grace_ms
                cancel = item.cancel
                handle = self._watchdog.watch(
                    deadline=wd_deadline,
                    grace_s=self.config.watchdog_grace_ms / 1e3,
                    hard_grace_s=hard_ms / 1e3,
                    on_cancel=(
                        cancel.set if cancel is not None else lambda: None
                    ),
                    on_hang=lambda: pool.retire_running(
                        future,
                        HungSolveError(
                            "solve exceeded its deadline and grace, "
                            "ignored cooperative cancellation, and was "
                            "abandoned; the solver thread was retired "
                            "and replaced"
                        ),
                    ),
                    label=item.op,
                )
        hung = False
        try:
            outcome = await asyncio.wrap_future(future)
        except HungSolveError as exc:
            hung = True
            outcome = FlightOutcome(kind="hung", reason=str(exc))
        finally:
            if handle is not None:
                handle.close()
        if item.cancel is not None:
            if hung:
                # The wedged thread may still be polling the flag, so
                # releasing it now would pull the buffer out from
                # under an abandoned reader.  Park it until stop(),
                # when a released flag reads as "cancelled" to any
                # straggler and the segment can be reclaimed.
                self._leaked_cancels.append(item.cancel)
                item.cancel = None
            else:
                self._discard_cancel(item)
        if hung:
            self.counters["hung_solves"] += 1
            return outcome
        if handle is not None and handle.tripped:
            if (
                outcome.kind == "solved"
                and outcome.result is not None
                and outcome.result.answer.is_definite
            ):
                return outcome
            self.counters["hung_solves"] += 1
            return FlightOutcome(
                kind="hung",
                reason=(
                    "solve exceeded its deadline and grace; "
                    "cooperatively cancelled by the watchdog"
                ),
                elapsed_ms=outcome.elapsed_ms,
            )
        return outcome

    @staticmethod
    def _discard_cancel(item: _Admitted) -> None:
        if item.cancel is not None:
            with contextlib.suppress(Exception):
                item.cancel.release()
            item.cancel = None

    def _resolve(self, item: _Admitted, outcome: FlightOutcome) -> None:
        if item.key is not None:
            self._flights.resolve(item.key, outcome)
        elif item.future is not None and not item.future.done():
            item.future.set_result(outcome)

    def _solve_blocking(
        self,
        problem: ImplicationProblem,
        deadline: float | None,
        delay_ms: int,
        form: CanonicalForm | None,
        request: dict,
        cancel: CancelFlag | None = None,
    ) -> FlightOutcome:
        """Runs on a solver thread; must never raise."""
        start = time.monotonic()
        if self.config.allow_delay and request.get("wedge"):
            # Testing instrument: a solve that stopped cooperating —
            # it never polls its cancel flag, so only the watchdog's
            # hard escalation (thread retirement) can reclaim the
            # capacity it occupies.  Bounded by daemon lifetime so a
            # stopped test server never leaks a spinning thread.
            while self.state != "stopped":
                time.sleep(0.05)
            return FlightOutcome(kind="rejected", reason="server stopped")
        if delay_ms > 0 and self.config.allow_delay:
            # Cooperative counterpart of ``wedge``: sleeps in short
            # slices and honors the watchdog's cancel between them.
            end = time.monotonic() + delay_ms / 1e3
            while True:
                left = end - time.monotonic()
                if left <= 0:
                    break
                if cancel is not None and cancel.is_set:
                    return FlightOutcome(
                        kind="rejected",
                        reason="cancelled by the watchdog during delay",
                    )
                time.sleep(min(0.05, left))
        remaining = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return FlightOutcome(
                    kind="rejected",
                    reason="deadline expired before the solve started",
                )
        jobs = request.get("jobs", self.config.jobs)
        try:
            result = solve(
                problem,
                jobs=jobs,
                deadline=remaining,
                max_respawns=self.config.max_respawns,
                inject=self.config.inject,
                cache=self.config.cache,
                cancel=cancel,
                max_worker_mb=self.config.max_worker_mb,
                memory_guard_mb=self.config.memory_guard_mb,
            )
        except (ReproError, ValueError) as exc:
            return FlightOutcome(
                kind="error", error=f"{type(exc).__name__}: {exc}"
            )
        canonical_cm = None
        if form is not None and result.countermodel is not None:
            with contextlib.suppress(GraphError):
                canonical_cm = graph_to_dict(
                    rename_graph(
                        result.countermodel,
                        form.label_map,
                        form.class_map,
                    )
                )
        return FlightOutcome(
            kind="solved",
            result=result,
            canonical_countermodel=canonical_cm,
            elapsed_ms=(time.monotonic() - start) * 1e3,
        )

    def _imply_response(
        self,
        request_id: Any,
        outcome: FlightOutcome,
        form: CanonicalForm | None,
        fragment: str,
        request: dict,
        role: str,
    ) -> dict:
        if outcome.kind == "rejected":
            return protocol.rejected_response(request_id, outcome.reason)
        if outcome.kind == "hung":
            return protocol.hung_response(request_id, outcome.reason)
        if outcome.kind == "error":
            return protocol.error_response(request_id, outcome.error)
        result = outcome.result
        countermodel = None
        if request.get("want_countermodel", True):
            if form is not None and outcome.canonical_countermodel:
                # Rename the shared canonical certificate back into
                # *this* requester's alphabet.
                countermodel = graph_to_dict(
                    rename_graph(
                        graph_from_dict(outcome.canonical_countermodel),
                        form.inverse_label_map(),
                        form.inverse_class_map(),
                    )
                )
            elif form is None and result.countermodel is not None:
                with contextlib.suppress(GraphError):
                    countermodel = graph_to_dict(result.countermodel)
        response = protocol.ok_response(
            request_id,
            **protocol.result_to_wire(
                result,
                fragment,
                str(request.get("context", "semistructured")),
                countermodel=countermodel,
            ),
        )
        response["dedup"] = {"role": role}
        response["elapsed_ms"] = round(outcome.elapsed_ms, 3)
        return response

    # -- query --------------------------------------------------------

    async def _handle_query(self, request: dict) -> dict:
        """Constraint-aware query ops: ``contains`` and ``optimize``.

        Rides the same admission queue and solver threads as
        ``imply``/``check`` and shares the daemon's implication cache,
        so repeated containment questions across requests replay
        stored verdicts.
        """
        request_id = request.get("id")
        try:
            action = request.get("action")
            if action not in ("contains", "optimize"):
                raise ValueError(
                    f"action must be 'contains' or 'optimize', "
                    f"got {action!r}"
                )
            sigma_lines = request.get("sigma")
            if not isinstance(sigma_lines, list) or not all(
                isinstance(line, str) for line in sigma_lines
            ):
                raise ValueError("sigma must be a list of constraint lines")
            sigma = parse_constraints("\n".join(sigma_lines))
            context = str(request.get("context", "semistructured"))
            schema = None
            schema_text = request.get("schema")
            if schema_text is not None:
                from repro.xml import schema_from_xml_data

                schema = schema_from_xml_data(schema_text)
            if action == "contains":
                left = request["left"]
                right = request["right"]
                if not isinstance(left, str) or not isinstance(right, str):
                    raise ValueError("left/right must be pattern strings")
                branches = None
            else:
                branches = request.get("branches")
                if not isinstance(branches, list) or not all(
                    isinstance(b, str) for b in branches
                ) or not branches:
                    raise ValueError(
                        "branches must be a non-empty list of patterns"
                    )
                left = right = None
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            self.counters["errors"] += 1
            return protocol.error_response(
                request_id, f"bad query request: {exc}"
            )
        budget_ms = request.get("budget_ms", self.config.default_budget_ms)
        deadline = (
            None
            if budget_ms is None
            else time.monotonic() + float(budget_ms) / 1e3
        )

        def run_query() -> FlightOutcome:
            from repro.query import (
                QueryContainmentChecker,
                WordQueryOptimizer,
                optimize_rpq_union,
            )

            start = time.monotonic()
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return FlightOutcome(
                        kind="rejected",
                        reason="deadline expired before the solve started",
                    )
            try:
                if action == "contains":
                    checker = QueryContainmentChecker(
                        sigma,
                        context=context,
                        schema=schema,
                        cache=self.config.cache,
                        jobs=self.config.jobs,
                        deadline=remaining,
                    )
                    result = checker.contains(left, right)
                    wire = {
                        "action": "contains",
                        "verdict": result.verdict.value,
                        "method": result.method,
                        "decidable": result.decidable,
                        "witness": (
                            None
                            if result.witness is None
                            else str(result.witness)
                        ),
                        "notes": list(result.notes),
                        "stats": dict(checker.stats),
                    }
                elif any("|" in b or "*" in b or "(" in b for b in branches):
                    checker = QueryContainmentChecker(
                        sigma,
                        context=context,
                        schema=schema,
                        cache=self.config.cache,
                        jobs=self.config.jobs,
                        deadline=remaining,
                    )
                    report = optimize_rpq_union(branches, checker)
                    wire = {
                        "action": "optimize",
                        "original": list(report.original),
                        "optimized": list(report.optimized),
                        "pruned": [list(pair) for pair in report.pruned],
                        "emptied": list(report.emptied),
                        "branches_saved": report.branches_saved,
                        "notes": list(report.notes),
                        "stats": dict(checker.stats),
                    }
                else:
                    optimizer = WordQueryOptimizer(
                        sigma,
                        cache=self.config.cache,
                        jobs=self.config.jobs,
                        deadline=remaining,
                    )
                    report = optimizer.optimize_union(branches)
                    wire = {
                        "action": "optimize",
                        "original": [str(b) for b in report.original],
                        "optimized": [str(b) for b in report.optimized],
                        "pruned": [
                            [str(a), str(b)] for a, b in report.pruned
                        ],
                        "rewrites": [
                            [str(a), str(b)] for a, b in report.rewrites
                        ],
                        "branches_saved": report.branches_saved,
                        "labels_saved": report.labels_saved,
                        "notes": list(report.notes),
                        "stats": dict(optimizer.stats),
                    }
            except (ReproError, ValueError) as exc:
                return FlightOutcome(
                    kind="error", error=f"{type(exc).__name__}: {exc}"
                )
            return FlightOutcome(
                kind="solved",
                wire=wire,
                elapsed_ms=(time.monotonic() - start) * 1e3,
            )

        future: asyncio.Future[FlightOutcome] = (
            asyncio.get_running_loop().create_future()
        )
        admission_error = self._admit(
            _Admitted(
                op="query",
                solve_fn=run_query,
                deadline=deadline,
                future=future,
                admitted_at=time.monotonic(),
            ),
            request_id,
            deadline,
        )
        if admission_error is not None:
            return admission_error
        outcome = await asyncio.shield(future)
        if outcome.kind == "rejected":
            return protocol.rejected_response(request_id, outcome.reason)
        if outcome.kind == "hung":
            return protocol.hung_response(request_id, outcome.reason)
        if outcome.kind == "error":
            return protocol.error_response(request_id, outcome.error)
        response = protocol.ok_response(request_id, **(outcome.wire or {}))
        response["elapsed_ms"] = round(outcome.elapsed_ms, 3)
        return response

    # -- check --------------------------------------------------------

    async def _handle_check(self, request: dict) -> dict:
        request_id = request.get("id")
        try:
            graph = graph_from_dict(request["graph"])
            constraints = parse_constraints(
                "\n".join(request.get("constraints", []))
            )
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            self.counters["errors"] += 1
            return protocol.error_response(
                request_id, f"bad check request: {exc}"
            )
        budget_ms = request.get("budget_ms")
        deadline = (
            None
            if budget_ms is None
            else time.monotonic() + float(budget_ms) / 1e3
        )

        def run_check() -> FlightOutcome:
            start = time.monotonic()
            report = check_all(graph, constraints)
            return FlightOutcome(
                kind="solved",
                wire={
                    "ok": report.ok,
                    "checked": len(report.results),
                    "failed": len(report.failed),
                    "summary": report.summary(),
                },
                elapsed_ms=(time.monotonic() - start) * 1e3,
            )

        future: asyncio.Future[FlightOutcome] = (
            asyncio.get_running_loop().create_future()
        )
        admission_error = self._admit(
            _Admitted(
                op="check",
                solve_fn=run_check,
                deadline=deadline,
                future=future,
                admitted_at=time.monotonic(),
            ),
            request_id,
            deadline,
        )
        if admission_error is not None:
            return admission_error
        outcome = await asyncio.shield(future)
        if outcome.kind == "rejected":
            return protocol.rejected_response(request_id, outcome.reason)
        if outcome.kind == "hung":
            return protocol.hung_response(request_id, outcome.reason)
        if outcome.kind == "error":
            return protocol.error_response(request_id, outcome.error)
        response = protocol.ok_response(request_id, **(outcome.wire or {}))
        response["elapsed_ms"] = round(outcome.elapsed_ms, 3)
        return response
