"""Single-flight deduplication of concurrent implication requests.

An implication verdict is a pure function of the instance's structure
(the premise of the cross-request cache, and of the
containment-under-constraints line of work it leans on), so two
concurrent requests whose instances share a canonical form
(:func:`repro.reasoning.canonical.canonicalize_problem`) need only one
solve: the first becomes the *leader* and is admitted to the solver
queue; later arrivals become *followers* and await the leader's
outcome instead of occupying queue slots and solver threads.

Because the daemon's event loop is single-threaded, the table needs no
locks: ``join_or_lead`` and ``resolve`` are only ever called from loop
coroutines, and the window between joining and enqueueing the leader
contains no ``await``, so a flight can never be observed half-made.

Followers do *not* get the leader's response verbatim — their
alphabets may differ.  The leader publishes a :class:`FlightOutcome`
whose counter-model (if any) is serialized in the *canonical*
alphabet; each requester renames it back through its own
:class:`~repro.reasoning.canonical.CanonicalForm` inverse maps, so
every client receives a certificate over its own labels,
re-verifiable like any fresh refutation.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any


@dataclass
class FlightOutcome:
    """What one admitted request produced, shared by all its waiters.

    ``kind`` is a closed vocabulary: ``solved`` (the solver ran;
    ``result`` holds the :class:`ImplicationResult`), ``rejected``
    (the deadline expired while queued — the only honest payload is
    UNKNOWN), ``error`` (the request was admitted but the solver
    raised), ``hung`` (the watchdog abandoned the solve — same honest
    UNKNOWN as ``rejected``, plus an auditable ``hung_solve`` fault on
    the wire).  ``canonical_countermodel`` is the serialized
    counter-model in the canonical alphabet (``None`` when absent or
    unserializable); ``wire`` carries op-specific extra payload for
    non-``imply`` work routed through the same queue.
    """

    kind: str
    result: Any = None
    canonical_countermodel: dict | None = None
    wire: dict | None = None
    reason: str = ""
    error: str = ""
    elapsed_ms: float = 0.0


@dataclass
class Flight:
    """One in-flight canonical instance and everyone waiting on it."""

    key: str
    future: "asyncio.Future[FlightOutcome]"
    followers: int = 0


@dataclass
class SingleFlightTable:
    """The daemon's registry of in-flight canonical keys."""

    _flights: dict[str, Flight] = field(default_factory=dict)
    #: lifetime count of requests that coalesced onto an existing
    #: flight instead of solving (the dedup hit counter).
    coalesced: int = 0
    #: lifetime count of flights led (the dedup denominator's
    #: complement: total imply requests = led + coalesced).
    led: int = 0

    def join_or_lead(self, key: str) -> tuple[bool, Flight]:
        """Attach to an existing flight, or register a new one.

        Returns ``(is_leader, flight)``.  The caller leading a flight
        MUST eventually :meth:`resolve` or :meth:`abandon` it — on
        every path, including admission failure — or followers would
        wait forever.
        """
        existing = self._flights.get(key)
        if existing is not None:
            existing.followers += 1
            self.coalesced += 1
            return False, existing
        flight = Flight(
            key=key, future=asyncio.get_running_loop().create_future()
        )
        self._flights[key] = flight
        self.led += 1
        return True, flight

    def resolve(self, key: str, outcome: FlightOutcome) -> None:
        """Publish the outcome to every waiter and retire the flight."""
        flight = self._flights.pop(key, None)
        if flight is not None and not flight.future.done():
            flight.future.set_result(outcome)

    def abandon(self, key: str) -> None:
        """Retire a flight that was never admitted (queue full).

        Followers cannot exist yet — admission failure happens in the
        same no-``await`` window as :meth:`join_or_lead` — but resolve
        the future defensively anyway so nothing can hang.
        """
        flight = self._flights.pop(key, None)
        if flight is not None and not flight.future.done():
            flight.future.set_result(
                FlightOutcome(kind="error", error="flight abandoned")
            )

    def inflight(self) -> int:
        return len(self._flights)
