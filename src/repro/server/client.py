"""Blocking client for the implication server.

One socket, JSON lines, request/response in lockstep.  The client is
deliberately boring — a handful of sockets calls any language could
replicate — with the robustness knobs a production caller needs:

* **timeouts** on connect and on every response read (a wedged server
  can never hang the caller);
* **capped exponential retry with jitter** on connection failures and
  ``overloaded`` responses (honoring the server's ``retry_after_ms``
  hint when it is larger than the local backoff);
* **multi-endpoint failover**: the client accepts a list of
  ``(host, port)`` endpoints and rotates away from one that keeps
  failing.  A per-endpoint circuit breaker opens after
  ``failure_threshold`` *consecutive* transport failures and stays
  open for ``cooldown_s`` seconds; after the cool-down the endpoint is
  half-open and the next request probes it.  When every circuit is
  open the client probes the one that reopens soonest rather than
  failing without trying — an open circuit is a preference, never a
  promise that the server is down;
* **bounded frames**: a response line is read with a hard cap of
  :data:`repro.server.protocol.MAX_LINE_BYTES`, mirroring the
  server's own cap — a misbehaving server cannot balloon the client's
  memory.  An oversize frame is a :class:`ProtocolError` and tears
  down the connection (the stream cannot be resynced);
* **strict correlation**: every response must echo the request's
  ``id``.  A mismatch means the stream desynchronized (a half frame,
  an injected line); the client closes and retries rather than hand
  the caller an answer meant for another question;
* **honest surfacing**: ``draining``/``rejected``/``error`` responses
  are returned (or raised) as-is, and a solved answer's ``faults``
  record travels through untouched — a degraded UNKNOWN looks exactly
  as suspicious remotely as it does locally.  When every attempt
  fails, the raised :class:`ServerUnavailable` carries the most
  recent ``retry_after_ms`` the server sent, even when the *final*
  attempt died on transport — the overload hint is the best pacing
  signal the caller has, and dropping it because a later packet was
  lost would discard exactly the information a backoff loop needs.

Jitter uses a dedicated :class:`random.Random` (optionally seeded) so
retry storms decorrelate in production while tests stay reproducible.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Any

from repro.errors import ProtocolError, ServerUnavailable
from repro.server import protocol


def parse_host_port(text: str) -> tuple[str, int]:
    """``HOST:PORT`` for ``--server``; raises ``ValueError``."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"--server expects HOST:PORT, got {text!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"--server port must be an integer, got {port_text!r}"
        ) from None
    if not 0 < port < 65536:
        raise ValueError(f"--server port {port} out of range")
    return host, port


def parse_endpoints(text: str) -> list[tuple[str, int]]:
    """``HOST:PORT[,HOST:PORT...]`` for ``--server``.

    The CLI accepts a comma-separated endpoint list so a caller can
    hand the client its whole replica set in one flag; order is the
    client's initial preference order.
    """
    endpoints = [
        parse_host_port(part.strip())
        for part in text.split(",")
        if part.strip()
    ]
    if not endpoints:
        raise ValueError(f"--server expects HOST:PORT, got {text!r}")
    return endpoints


@dataclass
class _Endpoint:
    """One server address plus its circuit-breaker state."""

    host: str
    port: int
    index: int = 0
    #: Consecutive transport failures since the last success.
    failures: int = 0
    #: Monotonic instant the circuit half-opens (0 = closed/healthy).
    open_until: float = 0.0

    def describe(self) -> str:
        return f"{self.host}:{self.port}"


class ServerClient:
    """A connection to one implication server replica set.

    Reusable and reconnecting: the socket is opened lazily, kept for
    request pipelining, and torn down + retried on any transport
    error — possibly against a different endpoint when more than one
    was given.  Not thread-safe; use one client per thread (the load
    generator in ``benchmarks/test_bench_server.py`` does exactly
    that).

    Accepts the historical ``ServerClient(host, port)`` form or an
    endpoint list: ``ServerClient(endpoints=[("h1", p1), ("h2", p2)])``.
    """

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        timeout: float = 30.0,
        retries: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        jitter_seed: int | None = None,
        endpoints: list[tuple[str, int]] | None = None,
        failure_threshold: int = 2,
        cooldown_s: float = 1.0,
    ) -> None:
        if endpoints:
            pairs = list(endpoints)
        elif host is not None and port is not None:
            pairs = [(host, int(port))]
        else:
            raise ValueError(
                "ServerClient needs (host, port) or endpoints=[...]"
            )
        self._endpoints = [
            _Endpoint(host=h, port=p, index=i)
            for i, (h, p) in enumerate(pairs)
        ]
        self._active = 0
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.failure_threshold = max(1, int(failure_threshold))
        self.cooldown_s = float(cooldown_s)
        self._rng = random.Random(jitter_seed)
        self._sock: socket.socket | None = None
        self._file = None
        self._connected: _Endpoint | None = None
        self._next_id = 0

    # -- back-compat accessors ----------------------------------------

    @property
    def host(self) -> str:
        """The currently-preferred endpoint's host (back-compat)."""
        return self._endpoints[self._active].host

    @property
    def port(self) -> int:
        """The currently-preferred endpoint's port (back-compat)."""
        return self._endpoints[self._active].port

    @property
    def endpoints(self) -> list[tuple[str, int]]:
        return [(ep.host, ep.port) for ep in self._endpoints]

    def endpoint_states(self) -> list[dict]:
        """Circuit-breaker introspection (tests, diagnostics)."""
        now = time.monotonic()
        return [
            {
                "endpoint": ep.describe(),
                "failures": ep.failures,
                "open": ep.failures >= self.failure_threshold
                and now < ep.open_until,
            }
            for ep in self._endpoints
        ]

    # -- lifecycle ----------------------------------------------------

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._connected = None

    # -- endpoint selection -------------------------------------------

    def _pick(self) -> _Endpoint:
        """The next endpoint to try, circuit breakers respected.

        Scans round-robin from the active index for a closed or
        half-open circuit; if *every* circuit is open, probes the one
        that reopens soonest instead of giving up unprobed.
        """
        now = time.monotonic()
        count = len(self._endpoints)
        for step in range(count):
            ep = self._endpoints[(self._active + step) % count]
            if ep.failures < self.failure_threshold or now >= ep.open_until:
                self._active = ep.index
                return ep
        ep = min(self._endpoints, key=lambda e: e.open_until)
        self._active = ep.index
        return ep

    def _mark_failure(self, ep: _Endpoint | None) -> None:
        if ep is None:
            return
        ep.failures += 1
        if ep.failures >= self.failure_threshold:
            ep.open_until = time.monotonic() + self.cooldown_s
            # Rotate preference so the next attempt starts elsewhere.
            self._active = (ep.index + 1) % len(self._endpoints)

    @staticmethod
    def _mark_success(ep: _Endpoint) -> None:
        ep.failures = 0
        ep.open_until = 0.0

    def _ensure_connected(self) -> _Endpoint:
        if self._sock is not None and self._connected is not None:
            return self._connected
        ep = self._pick()
        # Recorded before the connect so a refused connection is
        # attributed to the endpoint that refused it.
        self._connected = ep
        self._sock = socket.create_connection(
            (ep.host, ep.port), timeout=self.timeout
        )
        self._file = self._sock.makefile("rb")
        return ep

    # -- the request loop ---------------------------------------------

    def _backoff(self, attempt: int, floor_ms: int | None = None) -> None:
        delay = min(
            self.backoff_cap, self.backoff_base * (2**attempt)
        )
        # Full jitter on the exponential term decorrelates retry
        # storms; the server's retry_after hint acts as a floor.
        delay *= 0.5 + self._rng.random() / 2
        if floor_ms is not None:
            delay = max(delay, floor_ms / 1e3)
        time.sleep(delay)

    def _read_response(self, request_id: int) -> dict:
        """One frame, capped and correlated; raises to force a retry."""
        assert self._file is not None
        line = self._file.readline(protocol.MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        if len(line) > protocol.MAX_LINE_BYTES:
            raise ProtocolError(
                f"response frame exceeds the "
                f"{protocol.MAX_LINE_BYTES}-byte limit"
            )
        response = protocol.parse_response(line)
        if response.get("id") != request_id:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}; stream desynchronized"
            )
        return response

    def request(self, op: str, **fields: Any) -> dict:
        """One round trip; returns the response frame as a dict.

        Transport failures and ``overloaded`` responses are retried
        (capped exponential backoff with jitter, rotating endpoints as
        circuits open); anything else — including ``draining``,
        ``rejected`` and ``error`` — is returned to the caller, whose
        policy it is.  Raises :class:`ServerUnavailable` when every
        attempt failed, carrying the most recent ``retry_after_ms``
        hint seen on *any* attempt.
        """
        self._next_id += 1
        request_id = self._next_id
        frame = {
            "v": protocol.PROTOCOL_VERSION,
            "op": op,
            "id": request_id,
        }
        frame.update(
            {k: v for k, v in fields.items() if v is not None}
        )
        payload = protocol.encode(frame)
        last_error: Exception | None = None
        #: Most recent overload hint, carried into the final raise
        #: even when later attempts die on transport.
        last_retry_after: int | None = None
        #: Per-attempt backoff floor; reset after it is consumed.
        floor: int | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                self._backoff(attempt - 1, floor_ms=floor)
                floor = None
            ep: _Endpoint | None = None
            try:
                ep = self._ensure_connected()
                assert self._sock is not None
                self._sock.sendall(payload)
                response = self._read_response(request_id)
            except (OSError, ProtocolError, ConnectionError) as exc:
                last_error = exc
                self._mark_failure(ep if ep is not None else self._connected)
                self.close()
                continue
            if response["status"] == "overloaded":
                hint = response.get("retry_after_ms")
                last_error = ServerUnavailable(
                    "server overloaded", retry_after_ms=hint
                )
                last_retry_after = hint
                floor = hint
                continue
            self._mark_success(ep)
            return response
        targets = ",".join(ep.describe() for ep in self._endpoints)
        raise ServerUnavailable(
            f"{op} request to {targets} failed after "
            f"{self.retries + 1} attempt(s): {last_error}",
            retry_after_ms=last_retry_after,
        )

    # -- typed helpers ------------------------------------------------

    def imply(
        self,
        sigma: list[str],
        phi: str,
        context: str = "semistructured",
        schema: str | None = None,
        budget_ms: int | None = None,
        jobs: int | str | None = None,
        no_dedup: bool = False,
        delay_ms: int | None = None,
        wedge: bool = False,
    ) -> dict:
        return self.request(
            "imply",
            sigma=list(sigma),
            phi=phi,
            context=context,
            schema=schema,
            budget_ms=budget_ms,
            jobs=jobs,
            no_dedup=no_dedup or None,
            delay_ms=delay_ms,
            wedge=wedge or None,
        )

    def check(self, graph: dict, constraints: list[str]) -> dict:
        return self.request(
            "check", graph=graph, constraints=list(constraints)
        )

    def query_contains(
        self,
        sigma: list[str],
        left: str,
        right: str,
        context: str = "semistructured",
        schema: str | None = None,
        budget_ms: int | None = None,
    ) -> dict:
        """Three-valued RPQ containment, solved server-side."""
        return self.request(
            "query",
            action="contains",
            sigma=list(sigma),
            left=left,
            right=right,
            context=context,
            schema=schema,
            budget_ms=budget_ms,
        )

    def query_optimize(
        self,
        sigma: list[str],
        branches: list[str],
        context: str = "semistructured",
        schema: str | None = None,
        budget_ms: int | None = None,
    ) -> dict:
        """Constraint-aware union optimization, solved server-side."""
        return self.request(
            "query",
            action="optimize",
            sigma=list(sigma),
            branches=list(branches),
            context=context,
            schema=schema,
            budget_ms=budget_ms,
        )

    def health(self) -> dict:
        return self.request("health")

    def stats(self) -> dict:
        return self.request("stats")

    def shutdown(self) -> dict:
        """Ask the server to drain (the remote SIGTERM)."""
        return self.request("shutdown")
