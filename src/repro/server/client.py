"""Blocking client for the implication server.

One socket, JSON lines, request/response in lockstep.  The client is
deliberately boring — a handful of sockets calls any language could
replicate — with the robustness knobs a production caller needs:

* **timeouts** on connect and on every response read (a wedged server
  can never hang the caller);
* **capped exponential retry with jitter** on connection failures and
  ``overloaded`` responses (honoring the server's ``retry_after_ms``
  hint when it is larger than the local backoff);
* **honest surfacing**: ``draining``/``rejected``/``error`` responses
  are returned (or raised) as-is, and a solved answer's ``faults``
  record travels through untouched — a degraded UNKNOWN looks exactly
  as suspicious remotely as it does locally.

Jitter uses a dedicated :class:`random.Random` (optionally seeded) so
retry storms decorrelate in production while tests stay reproducible.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any

from repro.errors import ProtocolError, ServerUnavailable
from repro.server import protocol


def parse_host_port(text: str) -> tuple[str, int]:
    """``HOST:PORT`` for ``--server``; raises ``ValueError``."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"--server expects HOST:PORT, got {text!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"--server port must be an integer, got {port_text!r}"
        ) from None
    if not 0 < port < 65536:
        raise ValueError(f"--server port {port} out of range")
    return host, port


class ServerClient:
    """A connection to one implication server.

    Reusable and reconnecting: the socket is opened lazily, kept for
    request pipelining, and torn down + retried on any transport
    error.  Not thread-safe; use one client per thread (the load
    generator in ``benchmarks/test_bench_server.py`` does exactly
    that).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retries: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        jitter_seed: int | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = random.Random(jitter_seed)
        self._sock: socket.socket | None = None
        self._file = None
        self._next_id = 0

    # -- lifecycle ----------------------------------------------------

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _ensure_connected(self) -> None:
        if self._sock is not None:
            return
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._sock.makefile("rb")

    # -- the request loop ---------------------------------------------

    def _backoff(self, attempt: int, floor_ms: int | None = None) -> None:
        delay = min(
            self.backoff_cap, self.backoff_base * (2**attempt)
        )
        # Full jitter on the exponential term decorrelates retry
        # storms; the server's retry_after hint acts as a floor.
        delay *= 0.5 + self._rng.random() / 2
        if floor_ms is not None:
            delay = max(delay, floor_ms / 1e3)
        time.sleep(delay)

    def request(self, op: str, **fields: Any) -> dict:
        """One round trip; returns the response frame as a dict.

        Transport failures and ``overloaded`` responses are retried
        (capped exponential backoff with jitter); anything else —
        including ``draining``, ``rejected`` and ``error`` — is
        returned to the caller, whose policy it is.  Raises
        :class:`ServerUnavailable` when every attempt failed.
        """
        self._next_id += 1
        frame = {
            "v": protocol.PROTOCOL_VERSION,
            "op": op,
            "id": self._next_id,
        }
        frame.update(
            {k: v for k, v in fields.items() if v is not None}
        )
        payload = protocol.encode(frame)
        last_error: Exception | None = None
        retry_after: int | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                self._backoff(attempt - 1, floor_ms=retry_after)
                retry_after = None
            try:
                self._ensure_connected()
                assert self._sock is not None and self._file is not None
                self._sock.sendall(payload)
                line = self._file.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                response = protocol.parse_response(line)
            except (OSError, ProtocolError, ConnectionError) as exc:
                last_error = exc
                self.close()
                continue
            if response["status"] == "overloaded":
                last_error = ServerUnavailable(
                    "server overloaded",
                    retry_after_ms=response.get("retry_after_ms"),
                )
                retry_after = response.get("retry_after_ms")
                continue
            return response
        raise ServerUnavailable(
            f"{op} request to {self.host}:{self.port} failed after "
            f"{self.retries + 1} attempt(s): {last_error}",
            retry_after_ms=retry_after,
        )

    # -- typed helpers ------------------------------------------------

    def imply(
        self,
        sigma: list[str],
        phi: str,
        context: str = "semistructured",
        schema: str | None = None,
        budget_ms: int | None = None,
        jobs: int | str | None = None,
        no_dedup: bool = False,
        delay_ms: int | None = None,
    ) -> dict:
        return self.request(
            "imply",
            sigma=list(sigma),
            phi=phi,
            context=context,
            schema=schema,
            budget_ms=budget_ms,
            jobs=jobs,
            no_dedup=no_dedup or None,
            delay_ms=delay_ms,
        )

    def check(self, graph: dict, constraints: list[str]) -> dict:
        return self.request(
            "check", graph=graph, constraints=list(constraints)
        )

    def query_contains(
        self,
        sigma: list[str],
        left: str,
        right: str,
        context: str = "semistructured",
        schema: str | None = None,
        budget_ms: int | None = None,
    ) -> dict:
        """Three-valued RPQ containment, solved server-side."""
        return self.request(
            "query",
            action="contains",
            sigma=list(sigma),
            left=left,
            right=right,
            context=context,
            schema=schema,
            budget_ms=budget_ms,
        )

    def query_optimize(
        self,
        sigma: list[str],
        branches: list[str],
        context: str = "semistructured",
        schema: str | None = None,
        budget_ms: int | None = None,
    ) -> dict:
        """Constraint-aware union optimization, solved server-side."""
        return self.request(
            "query",
            action="optimize",
            sigma=list(sigma),
            branches=list(branches),
            context=context,
            schema=schema,
            budget_ms=budget_ms,
        )

    def health(self) -> dict:
        return self.request("health")

    def stats(self) -> dict:
        return self.request("stats")

    def shutdown(self) -> dict:
        """Ask the server to drain (the remote SIGTERM)."""
        return self.request("shutdown")
