"""A semi-decider for the word problem for (finite) monoids.

Theorem 4.4 (classical): the word problem for monoids and the word
problem for finite monoids are both undecidable.  This module therefore
implements a *sound* three-valued procedure:

* ``TRUE`` — an explicit Thue-rewriting derivation ``alpha <->* beta``
  was found; then every monoid homomorphism respecting the equations
  equates the two words (so the answer is yes for both the general and
  the finite problem);
* ``FALSE`` — a separating certificate was found: either the
  abelianization invariant (the letter-count difference of the test
  words is outside the integer lattice spanned by the equations'
  differences; finitely generated abelian groups are residually finite,
  so a *finite* separating quotient exists too), or an explicit finite
  monoid + homomorphism from the search library;
* ``UNKNOWN`` — budgets exhausted; the caller learns nothing, which is
  the honest outcome for an undecidable problem.

Both certificate kinds are checkable objects, and the constraint-side
reductions (Sections 4.1, 5.2) consume the FALSE certificates to build
the paper's counter-model structures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.monoids.finite import (
    FiniteMonoid,
    Homomorphism,
    find_separating_homomorphism,
)
from repro.monoids.presentation import MonoidPresentation
from repro.paths import Path
from repro.truth import Trilean


@dataclass(frozen=True)
class WordProblemVerdict:
    """Outcome of :func:`decide_word_problem` with its certificate."""

    answer: Trilean
    method: str
    derivation: tuple[Path, ...] | None = None
    separator: Homomorphism | None = None

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError("use .answer; a verdict is not a boolean")


def letter_counts(word: Path, alphabet: tuple[str, ...]) -> tuple[int, ...]:
    """The Parikh vector of a word."""
    counts = {letter: 0 for letter in alphabet}
    for letter in word:
        counts[letter] += 1
    return tuple(counts[letter] for letter in alphabet)


def lattice_contains(vectors: list[tuple[int, ...]], target: tuple[int, ...]) -> bool:
    """Is ``target`` in the integer lattice spanned by ``vectors``?

    Row-style Hermite reduction with exact integer arithmetic.  Used as
    the abelianization invariant: applying an equation anywhere in a
    word shifts its Parikh vector by +/- the equation's difference
    vector, so congruent words differ by a lattice element.
    """
    if not any(target):
        return True
    rows = [list(v) for v in vectors if any(v)]
    goal = list(target)
    width = len(target)
    pivot_rows: list[list[int]] = []
    col = 0
    while col < width and rows:
        # Reduce all rows on this column to a single pivot via gcd steps.
        while True:
            nonzero = [r for r in rows if r[col] != 0]
            if len(nonzero) <= 1:
                break
            nonzero.sort(key=lambda r: abs(r[col]))
            smallest = nonzero[0]
            for other in nonzero[1:]:
                q = other[col] // smallest[col]
                for j in range(width):
                    other[j] -= q * smallest[j]
            rows = [r for r in rows if any(r)]
        pivot = next((r for r in rows if r[col] != 0), None)
        if pivot is not None:
            rows.remove(pivot)
            if pivot[col] < 0:
                pivot = [-x for x in pivot]
            pivot_rows.append(pivot)
        col += 1
    # Back-substitute the target against the echelon basis.
    for pivot in pivot_rows:
        col = next(j for j in range(width) if pivot[j] != 0)
        if goal[col] % pivot[col] != 0:
            continue  # this pivot cannot clear the column exactly
        q = goal[col] // pivot[col]
        for j in range(width):
            goal[j] -= q * pivot[j]
    return not any(goal)


def abelianization_separates(
    presentation: MonoidPresentation, alpha: Path, beta: Path
) -> bool:
    """True when the commutative-quotient invariant proves alpha != beta."""
    alphabet = presentation.alphabet
    diffs = [
        tuple(
            a - b
            for a, b in zip(
                letter_counts(lhs, alphabet), letter_counts(rhs, alphabet)
            )
        )
        for lhs, rhs in presentation.equations
    ]
    target = tuple(
        a - b
        for a, b in zip(
            letter_counts(alpha, alphabet), letter_counts(beta, alphabet)
        )
    )
    return not lattice_contains(diffs, target)


def find_thue_derivation(
    presentation: MonoidPresentation,
    alpha: Path,
    beta: Path,
    max_expansions: int = 20_000,
    max_length: int | None = None,
) -> tuple[Path, ...] | None:
    """Bidirectional BFS for a rewrite chain ``alpha <->* beta``."""
    if alpha == beta:
        return (alpha,)
    if max_length is None:
        longest = max(
            (max(len(l), len(r)) for l, r in presentation.equations),
            default=0,
        )
        max_length = max(len(alpha), len(beta)) + longest + 4

    # Two frontiers meeting in the middle; parents maps word -> (side,
    # predecessor).  The Thue relation is symmetric, so chains from the
    # two sides concatenate directly.
    parents: dict[Path, tuple[str, Path | None]] = {
        alpha: ("a", None),
        beta: ("b", None),
    }
    queue: deque[Path] = deque([alpha, beta])
    expansions = 0
    meeting: tuple[Path, Path] | None = None
    while queue and expansions < max_expansions and meeting is None:
        word = queue.popleft()
        side = parents[word][0]
        expansions += 1
        for nxt in presentation.one_step_rewrites(word):
            if len(nxt) > max_length:
                continue
            if nxt in parents:
                if parents[nxt][0] != side:
                    meeting = (word, nxt)
                    break
                continue
            parents[nxt] = (side, word)
            queue.append(nxt)
    if meeting is None:
        return None

    def chain(word: Path) -> list[Path]:
        out = [word]
        while parents[word][1] is not None:
            word = parents[word][1]  # type: ignore[assignment]
            out.append(word)
        return out

    left, right = meeting
    if parents[left][0] == "b":
        left, right = right, left
    forward_part = list(reversed(chain(left)))
    backward_part = chain(right)
    return tuple(forward_part + backward_part)


def check_thue_derivation(
    presentation: MonoidPresentation, derivation: tuple[Path, ...]
) -> bool:
    """Verify a rewrite chain step by step."""
    for current, nxt in zip(derivation, derivation[1:]):
        if nxt not in set(presentation.one_step_rewrites(current)):
            return False
    return True


def decide_word_problem(
    presentation: MonoidPresentation,
    alpha: Path | str,
    beta: Path | str,
    max_expansions: int = 20_000,
    monoid_library: list[FiniteMonoid] | None = None,
) -> WordProblemVerdict:
    """Sound three-valued answer to ``Gamma |= (alpha, beta)``.

    All certificates are valid for both the general and the finite
    word problem (see the module docstring).
    """
    alpha = Path.coerce(alpha)
    beta = Path.coerce(beta)
    if alpha == beta:
        return WordProblemVerdict(Trilean.TRUE, "identical", (alpha,))

    if abelianization_separates(presentation, alpha, beta):
        return WordProblemVerdict(Trilean.FALSE, "abelianization")

    derivation = find_thue_derivation(
        presentation, alpha, beta, max_expansions=max_expansions
    )
    if derivation is not None:
        return WordProblemVerdict(Trilean.TRUE, "derivation", derivation)

    separator = find_separating_homomorphism(
        presentation, alpha, beta, monoids=monoid_library
    )
    if separator is not None:
        return WordProblemVerdict(
            Trilean.FALSE, "finite-separation", separator=separator
        )
    return WordProblemVerdict(Trilean.UNKNOWN, "budget-exhausted")
