"""Monoids and the word problem.

The paper's undecidability proofs (Theorems 4.3, 5.2, 6.1, 6.2) are
reductions from the word problem for (finite) monoids (Theorem 4.4,
after [AHV95] / [LP81]): given a finite set of equations Gamma over a
finite alphabet and a test equation (alpha, beta), decide whether every
(finite) monoid and homomorphism satisfying Gamma also satisfies the
test equation.

This package provides the monoid side of those reductions: finitely
presented monoids, finite monoids given by multiplication tables,
homomorphism search, and a semi-decider for the word problem
(bidirectional rewriting search for the positive side; abelianization
and small-model separation for the negative side).
"""

from repro.monoids.presentation import MonoidPresentation
from repro.monoids.finite import FiniteMonoid, Homomorphism
from repro.monoids.word_problem import WordProblemVerdict, decide_word_problem

__all__ = [
    "MonoidPresentation",
    "FiniteMonoid",
    "Homomorphism",
    "WordProblemVerdict",
    "decide_word_problem",
]
