"""The path constraint language P_c and its fragments.

Definitions 2.1-2.4 of the paper:

* a *forward* constraint ``forall x (alpha(r,x) -> forall y (beta(x,y)
  -> gamma(x,y)))``;
* a *backward* constraint ``forall x (alpha(r,x) -> forall y
  (beta(x,y) -> gamma(y,x)))``;
* a *word* constraint (the fragment P_w of [AV97]) — a forward
  constraint with empty prefix, usually written
  ``forall x (alpha(r,x) -> beta(r,x))``;
* the fragments P_w(K) / P_w(rho) and the *bounded* constraints that
  define the local-extent implication problem.
"""

from repro.constraints.ast import (
    Direction,
    PathConstraint,
    backward,
    forward,
    word,
)
from repro.constraints.classes import (
    BoundednessReport,
    infer_bounds,
    is_bounded_by,
    is_in_pw,
    is_in_pw_k,
    is_prefix_bounded_set,
    partition_bounded,
)
from repro.constraints.parser import parse_constraint, parse_constraints
from repro.constraints.regular import RegularConstraint, check_regular

__all__ = [
    "Direction",
    "PathConstraint",
    "forward",
    "backward",
    "word",
    "BoundednessReport",
    "is_in_pw",
    "is_in_pw_k",
    "is_bounded_by",
    "is_prefix_bounded_set",
    "infer_bounds",
    "partition_bounded",
    "parse_constraint",
    "parse_constraints",
    "RegularConstraint",
    "check_regular",
]
