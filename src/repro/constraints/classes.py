"""Fragment membership and boundedness (Definitions 2.2-2.4, 4.1, 6).

This module classifies constraints into the fragments whose implication
problems the paper studies:

* ``P_w`` — word constraints (Definition 2.2);
* ``P_w(K)`` — word constraints plus their K-guarded versions
  (Section 4.1), the "small" fragment whose untyped implication problem
  is already undecidable (Theorem 4.3);
* ``P_w(rho)`` — the Section 6 generalization guarded by a path;
* constraints *bounded by* a path ``rho`` and a label ``K``
  (Definition 2.3), and prefix-bounded constraint *sets*, which define
  the local extent implication problem (Definition 2.4).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.constraints.ast import PathConstraint
from repro.paths import Path


def is_in_pw(phi: PathConstraint) -> bool:
    """Membership in P_w (Definition 2.2)."""
    return phi.is_word_constraint()


def is_in_pw_rho(phi: PathConstraint, rho: Path | str) -> bool:
    """Membership in P_w(rho) (Section 6): either a word constraint, or
    the rho-guarded version ``rho :: beta => gamma`` of one."""
    rho = Path.coerce(rho)
    if phi.is_word_constraint():
        return True
    return phi.is_forward() and phi.prefix == rho


def is_in_pw_k(phi: PathConstraint, guard: str) -> bool:
    """Membership in P_w(K) (Section 4.1): P_w(rho) with rho the
    single-label path ``K``."""
    return is_in_pw_rho(phi, Path.single(guard))


def is_bounded_by(phi: PathConstraint, rho: Path | str, guard: str) -> bool:
    """Definition 2.3: ``phi`` is *bounded by* ``rho`` and ``K`` iff it
    has the forward form ``rho.K :: beta => gamma`` with ``beta`` not
    empty and ``K`` not a prefix of ``beta``."""
    rho = Path.coerce(rho)
    if not phi.is_forward():
        return False
    if phi.prefix != rho.append(guard):
        return False
    if phi.lhs.is_empty():
        return False
    return not Path.single(guard).is_prefix_of(phi.lhs)


@dataclass(frozen=True)
class BoundednessReport:
    """Outcome of checking Definition 2.3 on a constraint set.

    ``ok`` is True when the set is a subset of P_c with prefix bounded
    by ``rho`` and ``guard``; otherwise ``offenders`` lists the
    constraints that break the definition with a reason each.
    """

    rho: Path
    guard: str
    ok: bool
    bounded: tuple[PathConstraint, ...] = ()
    rest: tuple[PathConstraint, ...] = ()
    offenders: tuple[tuple[PathConstraint, str], ...] = field(default=())


def check_prefix_bounded_set(
    constraints: Iterable[PathConstraint], rho: Path | str, guard: str
) -> BoundednessReport:
    """Classify a constraint set per Definition 2.3.

    Each constraint must either be bounded by (rho, K), or have prefix
    ``rho . rho'`` with ``K`` not a prefix of ``rho'``; and when
    ``rho' = epsilon`` the constraint must have the exact shape
    ``rho :: beta => K``.
    """
    rho = Path.coerce(rho)
    guard_path = Path.single(guard)
    bounded: list[PathConstraint] = []
    rest: list[PathConstraint] = []
    offenders: list[tuple[PathConstraint, str]] = []
    for phi in constraints:
        if is_bounded_by(phi, rho, guard):
            bounded.append(phi)
            continue
        if not rho.is_prefix_of(phi.prefix):
            offenders.append((phi, f"prefix {phi.prefix} does not extend {rho}"))
            continue
        rho_prime = phi.prefix.strip_prefix(rho)
        if guard_path.is_prefix_of(rho_prime):
            offenders.append(
                (phi, f"prefix remainder {rho_prime} starts with the guard {guard}")
            )
            continue
        if rho_prime.is_empty():
            # Definition 2.3's special case: the constraint must be
            # `rho :: beta => K` (forward, conclusion exactly K).
            if phi.is_forward() and phi.rhs == guard_path:
                rest.append(phi)
            else:
                offenders.append(
                    (
                        phi,
                        "prefix equals rho but the constraint is not of "
                        f"the form rho :: beta => {guard}",
                    )
                )
            continue
        rest.append(phi)
    return BoundednessReport(
        rho=rho,
        guard=guard,
        ok=not offenders,
        bounded=tuple(bounded),
        rest=tuple(rest),
        offenders=tuple(offenders),
    )


def is_prefix_bounded_set(
    constraints: Iterable[PathConstraint], rho: Path | str, guard: str
) -> bool:
    """Definition 2.3 membership as a boolean."""
    return check_prefix_bounded_set(constraints, rho, guard).ok


def partition_bounded(
    constraints: Iterable[PathConstraint], rho: Path | str, guard: str
) -> tuple[tuple[PathConstraint, ...], tuple[PathConstraint, ...]]:
    """Split a prefix-bounded set into (Sigma_K, Sigma_r) per Section 2.2.

    Raises :class:`ValueError` when the set is not prefix-bounded.
    """
    report = check_prefix_bounded_set(constraints, rho, guard)
    if not report.ok:
        reasons = "; ".join(f"{phi}: {why}" for phi, why in report.offenders)
        raise ValueError(f"constraint set is not prefix-bounded: {reasons}")
    return report.bounded, report.rest


def infer_bounds(phi: PathConstraint) -> tuple[Path, str]:
    """Recover (rho, K) from a constraint bounded by them.

    A bounded constraint has prefix ``rho . K``, so ``rho`` is the
    prefix minus its last label and ``K`` is that last label (the paper
    notes this is linear-time).  Raises :class:`ValueError` when the
    constraint cannot be bounded by anything (empty prefix, backward
    form, empty lhs, or guard prefixing the lhs).
    """
    if not phi.is_forward():
        raise ValueError(f"{phi} is backward; bounded constraints are forward")
    if phi.prefix.is_empty():
        raise ValueError(f"{phi} has empty prefix; cannot split off a guard")
    guard = phi.prefix.last()
    rho = phi.prefix[:-1]
    if not is_bounded_by(phi, rho, guard):
        raise ValueError(f"{phi} is not bounded by ({rho}, {guard})")
    return rho, guard
