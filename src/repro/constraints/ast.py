"""Abstract syntax of P_c constraints (Definition 2.1).

Every P_c constraint is a triple of paths plus a direction:

* forward:  ``forall x (prefix(r,x) -> forall y (lhs(x,y) -> rhs(x,y)))``
* backward: ``forall x (prefix(r,x) -> forall y (lhs(x,y) -> rhs(y,x)))``

A *word constraint* (Definition 2.2) is a forward constraint whose
prefix is the empty path; the paper writes it
``forall x (alpha(r,x) -> beta(r,x))`` where ``alpha``/``beta`` are our
``lhs``/``rhs``.  :func:`word` builds that shape directly.

Instances are immutable, hashable and ordered, so constraint sets can
live in Python sets and canonical orderings are deterministic.
"""

from __future__ import annotations

import enum
from functools import total_ordering

from repro.paths import Path


class Direction(enum.Enum):
    """Whether the conclusion runs ``x -> y`` (forward) or ``y -> x``."""

    FORWARD = "forward"
    BACKWARD = "backward"


@total_ordering
class PathConstraint:
    """One constraint of P_c.

    >>> inv = backward("book", "author", "wrote")
    >>> print(inv)
    book :: author ~> wrote
    >>> inv.is_word_constraint()
    False
    >>> print(word("book.author", "person"))
    book.author => person
    """

    __slots__ = ("_prefix", "_lhs", "_rhs", "_direction", "_hash")

    def __init__(
        self,
        prefix: Path | str,
        lhs: Path | str,
        rhs: Path | str,
        direction: Direction = Direction.FORWARD,
    ) -> None:
        self._prefix = Path.coerce(prefix)
        self._lhs = Path.coerce(lhs)
        self._rhs = Path.coerce(rhs)
        if not isinstance(direction, Direction):
            raise TypeError(f"direction must be a Direction, got {direction!r}")
        self._direction = direction
        self._hash = hash(
            (self._prefix, self._lhs, self._rhs, self._direction)
        )

    # -- components -----------------------------------------------------

    @property
    def prefix(self) -> Path:
        """The prefix ``pf(phi)`` (the paper's alpha)."""
        return self._prefix

    @property
    def lhs(self) -> Path:
        """The hypothesis path (the paper's beta)."""
        return self._lhs

    @property
    def rhs(self) -> Path:
        """The conclusion path (the paper's gamma)."""
        return self._rhs

    @property
    def direction(self) -> Direction:
        return self._direction

    def is_forward(self) -> bool:
        return self._direction is Direction.FORWARD

    def is_backward(self) -> bool:
        return self._direction is Direction.BACKWARD

    # -- fragments --------------------------------------------------------

    def is_word_constraint(self) -> bool:
        """Definition 2.2: forward with empty prefix."""
        return self.is_forward() and self._prefix.is_empty()

    def as_word_pair(self) -> tuple[Path, Path]:
        """The pair (alpha, beta) of a word constraint.

        Raises :class:`ValueError` if this is not a word constraint.
        """
        if not self.is_word_constraint():
            raise ValueError(f"{self} is not a word constraint")
        return (self._lhs, self._rhs)

    def with_prefix(self, prefix: Path | str) -> "PathConstraint":
        """The constraint ``f(prefix, self)`` of Section 5.1: the same
        body under ``prefix . pf(self)``."""
        prefix = Path.coerce(prefix)
        return PathConstraint(
            prefix.concat(self._prefix), self._lhs, self._rhs, self._direction
        )

    def strip_prefix(self, prefix: Path | str) -> "PathConstraint":
        """Inverse of :meth:`with_prefix` (the g functions of Section
        5.1); raises if ``prefix`` is not a prefix of ``pf(self)``."""
        prefix = Path.coerce(prefix)
        return PathConstraint(
            self._prefix.strip_prefix(prefix),
            self._lhs,
            self._rhs,
            self._direction,
        )

    def alphabet(self) -> frozenset[str]:
        """All edge labels mentioned."""
        return self._prefix.alphabet() | self._lhs.alphabet() | self._rhs.alphabet()

    # -- rendering ----------------------------------------------------------

    def __str__(self) -> str:
        arrow = "=>" if self.is_forward() else "~>"
        body = f"{self._lhs} {arrow} {self._rhs}"
        if self._prefix.is_empty() and self.is_forward():
            return body
        return f"{self._prefix} :: {body}"

    def __repr__(self) -> str:
        return f"PathConstraint({str(self)!r})"

    def to_formula(self) -> str:
        """The first-order sentence of Definition 2.1.

        Word constraints render in the paper's two-path form
        ``forall x (alpha(r,x) -> beta(r,x))``.
        """
        if self.is_word_constraint():
            alpha = self._lhs.to_formula("r", "x")
            beta = self._rhs.to_formula("r", "x")
            return f"forall x ({alpha} -> {beta})"
        alpha = self._prefix.to_formula("r", "x")
        beta = self._lhs.to_formula("x", "y")
        if self.is_forward():
            gamma = self._rhs.to_formula("x", "y")
        else:
            gamma = self._rhs.to_formula("y", "x")
        return f"forall x ({alpha} -> forall y ({beta} -> {gamma}))"

    # -- plumbing -------------------------------------------------------------

    def _key(self):
        return (
            self._prefix,
            self._lhs,
            self._rhs,
            self._direction.value,
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PathConstraint):
            return self._key() == other._key()
        return NotImplemented

    def __lt__(self, other: "PathConstraint") -> bool:
        if not isinstance(other, PathConstraint):
            return NotImplemented
        return self._key() < other._key()

    def __hash__(self) -> int:
        return self._hash


def forward(
    prefix: Path | str, lhs: Path | str, rhs: Path | str
) -> PathConstraint:
    """A forward constraint ``prefix :: lhs => rhs``."""
    return PathConstraint(prefix, lhs, rhs, Direction.FORWARD)


def backward(
    prefix: Path | str, lhs: Path | str, rhs: Path | str
) -> PathConstraint:
    """A backward constraint ``prefix :: lhs ~> rhs``."""
    return PathConstraint(prefix, lhs, rhs, Direction.BACKWARD)


def word(lhs: Path | str, rhs: Path | str) -> PathConstraint:
    """A word constraint ``lhs => rhs`` (Definition 2.2)."""
    return PathConstraint(Path.empty(), lhs, rhs, Direction.FORWARD)
