"""Regular path constraints — the [AV97] comparison language.

Section 1 contrasts P_c with the constraint language of [AV97], "in
which paths are represented by regular expressions": a constraint
``L1 => L2`` asserts that every node reachable from the root by a word
in ``L1`` is reachable by a word in ``L2``.  That language allows more
general path expressions than P_c but cannot capture inverse or
local-database constraints; the paper studies P_c instead and proves
nothing new about the regular language, so this module provides the
*model-checking* side only (satisfaction with witnesses), which the
query engine and validation workflows use — plus containment utilities
on the expression level.

Checking ``G |= (L1 => L2)`` runs two automaton–graph products: the
set of L1-reachable nodes must be contained in the set of
L2-reachable nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.dfa import DFA
from repro.automata.regex import compile_regex
from repro.graph.structure import Graph, Node
from repro.query.rpq import evaluate_rpq


@dataclass(frozen=True)
class RegularConstraint:
    """``forall x (L1(r, x) -> L2(r, x))`` with regular L1, L2.

    >>> from repro.graph import figure1_graph
    >>> c = RegularConstraint.parse("book.(ref)*.author => person")
    >>> c.check(figure1_graph()).holds
    True
    """

    lhs: str
    rhs: str

    @classmethod
    def parse(cls, text: str) -> "RegularConstraint":
        if "=>" not in text:
            raise ValueError(f"no '=>' in regular constraint {text!r}")
        lhs, _, rhs = text.partition("=>")
        return cls(lhs.strip(), rhs.strip())

    def check(self, graph: Graph) -> "RegularCheckResult":
        """Evaluate both sides by automaton-graph product and compare."""
        lhs_result = evaluate_rpq(graph, self.lhs)
        rhs_result = evaluate_rpq(graph, self.rhs)
        bad = lhs_result.answers - rhs_result.answers
        return RegularCheckResult(
            constraint=self,
            holds=not bad,
            lhs_nodes=lhs_result.answers,
            rhs_nodes=rhs_result.answers,
            violating_nodes=frozenset(bad),
        )

    def language_containment(self, alphabet: set[str]) -> bool:
        """Syntactic sufficient condition: ``L1 subseteq L2`` as
        languages (then the constraint holds on *every* graph).

        The converse fails — containment of reachable sets is weaker —
        which is exactly why these constraints carry information.
        """
        lhs_dfa = DFA.from_nfa(compile_regex(self.lhs, alphabet))
        rhs_dfa = DFA.from_nfa(compile_regex(self.rhs, alphabet))
        return DFA.product(lhs_dfa, rhs_dfa, accept="diff").is_empty()

    def __str__(self) -> str:
        return f"{self.lhs} => {self.rhs}"


@dataclass(frozen=True)
class RegularCheckResult:
    """Outcome of checking one regular constraint on one graph."""

    constraint: RegularConstraint
    holds: bool
    lhs_nodes: frozenset[Node]
    rhs_nodes: frozenset[Node]
    violating_nodes: frozenset[Node]

    def __bool__(self) -> bool:
        return self.holds


def check_regular(graph: Graph, text: str) -> RegularCheckResult:
    """One-shot parse + check."""
    return RegularConstraint.parse(text).check(graph)
