"""Surface syntax for P_c constraints.

The library uses a compact line syntax (the paper's constraints are
first-order sentences; this syntax renders them one per line):

* word constraint:      ``book.author => person``
* forward constraint:   ``MIT :: book.ref => book``
* backward constraint:  ``book :: author ~> wrote``
* empty paths:          ``()`` / ``eps`` / ``epsilon``

``prefix :: lhs => rhs`` is
``forall x (prefix(r,x) -> forall y (lhs(x,y) -> rhs(x,y)))``;
with ``~>`` the conclusion is ``rhs(y, x)`` (Definition 2.1).

:func:`parse_constraints` parses a multi-line block, skipping blank
lines and ``#`` comments, which makes constraint fixtures in tests and
examples pleasant to write.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.constraints.ast import Direction, PathConstraint
from repro.errors import ConstraintSyntaxError, PathSyntaxError
from repro.paths import Path


def parse_constraint(text: str) -> PathConstraint:
    """Parse one constraint from the line syntax.

    >>> parse_constraint("book :: author ~> wrote")
    PathConstraint('book :: author ~> wrote')
    >>> parse_constraint("book.author => person").is_word_constraint()
    True
    """
    if not isinstance(text, str):
        raise ConstraintSyntaxError(f"expected a string, got {text!r}")
    original = text
    text = text.strip()
    if not text:
        raise ConstraintSyntaxError("empty constraint text")

    prefix_text = ""
    if "::" in text:
        prefix_text, _, text = text.partition("::")

    if "~>" in text:
        direction = Direction.BACKWARD
        lhs_text, _, rhs_text = text.partition("~>")
    elif "=>" in text:
        direction = Direction.FORWARD
        lhs_text, _, rhs_text = text.partition("=>")
    else:
        raise ConstraintSyntaxError(
            f"no arrow ('=>' or '~>') in constraint {original!r}"
        )
    if "=>" in rhs_text or "~>" in rhs_text:
        raise ConstraintSyntaxError(f"multiple arrows in constraint {original!r}")

    try:
        prefix = Path.parse(prefix_text)
        lhs = Path.parse(lhs_text)
        rhs = Path.parse(rhs_text)
    except PathSyntaxError as exc:
        raise ConstraintSyntaxError(
            f"bad path in constraint {original!r}: {exc}"
        ) from exc
    return PathConstraint(prefix, lhs, rhs, direction)


def parse_constraints(text: str | Iterable[str]) -> list[PathConstraint]:
    """Parse a block of constraints, one per line.

    Blank lines and ``#``-comments are skipped.  Accepts either a
    multi-line string or an iterable of lines.
    """
    if isinstance(text, str):
        lines: Iterable[str] = text.splitlines()
    else:
        lines = text
    out: list[PathConstraint] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            out.append(parse_constraint(line))
        except ConstraintSyntaxError as exc:
            raise ConstraintSyntaxError(f"line {lineno}: {exc}") from exc
    return out
