"""Decision and semi-decision procedures for P_c implication.

The paper's Table 1, as code:

=====================  ==============  ===========  ============
problem                semistructured  model M      model M+/M+f
=====================  ==============  ===========  ============
P_w (substrate)        PTIME           cubic        undecidable
P_w(K)                 undecidable     cubic        undecidable
local extent           PTIME           cubic        undecidable
P_c                    undecidable     cubic        undecidable
=====================  ==============  ===========  ============

Decidable cells are implemented as complete decision procedures;
undecidable cells are served by sound semi-deciders (chase, proof
search, bounded counter-model search).  :func:`solve` routes a problem
to the right procedure and annotates the answer with the cell's status.
"""

from repro.reasoning.result import ImplicationResult
from repro.reasoning.cache import (
    CacheInfo,
    ImplicationCache,
    resolve_cache_dir,
)
from repro.reasoning.canonical import (
    CanonicalForm,
    canonicalize_instance,
    canonicalize_problem,
)
from repro.reasoning.word import WordImplicationDecider, implies_word
from repro.reasoning.typed_m import TypedImplicationDecider, implies_typed_m
from repro.reasoning.local_extent import implies_local_extent
from repro.reasoning.chase import ChaseOutcome, chase, chase_implication
from repro.reasoning.axioms import IrProof, ProofLine, check_proof
from repro.reasoning.interaction import (
    InteractionKind,
    InteractionReport,
    interaction_report,
)
from repro.reasoning.dispatcher import (
    Context,
    ImplicationProblem,
    ProblemClass,
    classify,
    solve,
    table1_cell,
)
from repro.reasoning.portfolio import (
    Budget,
    parallel_countermodel_search,
    parallel_find_countermodel,
    run_portfolio,
)
from repro.reasoning.costmodel import (
    ExecMode,
    ExecutionDecision,
    choose_execution,
)
from repro.reasoning.faultinject import FaultPlan
from repro.reasoning.runtime import (
    WorkerSupervisor,
    retire_warm_pool,
    warm_pool_pids,
    warm_pool_stats,
)
from repro.reasoning.result import EngineStats, FaultEvent, FaultReport

__all__ = [
    "Budget",
    "CacheInfo",
    "CanonicalForm",
    "EngineStats",
    "ExecMode",
    "ExecutionDecision",
    "FaultEvent",
    "FaultPlan",
    "FaultReport",
    "ImplicationCache",
    "ImplicationResult",
    "WorkerSupervisor",
    "canonicalize_instance",
    "canonicalize_problem",
    "choose_execution",
    "resolve_cache_dir",
    "parallel_countermodel_search",
    "parallel_find_countermodel",
    "retire_warm_pool",
    "run_portfolio",
    "warm_pool_pids",
    "warm_pool_stats",
    "WordImplicationDecider",
    "implies_word",
    "TypedImplicationDecider",
    "implies_typed_m",
    "implies_local_extent",
    "ChaseOutcome",
    "chase",
    "chase_implication",
    "IrProof",
    "ProofLine",
    "check_proof",
    "Context",
    "ImplicationProblem",
    "ProblemClass",
    "classify",
    "solve",
    "table1_cell",
    "InteractionKind",
    "InteractionReport",
    "interaction_report",
]
