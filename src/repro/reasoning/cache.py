"""The cross-request implication cache: in-process LRU + on-disk store.

Implication answers are pure functions of the constraint sets (the
Calvanese-De Giacomo-Lenzerini line of containment-under-constraints
work leans on exactly this), so a *definite* TRUE/FALSE verdict keyed
by the alpha-invariant canonical form of the instance
(:mod:`repro.reasoning.canonical`) can be replayed forever: repeated
and alpha-equivalent queries become O(lookup) instead of O(solve).

Two tiers, modeled on EdgeDB's compiled-query cache:

* a process-local LRU bounded by entry count and byte size;
* an optional on-disk store (one JSON file per key under
  ``<cache-dir>/v<schema>-<code>/<kk>/<key>.json``), written
  atomically (``mkstemp`` + ``os.replace``) so concurrent writers are
  last-writer-wins and readers never see a torn file.  The store is
  versioned by an entry schema version and a solver code version; a
  bump orphans old entries (they live in a differently named
  directory and simply stop matching).

Corruption is survivable by construction: an entry that fails to
parse or validate is quarantined (renamed ``*.corrupt``) with a
warning and treated as a miss — a damaged cache can cost a recompute,
never a crash and never a wrong answer.

UNKNOWN and fault-degraded results are never stored; cached
certificates (counter-model graphs, stored in canonical alphabet) are
renamed back into the caller's alphabet on replay, so a hit's
evidence re-verifies under the Definition 2.1 checker like any fresh
refutation.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
import time
import warnings
from collections import OrderedDict
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: Entry format version (bump on incompatible entry layout changes).
SCHEMA_VERSION = 1

#: Solver semantics version (bump when any engine's verdicts could
#: change, orphaning every stored answer).
CODE_VERSION = "1"

#: Environment override for the on-disk store location.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Default on-disk store location (the CLI's default).
DEFAULT_CACHE_DIR = "~/.cache/repro"

_ANSWERS = ("true", "false")
_CERTIFICATES = ("proof", "countermodel", "none")

_ENTRY_FIELDS = {
    "schema_version",
    "code_version",
    "answer",
    "method",
    "decidable",
    "complexity",
    "certificate",
    "countermodel",
    "notes",
    "created",
}


def resolve_cache_dir(explicit: str | os.PathLike | None = None) -> Path:
    """The on-disk store location: explicit > $REPRO_CACHE_DIR > default."""
    if explicit:
        return Path(explicit).expanduser()
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env).expanduser()
    return Path(DEFAULT_CACHE_DIR).expanduser()


def version_tag() -> str:
    return f"v{SCHEMA_VERSION}-{CODE_VERSION}"


class CacheInfo:
    """How the cache participated in one solve — recorded on
    ``result.cache`` the same way ``result.execution`` records the
    cost model's decision.

    ``status`` is a closed vocabulary: ``hit`` (verdict replayed),
    ``store`` (solved fresh, result now cached), ``miss`` (solved
    fresh, result not cacheable — UNKNOWN or fault-degraded),
    ``bypass`` (lookup deliberately skipped: fault injection active,
    or the caller needs a fresh certificate).  ``tier`` names where a
    hit came from (``memory``/``disk``) or where a store landed.
    """

    __slots__ = ("status", "key", "tier", "detail")

    def __init__(
        self, status: str, key: str = "", tier: str = "", detail: str = ""
    ) -> None:
        self.status = status
        self.key = key
        self.tier = tier
        self.detail = detail

    def describe(self) -> str:
        parts = [self.status]
        if self.tier:
            parts.append(f"({self.tier})")
        if self.key:
            parts.append(f"key={self.key[:12]}")
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "key": self.key,
            "tier": self.tier,
            "detail": self.detail,
        }


def make_entry(
    answer: str,
    method: str,
    decidable: bool,
    complexity: str | None,
    certificate: str,
    countermodel: dict | None,
    notes: tuple[str, ...] = (),
) -> dict:
    """A validated entry dict (the only shape the tiers accept)."""
    if answer not in _ANSWERS:
        raise ValueError(f"only definite answers are cacheable, got {answer!r}")
    if certificate not in _CERTIFICATES:
        raise ValueError(f"unknown certificate kind {certificate!r}")
    return {
        "schema_version": SCHEMA_VERSION,
        "code_version": CODE_VERSION,
        "answer": answer,
        "method": method,
        "decidable": bool(decidable),
        "complexity": complexity,
        "certificate": certificate,
        "countermodel": countermodel,
        "notes": list(notes),
        "created": time.time(),
    }


def _validate_entry(entry: object) -> dict:
    """Raise ``ValueError`` unless ``entry`` is a well-formed stored
    verdict stamped with the current versions."""
    if not isinstance(entry, dict):
        raise ValueError("entry is not an object")
    missing = _ENTRY_FIELDS - set(entry)
    if missing:
        raise ValueError(f"entry missing fields {sorted(missing)}")
    if entry["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"entry schema version {entry['schema_version']!r} != "
            f"{SCHEMA_VERSION}"
        )
    if entry["code_version"] != CODE_VERSION:
        raise ValueError(
            f"entry code version {entry['code_version']!r} != {CODE_VERSION!r}"
        )
    if entry["answer"] not in _ANSWERS:
        raise ValueError(f"entry answer {entry['answer']!r} is not definite")
    if entry["certificate"] not in _CERTIFICATES:
        raise ValueError(f"unknown certificate {entry['certificate']!r}")
    if not isinstance(entry["method"], str) or not isinstance(
        entry["decidable"], bool
    ):
        raise ValueError("entry method/decidable have wrong types")
    if entry["countermodel"] is not None and not isinstance(
        entry["countermodel"], dict
    ):
        raise ValueError("entry countermodel is not an object")
    if not isinstance(entry["notes"], list):
        raise ValueError("entry notes is not a list")
    return entry


class _MemoryTier:
    """Thread-safe LRU bounded by entries and (approximate) bytes."""

    def __init__(self, max_entries: int, max_bytes: int) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[dict, int]] = OrderedDict()
        self._bytes = 0
        self.evictions = 0

    def get(self, key: str) -> dict | None:
        with self._lock:
            found = self._entries.get(key)
            if found is None:
                return None
            self._entries.move_to_end(key)
            return found[0]

    def put(self, key: str, entry: dict) -> None:
        size = len(json.dumps(entry))
        with self._lock:
            if key in self._entries:
                self._bytes -= self._entries.pop(key)[1]
            self._entries[key] = (entry, size)
            self._bytes += size
            while self._entries and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "evictions": self.evictions,
            }


class _DiskTier:
    """One JSON file per key, atomic writes, quarantine on corruption."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root).expanduser()
        self.directory = self.root / version_tag()

    def _path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        path = self._path_for(key)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            warnings.warn(
                f"implication cache: unreadable entry {path}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        try:
            entry = _validate_entry(json.loads(raw))
        except (json.JSONDecodeError, ValueError) as exc:
            self._quarantine(path, exc)
            return None
        if entry.get("key", key) != key:
            self._quarantine(path, ValueError("entry/key mismatch"))
            return None
        return entry

    def _quarantine(self, path: Path, exc: Exception) -> None:
        """Move a corrupt/truncated entry aside; never let it crash a
        solve or be re-read as a miss forever."""
        target = path.with_suffix(".corrupt")
        try:
            os.replace(path, target)
            note = f"quarantined to {target.name}"
        except OSError:
            try:
                os.unlink(path)
                note = "removed"
            except OSError:
                note = "left in place"
        warnings.warn(
            f"implication cache: corrupt entry {path} ({exc}); {note}",
            RuntimeWarning,
            stacklevel=3,
        )

    def put(self, key: str, entry: dict) -> bool:
        path = self._path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".repro-cache-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump({**entry, "key": key}, handle)
                # Atomic publish: concurrent writers race benignly,
                # last writer wins, readers see old or new, never torn.
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            warnings.warn(
                f"implication cache: cannot persist entry under "
                f"{self.directory}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return False
        return True

    def iter_entry_files(self):
        if not self.directory.is_dir():
            return
        for bucket in sorted(self.directory.iterdir()):
            if not bucket.is_dir():
                continue
            yield from sorted(bucket.glob("*.json"))

    def stats(self) -> dict:
        entries = 0
        total = 0
        for path in self.iter_entry_files():
            try:
                total += path.stat().st_size
                entries += 1
            except OSError:
                continue
        return {
            "directory": str(self.root),
            "version": version_tag(),
            "entries": entries,
            "bytes": total,
        }

    def clear(self) -> int:
        """Remove every stored entry (all versions) under the root.

        Returns the number of entry files removed.  Only files this
        store plausibly wrote are touched (``v*`` version directories
        and the counters file), so a mistaken ``--cache-dir`` cannot
        vaporize unrelated data.
        """
        removed = 0
        if not self.root.is_dir():
            return 0
        for versioned in sorted(self.root.glob("v*-*")):
            if not versioned.is_dir():
                continue
            for bucket in sorted(versioned.iterdir()):
                if bucket.is_dir():
                    for path in sorted(bucket.iterdir()):
                        try:
                            if path.suffix in (".json", ".corrupt", ".tmp"):
                                path.unlink()
                                if path.suffix == ".json":
                                    removed += 1
                        except OSError:
                            continue
                    try:
                        bucket.rmdir()
                    except OSError:
                        continue
                elif bucket.name in ("counters.json", "counters.lock"):
                    try:
                        bucket.unlink()
                    except OSError:
                        pass
            try:
                versioned.rmdir()
            except OSError:
                continue
        return removed

    # -- persistent counters (best-effort, for `repro cache stats`) ----

    @property
    def _counters_path(self) -> Path:
        return self.directory / "counters.json"

    @property
    def _counters_lock_path(self) -> Path:
        return self.directory / "counters.lock"

    @contextlib.contextmanager
    def _counters_locked(self):
        """Serialize counter read-modify-write across processes.

        An ``flock`` on a sidecar lock file (never the data file —
        replacing a locked file would silently break the lock)
        makes concurrent folds exact instead of last-writer-wins.
        Platforms without ``fcntl`` degrade to the old best-effort
        behavior: increments may be dropped under a race, never
        corrupted (writes stay atomic either way).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        with open(self._counters_lock_path, "a+") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def read_counters(self) -> dict:
        """The lifetime counters; a torn/corrupt file resets to zero.

        A damaged counters file (torn concurrent write from a
        pre-lock version, disk-full truncation, manual editing) is
        an observability loss, not an error condition: warn and
        start the tallies over rather than crash a solve or the
        ``cache stats`` command.
        """
        zeros = {"hits": 0, "misses": 0, "stores": 0}
        try:
            raw = self._counters_path.read_text()
        except FileNotFoundError:
            return zeros
        except OSError as exc:
            warnings.warn(
                f"implication cache: unreadable counters file "
                f"{self._counters_path}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return zeros
        try:
            data = json.loads(raw)
            if not isinstance(data, dict):
                raise ValueError("counters file is not an object")
            return {
                "hits": int(data.get("hits", 0)),
                "misses": int(data.get("misses", 0)),
                "stores": int(data.get("stores", 0)),
            }
        except (ValueError, TypeError) as exc:
            warnings.warn(
                f"implication cache: torn/corrupt counters file "
                f"{self._counters_path} ({exc}); resetting to zero",
                RuntimeWarning,
                stacklevel=2,
            )
            return zeros

    def add_counters(self, hits: int, misses: int, stores: int) -> None:
        """Fold per-process tallies into the on-disk counters.

        Safe under concurrent connections: the read-modify-write runs
        under :meth:`_counters_locked`, and the write itself is the
        same ``mkstemp`` + atomic-rename pattern as entry writes, so
        readers never observe a torn file.
        """
        if not (hits or misses or stores):
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with self._counters_locked():
                current = self.read_counters()
                current["hits"] += hits
                current["misses"] += misses
                current["stores"] += stores
                fd, tmp = tempfile.mkstemp(
                    dir=self.directory,
                    prefix=".repro-counters-",
                    suffix=".tmp",
                )
                with os.fdopen(fd, "w") as handle:
                    json.dump(current, handle)
                os.replace(tmp, self._counters_path)
        except OSError:
            pass


class ImplicationCache:
    """The two-tier store :func:`repro.reasoning.solve` consults.

    ``cache_dir=None`` keeps the cache purely in-process; a path adds
    the persistent tier (disk hits are promoted into memory).
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        max_entries: int = 4096,
        max_bytes: int = 32 << 20,
    ) -> None:
        if max_entries < 1 or max_bytes < 1:
            raise ValueError("cache bounds must be positive")
        self.memory = _MemoryTier(max_entries, max_bytes)
        self.disk = _DiskTier(Path(cache_dir)) if cache_dir else None
        self._lock = threading.Lock()
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.stores = 0
        self.bypasses = 0

    # -- core protocol -------------------------------------------------

    def lookup(self, key: str) -> tuple[dict, str] | None:
        """The stored entry and the tier it came from, or None."""
        entry = self.memory.get(key)
        if entry is not None:
            with self._lock:
                self.hits_memory += 1
            return entry, "memory"
        if self.disk is not None:
            entry = self.disk.get(key)
            if entry is not None:
                self.memory.put(key, entry)
                with self._lock:
                    self.hits_disk += 1
                return entry, "disk"
        with self._lock:
            self.misses += 1
        return None

    def store(self, key: str, entry: dict) -> str:
        """Persist a validated entry; returns the deepest tier written."""
        _validate_entry(entry)
        self.memory.put(key, entry)
        with self._lock:
            self.stores += 1
        if self.disk is not None and self.disk.put(key, entry):
            return "disk"
        return "memory"

    def note_bypass(self) -> None:
        with self._lock:
            self.bypasses += 1

    # -- maintenance ---------------------------------------------------

    def clear(self) -> int:
        """Drop both tiers; returns disk entries removed."""
        self.memory.clear()
        if self.disk is not None:
            return self.disk.clear()
        return 0

    def flush_counters(self) -> None:
        """Fold this process's hit/miss/store tallies into the on-disk
        counters file (no-op for memory-only caches)."""
        if self.disk is None:
            return
        with self._lock:
            hits = self.hits_memory + self.hits_disk
            misses, stores = self.misses, self.stores
        self.disk.add_counters(hits, misses, stores)

    def stats(self) -> dict:
        with self._lock:
            counters = {
                "hits_memory": self.hits_memory,
                "hits_disk": self.hits_disk,
                "misses": self.misses,
                "stores": self.stores,
                "bypasses": self.bypasses,
            }
        out = {"counters": counters, "memory": self.memory.stats()}
        if self.disk is not None:
            disk = self.disk.stats()
            disk["lifetime_counters"] = self.disk.read_counters()
            out["disk"] = disk
        return out
