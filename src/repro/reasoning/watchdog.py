"""Hung-solve watchdog and retirable solver threads.

The implication problem this repo reproduces is undecidable in the
general case, so a solve that simply *never returns* is an intrinsic
hazard of the workload, not a bug to be fixed once.  A wedged solve is
worse than a crashed one: a crash breaks a pool and the supervisor
respawns it (PR 5), but a hang silently consumes a solver slot forever
while ``health`` still answers ``ok``.

This module provides the two primitives the service layer composes to
reclaim wedged capacity:

* :class:`SolveWatchdog` — a single daemon thread polling a registry
  of in-flight solves.  Each watch carries a *deadline*, a *grace*
  (past ``deadline + grace`` the watch fires ``on_cancel``, typically
  tripping the solve's shared-memory
  :class:`~repro.reasoning.shm.CancelFlag` that ``scan_codes`` /
  ``scan_typed_instances`` / ``chase`` already poll) and a *hard
  grace* (past ``cancelled_at + hard_grace`` it fires ``on_hang`` —
  the solve ignored cooperative cancellation and must be abandoned).

* :class:`RetiringSolverPool` — a thread pool whose threads can be
  *retired while running*.  Python threads cannot be killed, so
  "abandon" means: mark the thread retired, detach its future (failing
  it with the caller's error, typically
  :class:`~repro.errors.HungSolveError`), and start a replacement
  thread so capacity is restored immediately.  When the wedged
  function eventually returns (or raises), the retired thread discards
  the result — a stale verdict must never reach a caller — and exits.

Both are deliberately independent of the daemon so library users and
tests can compose them around any blocking call.

:func:`current_rss_mb` / :func:`current_vms_mb` are the parent-side
memory probes used by the portfolio's pre-spawn memory guard.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass
class WatchedSolve:
    """One in-flight solve registered with a :class:`SolveWatchdog`.

    The watchdog mutates ``cancelled_at`` / ``hung``; the owner calls
    :meth:`close` when the solve returns (by whatever path).  All
    fields use the ``time.monotonic`` clock.
    """

    deadline: float
    grace_s: float
    hard_grace_s: float
    on_cancel: Callable[[], None]
    on_hang: Callable[[], None]
    label: str = ""
    cancelled_at: Optional[float] = None
    hung: bool = False
    closed: bool = False

    @property
    def tripped(self) -> bool:
        """Whether the watchdog fired ``on_cancel`` for this solve."""
        return self.cancelled_at is not None

    def close(self) -> None:
        """Deregister: the solve returned, stop watching it."""
        self.closed = True


class SolveWatchdog:
    """A lazy single-thread monitor for in-flight solve deadlines.

    The monitor thread starts on the first :meth:`watch` and is a
    daemon, so an embedding process never blocks on it at exit.
    Callbacks run *on the watchdog thread* and must be quick and
    exception-safe; exceptions are swallowed (a broken callback must
    not stop the watchdog from policing every other solve).
    """

    def __init__(self, poll_s: float = 0.05):
        self.poll_s = poll_s
        self._lock = threading.Lock()
        self._watches: list[WatchedSolve] = []
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: Number of cooperative-cancel firings (``on_cancel``).
        self.cancels = 0
        #: Number of hard-abandon firings (``on_hang``).
        self.hangs = 0

    def watch(
        self,
        deadline: float,
        grace_s: float,
        hard_grace_s: float,
        on_cancel: Callable[[], None],
        on_hang: Callable[[], None],
        label: str = "",
    ) -> WatchedSolve:
        """Register a solve; returns its handle (``handle.close()``)."""
        handle = WatchedSolve(
            deadline=deadline,
            grace_s=max(0.0, grace_s),
            hard_grace_s=max(0.0, hard_grace_s),
            on_cancel=on_cancel,
            on_hang=on_hang,
            label=label,
        )
        with self._lock:
            if self._stop.is_set():
                raise RuntimeError("watchdog is stopped")
            self._watches.append(handle)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="repro-watchdog", daemon=True
                )
                self._thread.start()
        return handle

    def _loop(self) -> None:
        while not self._stop.wait(self.poll_s):
            now = time.monotonic()
            with self._lock:
                # Prune closed watches; snapshot the live ones so the
                # callbacks below run outside the lock.
                self._watches = [w for w in self._watches if not w.closed]
                pending = list(self._watches)
            for w in pending:
                if w.closed:
                    continue
                if w.cancelled_at is None:
                    if now > w.deadline + w.grace_s:
                        w.cancelled_at = now
                        self.cancels += 1
                        try:
                            w.on_cancel()
                        except Exception:
                            pass
                elif not w.hung and now > w.cancelled_at + w.hard_grace_s:
                    w.hung = True
                    self.hangs += 1
                    try:
                        w.on_hang()
                    except Exception:
                        pass

    def stop(self) -> None:
        """Stop the monitor thread (idempotent)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=1.0)

    def stats(self) -> dict[str, int]:
        with self._lock:
            watching = sum(1 for w in self._watches if not w.closed)
        return {
            "watching": watching,
            "cancels": self.cancels,
            "hangs": self.hangs,
        }


@dataclass
class _WorkItem:
    fn: Callable[[], Any]
    future: Future = field(default_factory=Future)


def _settle(future: Future, result: Any = None,
            error: Optional[BaseException] = None) -> None:
    """Set a future's outcome, tolerating a lost settle race.

    The watchdog (failing the future with :class:`HungSolveError`) and
    the solver thread (delivering the real outcome) may race; first
    writer wins and the loser must not blow up the worker loop.
    """
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass


class RetiringSolverPool:
    """A fixed-capacity thread pool whose threads can be retired.

    Unlike :class:`concurrent.futures.ThreadPoolExecutor`, a thread
    stuck in a non-returning call does not strand a slot forever:
    :meth:`retire_running` detaches the wedged thread (its eventual
    result is discarded) and spawns a replacement, restoring capacity.
    All threads are daemons so wedged ones cannot block process exit.
    """

    def __init__(self, threads: int, name_prefix: str = "repro-solve"):
        self._name_prefix = name_prefix
        self._work: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        #: ident -> Thread for live, non-retired threads.
        self._threads: dict[int, threading.Thread] = {}
        #: ident -> Future currently executing on that thread.
        self._running: dict[int, Future] = {}
        self._retired_idents: set[int] = set()
        self._spawned = 0
        self._retired = 0
        self._shutdown = False
        self.capacity = max(1, int(threads))
        for _ in range(self.capacity):
            self._spawn()

    def _spawn(self) -> None:
        with self._lock:
            if self._shutdown:
                return
            self._spawned += 1
            serial = self._spawned
        thread = threading.Thread(
            target=self._run,
            name=f"{self._name_prefix}-{serial}",
            daemon=True,
        )
        thread.start()

    def _run(self) -> None:
        ident = threading.get_ident()
        with self._lock:
            self._threads[ident] = threading.current_thread()
        try:
            while True:
                item = self._work.get()
                if item is None:
                    return
                if not item.future.set_running_or_notify_cancel():
                    continue
                with self._lock:
                    self._running[ident] = item.future
                try:
                    result = item.fn()
                except BaseException as exc:  # noqa: BLE001 — forwarded
                    outcome_error: Optional[BaseException] = exc
                    result = None
                else:
                    outcome_error = None
                with self._lock:
                    self._running.pop(ident, None)
                    retired = ident in self._retired_idents
                if retired:
                    # The watchdog abandoned this solve while it ran;
                    # a replacement thread already took over the slot.
                    # Discard the late outcome — it must never reach
                    # the caller — and exit.
                    return
                _settle(item.future, result, outcome_error)
        finally:
            with self._lock:
                self._threads.pop(ident, None)
                self._running.pop(ident, None)
                self._retired_idents.discard(ident)

    def submit(self, fn: Callable[[], Any]) -> Future:
        """Queue ``fn`` for execution; returns its future."""
        with self._lock:
            if self._shutdown:
                raise RuntimeError("solver pool is shut down")
        item = _WorkItem(fn)
        self._work.put(item)
        return item.future

    def retire_running(self, future: Future,
                       error: BaseException) -> bool:
        """Abandon the thread currently running ``future``.

        Fails ``future`` with ``error``, marks the thread retired (its
        eventual return value is discarded) and spawns a replacement.
        Returns False when the solve finished in the race window —
        then the genuine outcome stands and nothing is retired.
        """
        with self._lock:
            ident = next(
                (i for i, f in self._running.items() if f is future), None
            )
            if ident is None:
                return False
            self._retired_idents.add(ident)
            self._retired += 1
            self._threads.pop(ident, None)
            self._running.pop(ident, None)
        self._spawn()
        _settle(future, error=error)
        return True

    def shutdown(self) -> None:
        """Stop accepting work and release idle threads.

        Never joins: a wedged (retired or not) thread must not block
        daemon shutdown.  Idle threads drain one sentinel each and
        exit; busy non-retired threads exit after their current item.
        """
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            live = len(self._threads)
        for _ in range(live):
            self._work.put(None)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "threads": len(self._threads),
                "busy": len(self._running),
                "spawned": self._spawned,
                "retired": self._retired,
            }


def _proc_status_kb(key: str) -> Optional[float]:
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith(key + ":"):
                    return float(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def current_rss_mb() -> Optional[float]:
    """This process's resident set size in MiB (None off-Linux)."""
    pages = _proc_statm_field(1)
    if pages is None:
        kb = _proc_status_kb("VmRSS")
        return None if kb is None else kb / 1024.0
    return pages * os.sysconf("SC_PAGE_SIZE") / float(1 << 20)


def current_vms_mb() -> Optional[float]:
    """This process's virtual memory size in MiB (None off-Linux).

    ``RLIMIT_AS`` is an address-space (virtual) ceiling, so tests
    sizing a worker ceiling relative to the current process should
    start from this, not from RSS.
    """
    kb = _proc_status_kb("VmSize")
    return None if kb is None else kb / 1024.0


def _proc_statm_field(index: int) -> Optional[float]:
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            return float(fh.read().split()[index])
    except (OSError, ValueError, IndexError):
        return None
