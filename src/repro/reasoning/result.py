"""The shared result type for implication queries.

Every decider and semi-decider returns an :class:`ImplicationResult`:
a three-valued answer plus the method that produced it and whatever
certificate is available (an I_r proof, a rewrite derivation, or a
counter-model graph).  Decision procedures for decidable problems
always return a definite answer; semi-deciders may return UNKNOWN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.truth import Trilean

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.structure import Graph
    from repro.reasoning.axioms import IrProof


@dataclass(frozen=True)
class EngineStats:
    """Per-engine accounting for a portfolio (or sequential) run.

    ``candidates`` means chase steps for the proof engine and examined
    candidates for the counter-model engines; ``outcome`` is the
    engine's own verdict (``true``/``false``/``unknown`` for the
    chase, ``hit``/``exhausted``/``budget``/``cancelled`` for the
    searches), independent of which engine won the race.
    """

    engine: str
    outcome: str
    candidates: int = 0
    elapsed: float = 0.0
    detail: str = ""

    def describe(self) -> str:
        parts = [f"{self.engine}: {self.outcome}"]
        parts.append(f"{self.candidates} candidates")
        parts.append(f"{self.elapsed * 1e3:.1f} ms")
        if self.detail:
            parts.append(self.detail)
        return ", ".join(parts)


@dataclass
class ImplicationResult:
    """Answer to "does Sigma (finitely) imply phi?" in some context.

    ``answer`` uses :class:`Trilean`; for the decidable problems of
    this library implication and finite implication coincide
    (P_w and local extent untyped, everything over M — Theorems 4.2,
    4.9, 5.1), so one answer covers both.  Semi-deciders document any
    asymmetry in ``notes``.
    """

    answer: Trilean
    method: str
    decidable: bool
    complexity: str | None = None
    proof: "IrProof | None" = None
    countermodel: "Graph | None" = None
    certificate: Any = None
    notes: tuple[str, ...] = field(default_factory=tuple)
    stats: tuple[EngineStats, ...] = field(default_factory=tuple)

    @property
    def implied(self) -> bool:
        """Definite yes/no; raises on UNKNOWN."""
        return self.answer.to_bool()

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError(
            "an ImplicationResult is not a boolean; use .implied or .answer"
        )

    def describe(self) -> str:
        parts = [f"answer={self.answer.value}", f"method={self.method}"]
        if self.complexity:
            parts.append(f"complexity={self.complexity}")
        if self.proof is not None:
            parts.append(f"proof={len(self.proof.lines)} lines")
        if self.countermodel is not None:
            parts.append(
                f"countermodel={self.countermodel.node_count()} nodes"
            )
        for engine in self.stats:
            parts.append(f"engine[{engine.describe()}]")
        for note in self.notes:
            parts.append(f"note={note}")
        return "; ".join(parts)
