"""The shared result type for implication queries.

Every decider and semi-decider returns an :class:`ImplicationResult`:
a three-valued answer plus the method that produced it and whatever
certificate is available (an I_r proof, a rewrite derivation, or a
counter-model graph).  Decision procedures for decidable problems
always return a definite answer; semi-deciders may return UNKNOWN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.truth import Trilean

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.structure import Graph
    from repro.reasoning.axioms import IrProof


@dataclass(frozen=True)
class EngineStats:
    """Per-engine accounting for a portfolio (or sequential) run.

    ``candidates`` means chase steps for the proof engine and examined
    candidates for the counter-model engines; ``outcome`` is the
    engine's own verdict (``true``/``false``/``unknown`` for the
    chase, ``hit``/``exhausted``/``budget``/``cancelled`` for the
    searches), independent of which engine won the race.
    """

    engine: str
    outcome: str
    candidates: int = 0
    elapsed: float = 0.0
    detail: str = ""

    def describe(self) -> str:
        parts = [f"{self.engine}: {self.outcome}"]
        parts.append(f"{self.candidates} candidates")
        parts.append(f"{self.elapsed * 1e3:.1f} ms")
        if self.detail:
            parts.append(self.detail)
        return ", ".join(parts)


@dataclass(frozen=True)
class FaultEvent:
    """One fault observed (and survived) by the execution runtime.

    ``kind`` is a closed vocabulary: ``worker-crash`` (a worker died
    and took its pool generation with it), ``pool-respawn`` (a fresh
    pool replaced a broken one), ``pool-degraded`` (respawns
    exhausted; execution fell back in-process), ``task-error`` (a task
    raised in its worker), ``task-retry`` (the task was resubmitted),
    ``task-degraded`` (the task re-ran in-process), ``retry-exhausted``
    (every attempt failed; the engine abstains), ``injected`` (a
    deliberate fault from the injection layer fired).
    """

    kind: str
    engine: str
    attempt: int = 0
    detail: str = ""

    def describe(self) -> str:
        text = f"{self.kind}@{self.engine}"
        if self.attempt:
            text += f"#{self.attempt}"
        if self.detail:
            text += f" ({self.detail})"
        return text


@dataclass(frozen=True)
class FaultReport:
    """Everything that went wrong — and was absorbed — during a solve.

    Attached to every :class:`ImplicationResult` (empty in the common
    clean run).  ``answered_by`` names the engine whose certificate
    ultimately decided the answer (empty for UNKNOWN); it is recorded
    even on clean runs of the fault-tolerant portfolio so callers can
    audit which engine a degraded run trusted.
    """

    events: tuple[FaultEvent, ...] = ()
    retries: int = 0
    degradations: int = 0
    answered_by: str = ""

    @property
    def clean(self) -> bool:
        """True when no fault of any kind was observed."""
        return not self.events

    def describe(self) -> str:
        parts = [
            f"retries={self.retries}",
            f"degradations={self.degradations}",
        ]
        if self.answered_by:
            parts.append(f"answered_by={self.answered_by}")
        parts.extend(event.describe() for event in self.events)
        return ", ".join(parts)

    def to_dict(self) -> dict:
        return {
            "retries": self.retries,
            "degradations": self.degradations,
            "answered_by": self.answered_by,
            "events": [
                {
                    "kind": e.kind,
                    "engine": e.engine,
                    "attempt": e.attempt,
                    "detail": e.detail,
                }
                for e in self.events
            ],
        }


@dataclass
class ImplicationResult:
    """Answer to "does Sigma (finitely) imply phi?" in some context.

    ``answer`` uses :class:`Trilean`; for the decidable problems of
    this library implication and finite implication coincide
    (P_w and local extent untyped, everything over M — Theorems 4.2,
    4.9, 5.1), so one answer covers both.  Semi-deciders document any
    asymmetry in ``notes``.
    """

    answer: Trilean
    method: str
    decidable: bool
    complexity: str | None = None
    proof: "IrProof | None" = None
    countermodel: "Graph | None" = None
    certificate: Any = None
    notes: tuple[str, ...] = field(default_factory=tuple)
    stats: tuple[EngineStats, ...] = field(default_factory=tuple)
    faults: FaultReport = field(default_factory=FaultReport)
    #: The cost-model decision the portfolio ran under
    #: (:class:`repro.reasoning.costmodel.ExecutionDecision`); None for
    #: decidable cells, which never touch the portfolio.
    execution: Any = None
    #: How the implication cache participated in this solve
    #: (:class:`repro.reasoning.cache.CacheInfo`); None when no cache
    #: was passed to :func:`repro.reasoning.solve`.
    cache: Any = None

    @property
    def implied(self) -> bool:
        """Definite yes/no; raises on UNKNOWN."""
        return self.answer.to_bool()

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError(
            "an ImplicationResult is not a boolean; use .implied or .answer"
        )

    def describe(self) -> str:
        parts = [f"answer={self.answer.value}", f"method={self.method}"]
        if self.complexity:
            parts.append(f"complexity={self.complexity}")
        if self.proof is not None:
            parts.append(f"proof={len(self.proof.lines)} lines")
        if self.countermodel is not None:
            parts.append(
                f"countermodel={self.countermodel.node_count()} nodes"
            )
        if self.execution is not None:
            parts.append(f"execution[{self.execution.describe()}]")
        if self.cache is not None:
            parts.append(f"cache[{self.cache.describe()}]")
        for engine in self.stats:
            parts.append(f"engine[{engine.describe()}]")
        if not self.faults.clean:
            parts.append(f"faults[{self.faults.describe()}]")
        for note in self.notes:
            parts.append(f"note={note}")
        return "; ".join(parts)
