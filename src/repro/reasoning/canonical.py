"""Canonical forms for whole implication instances.

An implication answer is a pure function of the *structure* of the
instance: renaming edge labels by any bijection (and, in typed
contexts, renaming classes) and reordering or duplicating premises
changes nothing (the constraint language of Definition 2.1 has no
built-in labels, and Table 1's verdicts quantify over all
structures).  :func:`canonicalize_instance` exploits that to map an
instance (premise set Sigma, conclusion phi, context, optional typed
signature Delta) to a canonical serialized form — identical for any
two alpha-equivalent instances — whose sha256 is the cross-request
cache key used by :mod:`repro.reasoning.cache`.

The algorithm mirrors graph canonicalization:

1. *Color refinement.*  Every label (and class name) gets a color
   derived purely from where it occurs — positions inside premise and
   conclusion paths, record fields and class references in the schema
   — with constraint/type shapes rendered under the current coloring.
   Iterating to a fixpoint partitions the alphabet into structural
   equivalence classes without ever looking at the original names.
2. *Tie-break search.*  Residual symmetries (labels the refinement
   cannot distinguish — they really are interchangeable, or nearly so)
   are resolved by enumerating the remaining assignments and keeping
   the lexicographically least serialization.  The search space is the
   product of factorials of the ambiguous group sizes; above
   ``search_cap`` we fall back to ordering by original name, which is
   still deterministic (same instance -> same key) but no longer
   alpha-invariant — the form records ``fallback=True``.

Rigid symbols are never renamed: the membership label
(:data:`repro.types.typesys.MEMBERSHIP_LABEL`) in typed contexts, and
atomic type names, both carry fixed semantics.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from itertools import permutations, product
from math import factorial

from repro.constraints.ast import Direction, PathConstraint
from repro.graph.structure import Graph
from repro.paths import Path
from repro.types.typesys import (
    MEMBERSHIP_LABEL,
    ClassRef,
    RecordType,
    Schema,
    SetType,
    Type,
)

#: Bump when the canonical serialization format changes; folded into
#: the serialized text, so old cache entries stop matching.
CANON_VERSION = 1

#: Default ceiling on the tie-break search (product over ambiguous
#: groups of group-size factorials).  7! — instances from the seeded
#: generators never get near it.
DEFAULT_SEARCH_CAP = 5040


@dataclass(frozen=True)
class CanonicalForm:
    """The canonical serialization of one implication instance.

    ``label_map`` / ``class_map`` send original names to canonical
    ones (rigid symbols map to themselves); they are what a cache hit
    uses to rename a stored certificate back into the caller's
    alphabet.  ``fallback`` is True when the symmetry search was
    capped, in which case the key is deterministic but not
    alpha-invariant.
    """

    key: str
    text: str
    label_map: Mapping[str, str]
    class_map: Mapping[str, str]
    fallback: bool = False

    def inverse_label_map(self) -> dict[str, str]:
        return {v: k for k, v in self.label_map.items()}

    def inverse_class_map(self) -> dict[str, str]:
        return {v: k for k, v in self.class_map.items()}


# ---------------------------------------------------------------------------
# Renaming helpers (also used by tests and benchmarks to build
# alpha-variants, and by the cache to replay certificates).
# ---------------------------------------------------------------------------


def rename_path(path: Path, mapping: Mapping[str, str]) -> Path:
    return Path(mapping.get(label, label) for label in path.labels)


def rename_constraint(
    psi: PathConstraint, mapping: Mapping[str, str]
) -> PathConstraint:
    return PathConstraint(
        rename_path(psi.prefix, mapping),
        rename_path(psi.lhs, mapping),
        rename_path(psi.rhs, mapping),
        psi.direction,
    )


def rename_type(
    tau: Type,
    label_map: Mapping[str, str],
    class_map: Mapping[str, str],
) -> Type:
    if isinstance(tau, ClassRef):
        return ClassRef(class_map.get(tau.name, tau.name))
    if isinstance(tau, SetType):
        return SetType(rename_type(tau.element, label_map, class_map))
    if isinstance(tau, RecordType):
        return RecordType(
            [
                (
                    label_map.get(label, label),
                    rename_type(field, label_map, class_map),
                )
                for label, field in tau.fields
            ]
        )
    return tau  # atomic types are rigid


def rename_schema(
    schema: Schema,
    label_map: Mapping[str, str],
    class_map: Mapping[str, str],
) -> Schema:
    """The same schema under a label/class bijection (rigid symbols —
    ``member``, atomic type names — must not appear in the maps)."""
    return Schema(
        {
            class_map.get(name, name): rename_type(
                body, label_map, class_map
            )
            for name, body in schema.classes.items()
        },
        rename_type(schema.db_type, label_map, class_map),
        atomic_types=schema.atomic_names,
    )


def rename_graph(
    graph: Graph,
    label_map: Mapping[str, str],
    sort_map: Mapping[str, str] | None = None,
) -> Graph:
    """A copy of ``graph`` with edge labels (and node sorts) renamed."""
    out = Graph(root=graph.root, nodes=graph.nodes)
    for src, label, dst in graph.edges():
        out.add_edge(src, label_map.get(label, label), dst)
    if sort_map is None:
        sort_map = {}
    for node, sort in graph.sorts.items():
        out.set_sort(node, sort_map.get(sort, sort))
    return out


# ---------------------------------------------------------------------------
# Shapes under a coloring.
# ---------------------------------------------------------------------------


def _path_shape(path: Path, lcolor: Mapping[str, str]) -> str:
    return ".".join(lcolor[label] for label in path.labels)


def _psi_shape(psi: PathConstraint, lcolor: Mapping[str, str]) -> str:
    direction = "F" if psi.direction is Direction.FORWARD else "B"
    return "|".join(
        (
            _path_shape(psi.prefix, lcolor),
            _path_shape(psi.lhs, lcolor),
            _path_shape(psi.rhs, lcolor),
            direction,
        )
    )


def _type_shape(
    tau: Type, lcolor: Mapping[str, str], ccolor: Mapping[str, str]
) -> str:
    if isinstance(tau, ClassRef):
        return "c:" + ccolor[tau.name]
    if isinstance(tau, SetType):
        return "{" + _type_shape(tau.element, lcolor, ccolor) + "}"
    if isinstance(tau, RecordType):
        inner = sorted(
            f"{lcolor[label]}:{_type_shape(field, lcolor, ccolor)}"
            for label, field in tau.fields
        )
        return "[" + ",".join(inner) + "]"
    return "b:" + tau.name  # type: ignore[attr-defined]


def _digest(payload: object) -> str:
    return hashlib.sha256(repr(payload).encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Color refinement.
# ---------------------------------------------------------------------------


def _collect_schema_occurrences(
    tau: Type,
    owner: str,
    ctx: tuple[str, ...],
    lsig: dict[str, list],
    csig: dict[str, list],
    lcolor: Mapping[str, str],
    ccolor: Mapping[str, str],
) -> None:
    """Record, per label/class, where it occurs inside one type tree.

    ``ctx`` is the color path from the owner down to ``tau`` — built
    from colors only, so occurrences are name-invariant.
    """
    if isinstance(tau, ClassRef):
        csig[tau.name].append(("ref", owner, ctx))
    elif isinstance(tau, SetType):
        _collect_schema_occurrences(
            tau.element, owner, ctx + ("{}",), lsig, csig, lcolor, ccolor
        )
    elif isinstance(tau, RecordType):
        for label, field in tau.fields:
            lsig[label].append(
                ("field", owner, ctx, _type_shape(field, lcolor, ccolor))
            )
            _collect_schema_occurrences(
                field,
                owner,
                ctx + (lcolor[label],),
                lsig,
                csig,
                lcolor,
                ccolor,
            )


def _partition(colors: Mapping[str, str]) -> frozenset[frozenset[str]]:
    groups: dict[str, set[str]] = {}
    for name, color in colors.items():
        groups.setdefault(color, set()).add(name)
    return frozenset(frozenset(g) for g in groups.values())


def _refine_colors(
    premises: Sequence[PathConstraint],
    phi: PathConstraint,
    schema: Schema | None,
    labels: Sequence[str],
    classes: Sequence[str],
    rigid: frozenset[str],
) -> tuple[dict[str, str], dict[str, str]]:
    """Iterate occurrence-signature coloring to a stable partition."""
    lcolor = {
        label: (f"R:{label}" if label in rigid else "L") for label in labels
    }
    ccolor = {name: "C" for name in classes}

    for _ in range(len(labels) + len(classes) + 2):
        lsig: dict[str, list] = {label: [] for label in labels}
        csig: dict[str, list] = {name: [] for name in classes}

        constraints = [("Q", phi)] + [("P", psi) for psi in premises]
        for tag, psi in constraints:
            shape = tag + ":" + _psi_shape(psi, lcolor)
            for field_name, path in (
                ("pf", psi.prefix),
                ("lhs", psi.lhs),
                ("rhs", psi.rhs),
            ):
                for index, label in enumerate(path.labels):
                    lsig[label].append((shape, field_name, index))

        if schema is not None:
            owners = [("DB", schema.db_type)] + [
                (ccolor[name], schema.body_of(name))
                for name in classes
            ]
            for owner, tau in owners:
                _collect_schema_occurrences(
                    tau, owner, (), lsig, csig, lcolor, ccolor
                )
            for name in classes:
                csig[name].append(
                    ("body", _type_shape(schema.body_of(name), lcolor, ccolor))
                )

        new_lcolor = {
            label: (
                f"R:{label}"
                if label in rigid
                else _digest((lcolor[label], sorted(map(repr, lsig[label]))))
            )
            for label in labels
        }
        new_ccolor = {
            name: _digest((ccolor[name], sorted(map(repr, csig[name]))))
            for name in classes
        }
        stable = _partition(new_lcolor) == _partition(lcolor) and _partition(
            new_ccolor
        ) == _partition(ccolor)
        lcolor, ccolor = new_lcolor, new_ccolor
        if stable:
            break
    return lcolor, ccolor


# ---------------------------------------------------------------------------
# Serialization under an assignment + the tie-break search.
# ---------------------------------------------------------------------------


def _render_instance(
    premises: Sequence[PathConstraint],
    phi: PathConstraint,
    schema: Schema | None,
    context_value: str,
    lmap: Mapping[str, str],
    cmap: Mapping[str, str],
) -> str:
    lines = [f"canon={CANON_VERSION}", f"ctx={context_value}"]
    lines.append("phi=" + _render_psi(phi, lmap))
    for rendered in sorted({_render_psi(psi, lmap) for psi in premises}):
        lines.append("sigma=" + rendered)
    if schema is not None:
        lines.append(
            "db=" + _render_type_named(schema.db_type, lmap, cmap)
        )
        for name in sorted(schema.class_names, key=lambda n: cmap[n]):
            lines.append(
                cmap[name]
                + "="
                + _render_type_named(schema.body_of(name), lmap, cmap)
            )
        lines.append("atoms=" + ",".join(sorted(schema.atomic_names)))
    return "\n".join(lines)


def _render_psi(psi: PathConstraint, lmap: Mapping[str, str]) -> str:
    direction = "F" if psi.direction is Direction.FORWARD else "B"
    return "|".join(
        (
            ".".join(lmap[label] for label in psi.prefix.labels),
            ".".join(lmap[label] for label in psi.lhs.labels),
            ".".join(lmap[label] for label in psi.rhs.labels),
            direction,
        )
    )


def _render_type_named(
    tau: Type, lmap: Mapping[str, str], cmap: Mapping[str, str]
) -> str:
    if isinstance(tau, ClassRef):
        return "c:" + cmap[tau.name]
    if isinstance(tau, SetType):
        return "{" + _render_type_named(tau.element, lmap, cmap) + "}"
    if isinstance(tau, RecordType):
        inner = sorted(
            f"{lmap[label]}:{_render_type_named(field, lmap, cmap)}"
            for label, field in tau.fields
        )
        return "[" + ",".join(inner) + "]"
    return "b:" + tau.name  # type: ignore[attr-defined]


def _grouped(
    names: Sequence[str], colors: Mapping[str, str], rigid: frozenset[str]
) -> list[list[str]]:
    """Non-rigid names grouped by color; groups ordered by color."""
    groups: dict[str, list[str]] = {}
    for name in names:
        if name in rigid:
            continue
        groups.setdefault(colors[name], []).append(name)
    return [
        sorted(groups[color]) for color in sorted(groups)
    ]


def canonicalize_instance(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    context_value: str = "semistructured",
    schema: Schema | None = None,
    search_cap: int = DEFAULT_SEARCH_CAP,
) -> CanonicalForm:
    """Canonicalize one implication instance.

    The returned key is invariant under premise reordering/duplication
    and under bijective renaming of labels (and class names), rigid
    symbols excepted — unless the residual symmetry search would
    exceed ``search_cap``, in which case the key is still
    deterministic and ``fallback`` is set.
    """
    premises = sorted(set(sigma))
    rigid = (
        frozenset({MEMBERSHIP_LABEL}) if schema is not None else frozenset()
    )

    label_set: set[str] = set(phi.alphabet())
    for psi in premises:
        label_set |= psi.alphabet()
    classes: list[str] = []
    if schema is not None:
        classes = sorted(schema.class_names)
        for tau in schema.all_types():
            if isinstance(tau, RecordType):
                label_set.update(label for label, _ in tau.fields)
    labels = sorted(label_set)

    lcolor, ccolor = _refine_colors(
        premises, phi, schema, labels, classes, rigid
    )

    label_groups = _grouped(labels, lcolor, rigid)
    class_groups = _grouped(classes, ccolor, frozenset())
    assignments = 1
    for group in label_groups + class_groups:
        assignments *= factorial(len(group))

    rigid_map = {label: f"!{label}" for label in rigid}

    def build_maps(
        label_order: Sequence[Sequence[str]],
        class_order: Sequence[Sequence[str]],
    ) -> tuple[dict[str, str], dict[str, str]]:
        lmap = dict(rigid_map)
        index = 0
        for group in label_order:
            for label in group:
                lmap[label] = f"l{index}"
                index += 1
        cmap = {}
        index = 0
        for group in class_order:
            for name in group:
                cmap[name] = f"C{index}"
                index += 1
        return lmap, cmap

    if assignments > search_cap:
        # Deterministic fallback: original-name order inside each
        # ambiguous group.  Same instance -> same key, but an
        # alpha-renamed copy may key differently.
        lmap, cmap = build_maps(label_groups, class_groups)
        text = _render_instance(
            premises, phi, schema, context_value, lmap, cmap
        )
        return CanonicalForm(
            key=hashlib.sha256(text.encode()).hexdigest(),
            text=text,
            label_map=lmap,
            class_map=cmap,
            fallback=True,
        )

    best: tuple[str, dict[str, str], dict[str, str]] | None = None
    label_perms = [list(permutations(g)) for g in label_groups]
    class_perms = [list(permutations(g)) for g in class_groups]
    for label_order in product(*label_perms):
        for class_order in product(*class_perms):
            lmap, cmap = build_maps(label_order, class_order)
            text = _render_instance(
                premises, phi, schema, context_value, lmap, cmap
            )
            if best is None or text < best[0]:
                best = (text, lmap, cmap)
    assert best is not None  # at least the empty assignment exists
    text, lmap, cmap = best
    return CanonicalForm(
        key=hashlib.sha256(text.encode()).hexdigest(),
        text=text,
        label_map=lmap,
        class_map=cmap,
        fallback=False,
    )


def canonicalize_problem(problem) -> CanonicalForm:
    """Canonicalize an :class:`ImplicationProblem`.

    The schema only enters the key in typed contexts — the
    semistructured route ignores it, so two problems differing only in
    an unused schema share a key.
    """
    from repro.reasoning.dispatcher import Context  # import cycle guard

    schema = (
        problem.schema
        if problem.context is not Context.SEMISTRUCTURED
        else None
    )
    return canonicalize_instance(
        problem.sigma,
        problem.phi,
        context_value=problem.context.value,
        schema=schema,
    )
