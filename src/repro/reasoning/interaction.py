"""The paper's headline, as an API: compare untyped vs typed implication.

``interaction_report(sigma, phi, schema)`` answers the same implication
question in every applicable context and classifies the interaction:

* ``TYPES_HELP`` — the typed context turns an unknown/undecidable or
  negative untyped answer into a definite positive one (the Theorem
  4.2 phenomenon: M adds commutativity);
* ``TYPES_HURT`` — the untyped problem is decidable but the typed cell
  is undecidable (the Theorem 5.2 phenomenon), or the typed side can
  only abstain where the untyped side decided;
* ``NEUTRAL`` — same definite answer on both sides.

This is a convenience layer for exploration and teaching; the
underlying answers come from :func:`repro.reasoning.solve` and carry
all their certificates.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.constraints.ast import PathConstraint
from repro.reasoning.dispatcher import (
    Context,
    ImplicationProblem,
    classify,
    solve,
    table1_cell,
)
from repro.reasoning.result import ImplicationResult
from repro.truth import Trilean
from repro.types.typesys import Schema


class InteractionKind(enum.Enum):
    TYPES_HELP = "types-help"
    TYPES_HURT = "types-hurt"
    NEUTRAL = "neutral"


@dataclass
class InteractionReport:
    """Side-by-side implication answers with a classification."""

    sigma: tuple[PathConstraint, ...]
    phi: PathConstraint
    untyped: ImplicationResult
    typed: ImplicationResult
    typed_context: Context
    kind: InteractionKind

    def describe(self) -> str:
        lines = [
            f"query: {self.phi}",
            f"untyped ({'decidable' if self.untyped.decidable else 'undecidable'}"
            f"{', ' + self.untyped.complexity if self.untyped.complexity else ''}): "
            f"{self.untyped.answer.value}",
            f"over {self.typed_context.value} "
            f"({'decidable' if self.typed.decidable else 'undecidable'}"
            f"{', ' + self.typed.complexity if self.typed.complexity else ''}): "
            f"{self.typed.answer.value}",
            f"interaction: {self.kind.value}",
        ]
        return "\n".join(lines)


def interaction_report(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    schema: Schema,
    chase_steps: int = 2_000,
    typed_search_limit: int = 2_000,
) -> InteractionReport:
    """Solve the instance untyped and over the schema's model, and
    classify the interaction.

    The typed context is M when the schema is an M schema, M+
    otherwise.
    """
    sigma = tuple(sigma)
    typed_context = Context.M if schema.is_m_schema() else Context.M_PLUS

    untyped = solve(
        ImplicationProblem(sigma, phi, Context.SEMISTRUCTURED),
        chase_steps=chase_steps,
    )
    typed = solve(
        ImplicationProblem(sigma, phi, typed_context, schema=schema),
        chase_steps=chase_steps,
        typed_search_limit=typed_search_limit,
    )

    problem_class = classify(sigma, phi)
    untyped_decidable, _ = table1_cell(problem_class, Context.SEMISTRUCTURED)
    typed_decidable, _ = table1_cell(problem_class, typed_context)

    # Decidability changes dominate (they are the paper's theorems);
    # answer flips within equally-decidable cells come next.
    if untyped_decidable and not typed_decidable:
        kind = InteractionKind.TYPES_HURT
    elif not untyped_decidable and typed_decidable:
        kind = InteractionKind.TYPES_HELP
    elif typed.answer is Trilean.TRUE and untyped.answer is not Trilean.TRUE:
        kind = InteractionKind.TYPES_HELP
    elif untyped.answer.is_definite and not typed.answer.is_definite:
        kind = InteractionKind.TYPES_HURT
    else:
        kind = InteractionKind.NEUTRAL
    return InteractionReport(
        sigma=sigma,
        phi=phi,
        untyped=untyped,
        typed=typed,
        typed_context=typed_context,
        kind=kind,
    )
