"""Supervised execution runtime: crash-isolated, retryable engine runs.

The portfolio (:mod:`repro.reasoning.portfolio`) races engines across
a ``ProcessPoolExecutor``.  Before this module existed, a single
worker segfault, OOM-kill or pickling failure surfaced as an unhandled
``BrokenProcessPool`` that destroyed the whole ``solve()`` call.  The
paper's own decidable/semi-decidable split says exactly what degraded
operation must preserve: TRUE/FALSE certificates stay sound (they are
independently verifiable objects — an I_r proof or a counter-model),
and UNKNOWN is the only permissible casualty of infrastructure
failure.

:class:`WorkerSupervisor` enforces that contract around every pool
interaction:

* **crash isolation** — a broken pool is caught, the dead generation
  abandoned, and a fresh pool respawned (at most ``max_respawns``
  times, with capped exponential backoff clipped to the remaining
  budget);
* **restartable tasks** — every submission keeps its full call spec,
  so a respawn resubmits exactly the lost work: counter-model shards
  restart from their ``(start, stop)`` code range instead of
  recomputing the level;
* **graceful degradation** — when respawns are exhausted (or a
  payload provably cannot cross the process boundary) the task runs
  in-process under the surviving absolute deadline.  Tasks observed
  in-flight across repeated pool crashes are *quarantined* instead —
  degrading a genuinely crashing task in-process would take the whole
  solver down with it;
* **typed failures** — nothing below this layer ever leaks
  ``BrokenProcessPool``: a task that fails every attempt settles with
  :class:`~repro.errors.RetryExhausted` (or
  :class:`~repro.errors.WorkerCrashError` for quarantined crashers),
  and callers turn that into an honest UNKNOWN contribution;
* **accounting** — every retry, respawn, degradation and injected
  fault becomes a :class:`~repro.reasoning.result.FaultEvent`,
  surfaced on the :class:`~repro.reasoning.result.ImplicationResult`
  as its ``faults`` record.

The deterministic fault-injection hooks live in
:mod:`repro.reasoning.faultinject`; the supervisor consults the plan
at submission time (task ordinals are assigned by a deterministic
counter), so injected faults are reproducible run-to-run.
"""

from __future__ import annotations

import atexit
import time
from collections.abc import Iterable
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import RetryExhausted, WorkerCrashError
from repro.reasoning.faultinject import (
    NO_FAULT,
    CorruptPayload,
    FaultAction,
    FaultPlan,
    invoke,
)
from repro.reasoning.result import FaultEvent, FaultReport


@dataclass(frozen=True)
class Budget:
    """A wall-clock budget shared by every engine of a portfolio run.

    ``deadline`` is absolute on the ``time.monotonic()`` clock;
    ``None`` means unlimited.  Monotonic time is immune to NTP steps
    and wall-clock jumps, so a deadline can neither silently expire
    nor silently extend; on Linux ``CLOCK_MONOTONIC`` is system-wide,
    so the absolute value remains meaningful in every worker process
    of the pool (the cross-process threading the portfolio relies on).
    The object is immutable and picklable.
    """

    deadline: float | None = None

    @classmethod
    def from_seconds(cls, seconds: float | None) -> "Budget":
        """A budget expiring ``seconds`` from now (``None`` = none)."""
        if seconds is None:
            return cls(deadline=None)
        return cls(deadline=time.monotonic() + seconds)

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() > self.deadline

    def remaining(self) -> float | None:
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())


# ---------------------------------------------------------------------------
# The warm persistent pool.
# ---------------------------------------------------------------------------
#
# Cold ProcessPoolExecutor spawn costs ~0.05s — more than many whole
# scans.  One process-wide pool therefore survives across solve()
# calls: a supervisor *leases* it for the duration of its run and
# returns it on a clean exit instead of terminating the workers.  A
# pool that broke (worker crash), a supervisor that degraded, or an
# exceptional exit never returns the pool — broken or straggler-laden
# pools are abandoned and reaped exactly as before, so the PR 5
# fault-tolerance guarantees are unchanged.  Warm workers also keep
# their per-process caches (permutation tables, arena attachments)
# across solves.


@dataclass
class _WarmPoolState:
    pool: ProcessPoolExecutor
    jobs: int
    leased: bool = False
    max_worker_mb: int | None = None


_WARM: _WarmPoolState | None = None
_WARM_SPAWNS = 0
_WARM_REUSES = 0


def _limit_worker_memory(max_worker_mb: int) -> None:
    """Pool initializer: cap this worker's address space (RLIMIT_AS).

    Runs inside the freshly started worker process.  A scan that
    balloons past the ceiling observes an ordinary ``MemoryError``
    (or, if the allocator dies harder, an abrupt worker death) — both
    ride the existing respawn/degrade/quarantine path instead of
    OOM-killing the whole box.  Never raises: a platform without
    ``resource`` (or a hard limit below the request) silently keeps
    the tightest limit available.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return
    limit = int(max_worker_mb) << 20
    try:
        _soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY and hard < limit:
            limit = hard
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (ValueError, OSError):  # pragma: no cover - defensive
        pass


def _spawn_pool(jobs: int, max_worker_mb: int | None) -> ProcessPoolExecutor:
    """A fresh pool, with the per-worker memory ceiling installed."""
    if max_worker_mb is None:
        return ProcessPoolExecutor(max_workers=jobs)
    return ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_limit_worker_memory,
        initargs=(max_worker_mb,),
    )


def _warm_acquire(
    jobs: int, max_worker_mb: int | None = None
) -> tuple[ProcessPoolExecutor, bool]:
    """Lease the warm pool (or spawn a tracked replacement).

    Returns ``(pool, tracked)``; a ``tracked`` pool should be returned
    via :func:`_warm_return` on clean shutdown.  An untracked pool
    (the warm pool was already leased by another supervisor) is the
    caller's to tear down.  A warm pool only satisfies a lease whose
    memory ceiling matches — rlimits are installed at worker start and
    cannot be retrofitted onto live processes.
    """
    global _WARM, _WARM_SPAWNS, _WARM_REUSES
    state = _WARM
    if state is not None and not state.leased:
        broken = getattr(state.pool, "_broken", False)
        if (
            not broken
            and state.jobs >= jobs
            and state.max_worker_mb == max_worker_mb
        ):
            state.leased = True
            _WARM_REUSES += 1
            return state.pool, True
        # Too small, broken, or wrong ceiling: retire and spawn fresh.
        _WARM = None
        _abandon_pool(state.pool)
        state = None
    pool = _spawn_pool(jobs, max_worker_mb)
    if state is None and (_WARM is None or not _WARM.leased):
        _WARM = _WarmPoolState(
            pool=pool, jobs=jobs, leased=True, max_worker_mb=max_worker_mb
        )
        _WARM_SPAWNS += 1
        return pool, True
    return pool, False  # pragma: no cover - concurrent lease


def _warm_return(pool: ProcessPoolExecutor, healthy: bool) -> None:
    """End a lease: keep a healthy pool warm, abandon anything else."""
    global _WARM
    state = _WARM
    if state is not None and state.pool is pool:
        if healthy and not getattr(pool, "_broken", False):
            state.leased = False
            return
        _WARM = None
    _abandon_pool(pool)


def _warm_discard(pool: ProcessPoolExecutor) -> None:
    """Forget a pool that broke while leased (caller abandons it)."""
    global _WARM
    if _WARM is not None and _WARM.pool is pool:
        _WARM = None


def retire_warm_pool() -> None:
    """Shut the warm pool down and reap its workers (never raises).

    Tests assert the no-orphan property through this; it is also the
    interpreter-exit hook.  Safe to call at any time — the next pooled
    solve simply cold-spawns again.
    """
    global _WARM
    state, _WARM = _WARM, None
    if state is not None:
        _abandon_pool(state.pool)


atexit.register(retire_warm_pool)


def warm_pool_pids() -> tuple[int, ...]:
    """PIDs of the current warm pool's workers (empty when cold)."""
    state = _WARM
    if state is None:
        return ()
    return tuple(sorted(getattr(state.pool, "_processes", None) or {}))


def warm_pool_stats() -> dict:
    """Warm-pool observability: liveness, lease state, reuse counters."""
    state = _WARM
    return {
        "alive": state is not None,
        "leased": bool(state is not None and state.leased),
        "jobs": state.jobs if state is not None else 0,
        "pids": list(warm_pool_pids()),
        "spawns": _WARM_SPAWNS,
        "reuses": _WARM_REUSES,
    }


@dataclass(eq=False)
class SupervisedTask:
    """One engine invocation tracked across retries and pool deaths.

    The ``fn``/``args`` spec is the restart unit: whatever generation
    of the pool runs it (or the supervisor itself, in degraded mode),
    the call is identical, so counter-model shards always re-scan
    exactly their assigned ``(start, stop)`` range.
    """

    fn: Callable
    args: tuple
    engine: str
    ordinal: int
    action: FaultAction = NO_FAULT
    future: Future | None = None
    attempts: int = 0
    pool_gen: int = -1
    #: pool generations this task was in flight for when the pool
    #: broke — the quarantine heuristic's evidence.
    crash_exposures: int = 0
    settled: bool = False
    cancelled: bool = False
    inprocess_tried: bool = False
    value: Any = None
    error: BaseException | None = None

    @property
    def failed(self) -> bool:
        return self.settled and self.error is not None

    def result(self) -> Any:
        if not self.settled:
            raise RuntimeError(f"task {self.engine} is not settled")
        if self.cancelled:
            raise RuntimeError(f"task {self.engine} was cancelled")
        if self.error is not None:
            raise self.error
        return self.value

    def _settle(self, value: Any) -> None:
        self.settled, self.value = True, value

    def _settle_failed(self, error: BaseException) -> None:
        self.settled, self.error = True, error

    def _mark_cancelled(self) -> None:
        self.settled, self.cancelled = True, True


class WorkerSupervisor:
    """Fault-tolerant façade over one portfolio run's process pool.

    With ``jobs <= 1`` no pool is ever created: submissions run
    inline, synchronously, in submission order (the seed's sequential
    pipeline), still with injection, retry and fault accounting.

    Use as a context manager; ``__exit__`` tears the pool down on
    every path, including exceptions and ``KeyboardInterrupt``, and
    reaps lingering worker processes so nothing is orphaned.
    """

    def __init__(
        self,
        jobs: int = 1,
        budget: Budget | None = None,
        plan: FaultPlan | None = None,
        max_respawns: int = 2,
        max_task_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        keep_warm: bool = True,
        max_worker_mb: int | None = None,
    ) -> None:
        self.jobs = max(1, jobs)
        self.inline = jobs <= 1
        self.budget = budget or Budget()
        self.plan = plan or FaultPlan()
        self.max_respawns = max_respawns
        self.max_task_retries = max_task_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: lease the process-wide warm pool (and return it on a clean
        #: exit) instead of cold-spawning and terminating per run.
        self.keep_warm = keep_warm
        #: per-worker RLIMIT_AS ceiling in MiB (None = uncapped).
        self.max_worker_mb = max_worker_mb
        self._pool: ProcessPoolExecutor | None = None
        self._pool_tracked = False
        self._pool_gen = 0
        self._respawns = 0
        self._degraded = False
        self._ordinal = 0
        self._tasks: list[SupervisedTask] = []
        self.events: list[FaultEvent] = []
        self.retries = 0
        self.degradations = 0

    # -- lifecycle ----------------------------------------------------

    def __enter__(self) -> "WorkerSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        # An exceptional exit (KeyboardInterrupt mid-race) may leave
        # genuinely stuck tasks on the pool; never hand those to the
        # next solve — abandon and reap, exactly the old behavior.
        self.shutdown(abandon=exc_info and exc_info[0] is not None)

    def shutdown(self, abandon: bool = False) -> None:
        """End this run's pool lease; never raises.

        A healthy tracked warm-pool lease is returned with workers
        alive (cancelled stragglers observe the cooperative cancel
        flag and idle quickly); anything else — untracked, degraded,
        or ``abandon=True`` — is torn down and reaped.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if self._pool_tracked and not abandon and not self._degraded:
            _warm_return(pool, healthy=True)
        elif self._pool_tracked:
            _warm_return(pool, healthy=False)
        else:
            _abandon_pool(pool)

    def worker_pids(self) -> tuple[int, ...]:
        """PIDs of this run's current pool workers (empty inline)."""
        if self._pool is None:
            return ()
        return tuple(sorted(getattr(self._pool, "_processes", None) or {}))

    # -- accounting ---------------------------------------------------

    def _record(
        self, kind: str, engine: str, attempt: int = 0, detail: str = ""
    ) -> None:
        self.events.append(FaultEvent(kind, engine, attempt, detail[:200]))

    def fault_report(self, answered_by: str = "") -> FaultReport:
        """The run's fault record, for ``ImplicationResult.faults``."""
        return FaultReport(
            events=tuple(self.events),
            retries=self.retries,
            degradations=self.degradations,
            answered_by=answered_by,
        )

    # -- submission ---------------------------------------------------

    def submit(
        self, fn: Callable, *args, engine: str = "task"
    ) -> SupervisedTask:
        """Submit ``fn(*args)`` as a supervised, restartable task."""
        ordinal = self._ordinal
        self._ordinal += 1
        action = self.plan.action_for(ordinal)
        task = SupervisedTask(
            fn=fn, args=args, engine=engine, ordinal=ordinal, action=action
        )
        if action.fires:
            self._record("injected", engine, detail=action.describe())
        self._tasks.append(task)
        if self.inline or self._degraded:
            self._run_in_process(task)
        else:
            self._submit_to_pool(task)
        return task

    def cancel(self, task: SupervisedTask) -> None:
        """Cancel a task the caller no longer needs (never retried)."""
        if task.settled:
            return
        if task.future is not None:
            task.future.cancel()
        task._mark_cancelled()

    # -- waiting ------------------------------------------------------

    def wait_any(
        self,
        tasks: Iterable[SupervisedTask],
        timeout: float | None = None,
    ) -> set[SupervisedTask]:
        """Block until at least one task settles; return all settled.

        Fault handling happens *inside* this call: broken pools are
        respawned, failed attempts retried or degraded, so by the time
        a task is returned it is genuinely settled — with a value, a
        typed error, or a cancellation — never a bare pool exception.
        """
        tasks = list(tasks)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            done = {t for t in tasks if t.settled}
            if done:
                return done
            future_map = {
                t.future: t for t in tasks if t.future is not None
            }
            if not future_map:
                return set()
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            finished, _ = wait(
                set(future_map),
                timeout=remaining,
                return_when=FIRST_COMPLETED,
            )
            if not finished:
                return set()
            for future in finished:
                task = future_map[future]
                if task.settled or future is not task.future:
                    continue  # superseded by a newer attempt
                self._absorb(task, future)

    # -- fault handling (private) -------------------------------------

    def _pool_or_spawn(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self.keep_warm:
                self._pool, self._pool_tracked = _warm_acquire(
                    self.jobs, self.max_worker_mb
                )
            else:
                self._pool = _spawn_pool(self.jobs, self.max_worker_mb)
                self._pool_tracked = False
        return self._pool

    def _submit_to_pool(self, task: SupervisedTask) -> None:
        action = task.action if task.attempts == 0 else NO_FAULT
        poison = CorruptPayload() if action.kind == "corrupt" else None
        task.attempts += 1
        task.pool_gen = self._pool_gen
        try:
            task.future = self._pool_or_spawn().submit(
                invoke,
                action.kind,
                action.param,
                False,
                task.fn,
                task.args,
                poison,
            )
        except BrokenExecutor as exc:
            task.future = None
            self._handle_pool_break(task.engine, exc)

    def _absorb(self, task: SupervisedTask, future: Future) -> None:
        if future.cancelled():  # pragma: no cover - defensive
            task._mark_cancelled()
            return
        error = future.exception()
        if error is None:
            task._settle(future.result())
        elif isinstance(error, BrokenExecutor):
            self._handle_pool_break(task.engine, error)
        elif isinstance(error, MemoryError):
            # The worker hit its RLIMIT_AS ceiling.  Its heap is
            # untrustworthy even though the process survived, so ride
            # the same respawn/degrade/quarantine path as an abrupt
            # worker death rather than retrying on the bloated pool.
            self._record(
                "worker-oom",
                task.engine,
                task.attempts,
                str(error) or "MemoryError",
            )
            self._handle_pool_break(
                task.engine,
                WorkerCrashError(f"worker memory ceiling hit: {error}"),
            )
        else:
            self._task_failure(task, error)

    def _handle_pool_break(
        self, engine: str, exc: BaseException
    ) -> None:
        """A worker died and took the pool generation with it."""
        self._record(
            "worker-crash",
            engine,
            detail=f"{type(exc).__name__}: {exc}",
        )
        pool, self._pool = self._pool, None
        if pool is not None:
            # A broken pool is never kept warm: forget it, then reap.
            _warm_discard(pool)
            _abandon_pool(pool)
        self._pool_gen += 1
        lost = [t for t in self._tasks if not t.settled]
        for task in lost:
            if task.future is not None:
                task.crash_exposures += 1
                task.future = None
        if self._respawns >= self.max_respawns or self.budget.expired:
            self._degrade(lost)
            return
        self._respawns += 1
        self._backoff(self._respawns)
        self._record(
            "pool-respawn",
            engine,
            attempt=self._respawns,
            detail=f"respawn {self._respawns}/{self.max_respawns}",
        )
        for task in lost:
            if task.settled or task.future is not None:
                continue  # handled by a nested break/degrade
            self.retries += 1
            self._record("task-retry", task.engine, task.attempts)
            self._submit_to_pool(task)

    def _degrade(self, tasks: list[SupervisedTask]) -> None:
        """Abandon the pool; finish the remaining work in-process."""
        if not self._degraded:
            self._degraded = True
            self._record(
                "pool-degraded",
                "pool",
                attempt=self._respawns,
                detail=f"respawns exhausted ({self.max_respawns})"
                if not self.budget.expired
                else "budget expired during recovery",
            )
        for task in tasks:
            if task.settled:
                continue
            if task.crash_exposures >= 2:
                # In flight across repeated pool crashes: running it in
                # this process could kill the solver itself.
                self._record(
                    "retry-exhausted",
                    task.engine,
                    task.attempts,
                    "quarantined as a suspected crashing task",
                )
                task._settle_failed(
                    WorkerCrashError(
                        f"task {task.engine!r} was in flight for "
                        f"{task.crash_exposures} pool crashes; quarantined"
                    )
                )
                continue
            self._run_in_process(task)

    def _run_in_process(self, task: SupervisedTask) -> None:
        action = task.action if task.attempts == 0 else NO_FAULT
        task.attempts += 1
        task.inprocess_tried = True
        if not self.inline and self._degraded:
            self.degradations += 1
            self._record("task-degraded", task.engine, task.attempts)
        try:
            value = invoke(
                action.kind, action.param, True, task.fn, task.args
            )
        except Exception as exc:  # noqa: BLE001 - typed at the boundary
            self._task_failure(task, exc)
        else:
            task._settle(value)

    def _task_failure(
        self, task: SupervisedTask, exc: BaseException
    ) -> None:
        """One attempt raised (in a worker, the pickler, or inline)."""
        self._record(
            "task-error",
            task.engine,
            task.attempts,
            f"{type(exc).__name__}: {exc}",
        )
        if task.attempts <= self.max_task_retries:
            self.retries += 1
            self._record("task-retry", task.engine, task.attempts)
            if self.inline or self._degraded:
                self._run_in_process(task)
            else:
                self._submit_to_pool(task)
            return
        if not task.inprocess_tried:
            # Final fallback: maybe only the process boundary is broken
            # (an unpicklable payload reproduces forever in the pool
            # and never in-process).
            self.degradations += 1
            self._record("task-degraded", task.engine, task.attempts)
            # One in-process shot, no further retries.
            task.attempts = self.max_task_retries + 1
            try:
                task._settle(
                    invoke("none", 0.0, True, task.fn, task.args)
                )
            except Exception as final:  # noqa: BLE001
                self._record(
                    "retry-exhausted",
                    task.engine,
                    task.attempts,
                    f"{type(final).__name__}: {final}",
                )
                wrapped = RetryExhausted(
                    f"task {task.engine!r} failed every attempt "
                    f"({task.attempts}): {final}"
                )
                wrapped.__cause__ = final
                task._settle_failed(wrapped)
            return
        self._record(
            "retry-exhausted",
            task.engine,
            task.attempts,
            f"{type(exc).__name__}: {exc}",
        )
        wrapped = RetryExhausted(
            f"task {task.engine!r} failed every attempt "
            f"({task.attempts}): {exc}"
        )
        wrapped.__cause__ = exc
        task._settle_failed(wrapped)

    def _backoff(self, attempt: int) -> None:
        delay = min(
            self.backoff_cap, self.backoff_base * (2 ** (attempt - 1))
        )
        remaining = self.budget.remaining()
        if remaining is not None:
            delay = min(delay, remaining)
        if delay > 0:
            time.sleep(delay)


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down without waiting, then reap straggler workers.

    ``shutdown(wait=False, cancel_futures=True)`` drops pending work
    but lets an already-running loser finish its current task; a
    crashed pool may also hold zombie workers.  Terminating what is
    left guarantees the no-orphan property the tests assert.
    """
    # Snapshot first: Executor.shutdown() clears the _processes dict
    # even with wait=False, which would leave us nothing to reap.
    processes = dict(getattr(pool, "_processes", None) or {})
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass
    for proc in list(processes.values()):
        try:
            if proc.is_alive():
                proc.terminate()
        except Exception:  # pragma: no cover - defensive
            pass
    for proc in list(processes.values()):
        try:
            proc.join(timeout=1.0)
        except Exception:  # pragma: no cover - defensive
            pass
