"""Routing implication problems to the right procedure — Table 1 as code.

:func:`classify` finds the most specific fragment an instance lives in
(P_w subset of P_w(K) subset of P_c; local-extent instances are
recognized by Definitions 2.3/2.4).  :func:`table1_cell` reports the
paper's decidability/complexity verdict for a (fragment, context)
pair, and :func:`solve` runs the matching procedure:

* decidable cells run the complete decision procedure;
* undecidable cells raise :class:`UndecidableProblemError` unless the
  caller opts into semi-decision, in which case a sound chase /
  counter-model pipeline runs with explicit budgets.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.constraints.ast import PathConstraint
from repro.constraints.classes import (
    infer_bounds,
    is_in_pw_k,
    is_prefix_bounded_set,
)
from repro.errors import GraphError, UndecidableProblemError
from repro.graph.serialize import from_dict as graph_from_dict
from repro.graph.serialize import to_dict as graph_to_dict
from repro.reasoning.cache import CacheInfo, ImplicationCache, make_entry
from repro.reasoning.canonical import (
    CanonicalForm,
    canonicalize_problem,
    rename_graph,
)
from repro.reasoning.chase import DEFAULT_CHASE_STEPS
from repro.reasoning.local_extent import implies_local_extent
from repro.reasoning.costmodel import validate_jobs, validate_max_respawns
from repro.reasoning.faultinject import FaultPlan
from repro.reasoning.portfolio import Budget, run_portfolio
from repro.reasoning.result import ImplicationResult
from repro.reasoning.shm import CancelFlag
from repro.reasoning.typed_m import implies_typed_m
from repro.reasoning.word import implies_word
from repro.truth import Trilean
from repro.types.typesys import Schema


class Context(enum.Enum):
    """The data model the implication is interpreted over."""

    SEMISTRUCTURED = "semistructured"
    M = "M"
    M_PLUS = "M+"
    M_PLUS_FINITE = "M+f"


class ProblemClass(enum.Enum):
    """The constraint fragment an instance belongs to."""

    WORD = "P_w"
    PW_K = "P_w(K)"
    LOCAL_EXTENT = "local extent"
    GENERAL = "P_c"


#: (problem class, context) -> (decidable, complexity or None).
#: The P_w row is the [AV97] substrate; the other three rows are the
#: paper's Table 1.
TABLE1: dict[tuple[ProblemClass, Context], tuple[bool, str | None]] = {
    (ProblemClass.WORD, Context.SEMISTRUCTURED): (True, "PTIME"),
    (ProblemClass.PW_K, Context.SEMISTRUCTURED): (False, None),
    (ProblemClass.LOCAL_EXTENT, Context.SEMISTRUCTURED): (True, "PTIME"),
    (ProblemClass.GENERAL, Context.SEMISTRUCTURED): (False, None),
    **{
        (klass, Context.M): (True, "cubic")
        for klass in ProblemClass
    },
    # Over M+ and M+f the paper proves P_w(rho), local extent and P_c
    # undecidable (Theorems 5.2, 6.1, 6.2).  It leaves pure P_w over
    # M+ unresolved; we conservatively route it to semi-decision too.
    **{
        (klass, ctx): (False, None)
        for klass in ProblemClass
        for ctx in (Context.M_PLUS, Context.M_PLUS_FINITE)
    },
}


def table1_cell(
    problem_class: ProblemClass, context: Context
) -> tuple[bool, str | None]:
    """The paper's verdict for a Table 1 cell: (decidable, complexity)."""
    return TABLE1[(problem_class, context)]


@dataclass
class ImplicationProblem:
    """A fully specified implication instance.

    ``schema`` is required for the typed contexts and ignored for the
    semistructured one.
    """

    sigma: Sequence[PathConstraint]
    phi: PathConstraint
    context: Context = Context.SEMISTRUCTURED
    schema: Schema | None = None

    def __post_init__(self) -> None:
        self.sigma = tuple(self.sigma)
        if isinstance(self.context, str):
            self.context = Context(self.context)
        if self.context is not Context.SEMISTRUCTURED and self.schema is None:
            raise ValueError(f"context {self.context.value} needs a schema")


def classify(
    sigma: Sequence[PathConstraint], phi: PathConstraint
) -> ProblemClass:
    """The most specific fragment containing Sigma and phi."""
    everything = list(sigma) + [phi]
    if all(psi.is_word_constraint() for psi in everything):
        return ProblemClass.WORD

    # P_w(K): all constraints word or guarded by one shared label K.
    guards = {
        psi.prefix.first()
        for psi in everything
        if not psi.prefix.is_empty()
    }
    if len(guards) == 1:
        guard = next(iter(guards))
        if all(is_in_pw_k(psi, guard) for psi in everything):
            return ProblemClass.PW_K

    # Local extent: the query is bounded and the whole set is
    # prefix-bounded by the query's (rho, K).
    try:
        rho, guard = infer_bounds(phi)
    except ValueError:
        return ProblemClass.GENERAL
    if is_prefix_bounded_set(everything, rho, guard):
        return ProblemClass.LOCAL_EXTENT
    return ProblemClass.GENERAL


def _reconcile_with_table1(
    result: ImplicationResult,
    problem_class: ProblemClass,
    context: Context,
) -> ImplicationResult:
    """Normalize a procedure's result against the Table 1 verdict.

    The result object of every route must agree with
    :func:`table1_cell` on decidability and complexity — a decider
    claiming a different complexity class than the paper's cell (or a
    semi-decider claiming decidability) is a routing bug, not a
    stylistic difference.  Conflicts raise; a missing complexity on a
    decidable cell is filled in from the table.
    """
    decidable, complexity = table1_cell(problem_class, context)
    if result.decidable != decidable:
        raise AssertionError(
            f"procedure returned decidable={result.decidable} for the "
            f"({problem_class.value}, {context.value}) cell, but Table 1 "
            f"says decidable={decidable}"
        )
    if decidable:
        if result.complexity is not None and result.complexity != complexity:
            raise AssertionError(
                f"procedure claims complexity {result.complexity!r} for the "
                f"({problem_class.value}, {context.value}) cell, but Table 1 "
                f"says {complexity!r}"
            )
        result.complexity = complexity
    return result


def _replay_cached(
    entry: dict, form: CanonicalForm, info: CacheInfo
) -> ImplicationResult:
    """Rebuild an :class:`ImplicationResult` from a cache entry.

    The stored counter-model (if any) lives in the canonical alphabet;
    it is renamed back through the *current* instance's inverse maps,
    so an alpha-renamed repeat query gets a certificate over its own
    labels — re-verifiable by the Definition 2.1 checker like any
    fresh refutation.
    """
    countermodel = None
    if entry["countermodel"] is not None:
        countermodel = rename_graph(
            graph_from_dict(entry["countermodel"]),
            form.inverse_label_map(),
            form.inverse_class_map(),
        )
    notes = tuple(entry["notes"])
    notes += (f"cache: replayed verdict from {info.tier} tier",)
    if entry["certificate"] == "proof":
        notes += ("cache: original run carried a proof (not stored); "
                  "re-solve with with_proof=True to rebuild it",)
    return ImplicationResult(
        answer=Trilean(entry["answer"]),
        method=entry["method"],
        decidable=entry["decidable"],
        complexity=entry["complexity"],
        countermodel=countermodel,
        notes=notes,
        cache=info,
    )


def _store_fresh(
    cache: ImplicationCache,
    form: CanonicalForm,
    result: ImplicationResult,
) -> CacheInfo:
    """Cache a freshly solved result if it is cacheable.

    Only definite answers from clean (fault-free) runs are stored —
    UNKNOWN is a budget artifact, not a fact about the instance, and a
    degraded run's answer should not outlive the run that produced it.
    Counter-models are stored in the canonical alphabet so any
    alpha-equivalent instance can replay them.
    """
    if not result.answer.is_definite:
        return CacheInfo(
            "miss", key=form.key, detail="UNKNOWN answers are never cached"
        )
    if not result.faults.clean:
        return CacheInfo(
            "miss", key=form.key, detail="fault-degraded run not cached"
        )
    certificate = "none"
    countermodel = None
    if result.proof is not None:
        certificate = "proof"
    if result.countermodel is not None:
        certificate = "countermodel"
        try:
            countermodel = graph_to_dict(
                rename_graph(
                    result.countermodel, form.label_map, form.class_map
                )
            )
        except GraphError:
            # Typed counter-models can carry non-serializable node
            # ids; keep the verdict, drop the replayable certificate.
            countermodel = None
    tier = cache.store(
        form.key,
        make_entry(
            answer=result.answer.value,
            method=result.method,
            decidable=result.decidable,
            complexity=result.complexity,
            certificate=certificate,
            countermodel=countermodel,
            notes=result.notes,
        ),
    )
    detail = "fallback-key" if form.fallback else ""
    return CacheInfo("store", key=form.key, tier=tier, detail=detail)


def solve(
    problem: ImplicationProblem,
    allow_semidecision: bool = True,
    chase_steps: int = DEFAULT_CHASE_STEPS,
    countermodel_nodes: int = 3,
    typed_search_limit: int = 2_000,
    with_proof: bool = False,
    jobs: int | str = 1,
    deadline: float | None = None,
    max_respawns: int = 2,
    inject: "FaultPlan | None" = None,
    execution: str = "auto",
    cache: "ImplicationCache | None" = None,
    cancel: "CancelFlag | None" = None,
    max_worker_mb: int | None = None,
    memory_guard_mb: int | None = None,
) -> ImplicationResult:
    """Decide or semi-decide an implication problem.

    For decidable (fragment, context) cells the answer is definite.
    For undecidable cells, with ``allow_semidecision`` a portfolio of
    semi-deciders runs: the chase (sound both ways, untyped) and
    isomorphism-pruned counter-model search; in typed contexts an
    untyped chase TRUE transfers (``U(Delta)`` is a subclass of all
    structures) while refutation uses typed counter-models only.
    ``jobs`` caps the portfolio's parallelism — a positive int, or
    ``"auto"`` for the CPU count; a cost model then picks inline,
    in-process sharded, or pooled execution per solve from the
    closed-form scan size, so extra jobs never cost more than they
    buy (see :mod:`repro.reasoning.portfolio`; ``execution`` forces a
    mode).  ``deadline`` is a wall-clock budget in seconds shared by
    every engine.  Pool execution is supervised: worker crashes
    respawn the pool at most ``max_respawns`` times before degrading
    to in-process runs, and ``inject`` (default: the ``$REPRO_INJECT``
    spec, usually empty) enables deterministic fault injection; every
    result carries a ``faults`` record.  Without
    ``allow_semidecision`` an :class:`UndecidableProblemError` is
    raised.  Nonsensical ``jobs`` or ``max_respawns`` (zero, negative,
    non-int) raise :class:`ValueError` before any work starts.

    ``cache`` plugs in a cross-request
    :class:`~repro.reasoning.cache.ImplicationCache`: a hit replays
    the stored verdict (certificate renamed into this instance's
    alphabet) instead of solving, and fresh definite answers from
    clean runs are stored under the instance's alpha-invariant
    canonical key.  The key deliberately excludes every budget
    parameter — a definite answer is a fact about the instance, not
    about the budget that found it.  Lookups are bypassed under fault
    injection (the point of an injected run is to exercise the
    runtime) and when ``with_proof`` asks for a certificate the entry
    cannot replay; UNKNOWN and fault-degraded results are never
    stored.  ``result.cache`` records what happened.

    ``cancel`` (a caller-owned
    :class:`~repro.reasoning.shm.CancelFlag`) lets an embedding
    service cooperatively abort a portfolio solve from outside — the
    daemon's hung-solve watchdog trips it past deadline + grace.
    ``max_worker_mb`` caps each pool worker's address space
    (``RLIMIT_AS``); ``memory_guard_mb`` degrades pooled execution to
    the in-process sharded scan when this process's RSS is already
    past the guard.  All three apply only to the undecidable-cell
    portfolio path — decidable cells never fork workers.
    """
    validate_jobs(jobs)
    validate_max_respawns(max_respawns)
    problem_class = classify(problem.sigma, problem.phi)
    decidable, _complexity = table1_cell(problem_class, problem.context)
    budget = Budget.from_seconds(deadline)

    # Strict mode must raise whether or not the answer is cached: a
    # cached semi-decision verdict does not make the cell decidable.
    if not decidable and not allow_semidecision:
        raise UndecidableProblemError(
            f"the (finite) implication problem for {problem_class.value} in "
            f"the {problem.context.value} context is undecidable "
            "(Table 1); pass allow_semidecision=True for a sound "
            "three-valued attempt"
        )

    form: CanonicalForm | None = None
    bypass: CacheInfo | None = None
    if cache is not None:
        if inject is not None:
            cache.note_bypass()
            bypass = CacheInfo("bypass", detail="fault injection active")
        else:
            form = canonicalize_problem(problem)
            if not with_proof:
                # Proof requests skip the lookup (entries store the
                # certificate kind, not the proof object) but still
                # store their definite answer below.
                found = cache.lookup(form.key)
                if found is not None:
                    entry, tier = found
                    result = _replay_cached(
                        entry,
                        form,
                        CacheInfo("hit", key=form.key, tier=tier),
                    )
                    return _reconcile_with_table1(
                        result, problem_class, problem.context
                    )

    if problem.context is Context.M:
        assert problem.schema is not None
        result = implies_typed_m(
            problem.schema, problem.sigma, problem.phi, with_proof=with_proof
        )
    elif problem.context is Context.SEMISTRUCTURED and decidable:
        if problem_class is ProblemClass.WORD:
            result = implies_word(
                problem.sigma,
                problem.phi,
                with_proof=with_proof,
                chase_steps=chase_steps,
                deadline=budget.deadline,
            )
        else:
            result = implies_local_extent(
                list(problem.sigma), problem.phi, with_proof=with_proof
            )
    else:
        # Undecidable cell: run the portfolio of semi-deciders.
        result = run_portfolio(
            problem,
            jobs=jobs,
            budget=budget,
            chase_steps=chase_steps,
            countermodel_nodes=countermodel_nodes,
            typed_search_limit=typed_search_limit,
            max_respawns=max_respawns,
            fault_plan=inject,
            execution=execution,
            cancel=cancel,
            max_worker_mb=max_worker_mb,
            memory_guard_mb=memory_guard_mb,
        )

    if bypass is not None:
        result.cache = bypass
    elif form is not None and cache is not None:
        result.cache = _store_fresh(cache, form, result)
    return _reconcile_with_table1(result, problem_class, problem.context)
