"""Routing implication problems to the right procedure — Table 1 as code.

:func:`classify` finds the most specific fragment an instance lives in
(P_w subset of P_w(K) subset of P_c; local-extent instances are
recognized by Definitions 2.3/2.4).  :func:`table1_cell` reports the
paper's decidability/complexity verdict for a (fragment, context)
pair, and :func:`solve` runs the matching procedure:

* decidable cells run the complete decision procedure;
* undecidable cells raise :class:`UndecidableProblemError` unless the
  caller opts into semi-decision, in which case a sound chase /
  counter-model pipeline runs with explicit budgets.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.constraints.ast import PathConstraint
from repro.constraints.classes import (
    infer_bounds,
    is_in_pw_k,
    is_prefix_bounded_set,
)
from repro.errors import UndecidableProblemError
from repro.reasoning.chase import DEFAULT_CHASE_STEPS
from repro.reasoning.local_extent import implies_local_extent
from repro.reasoning.costmodel import validate_jobs, validate_max_respawns
from repro.reasoning.faultinject import FaultPlan
from repro.reasoning.portfolio import Budget, run_portfolio
from repro.reasoning.result import ImplicationResult
from repro.reasoning.typed_m import implies_typed_m
from repro.reasoning.word import implies_word
from repro.types.typesys import Schema


class Context(enum.Enum):
    """The data model the implication is interpreted over."""

    SEMISTRUCTURED = "semistructured"
    M = "M"
    M_PLUS = "M+"
    M_PLUS_FINITE = "M+f"


class ProblemClass(enum.Enum):
    """The constraint fragment an instance belongs to."""

    WORD = "P_w"
    PW_K = "P_w(K)"
    LOCAL_EXTENT = "local extent"
    GENERAL = "P_c"


#: (problem class, context) -> (decidable, complexity or None).
#: The P_w row is the [AV97] substrate; the other three rows are the
#: paper's Table 1.
TABLE1: dict[tuple[ProblemClass, Context], tuple[bool, str | None]] = {
    (ProblemClass.WORD, Context.SEMISTRUCTURED): (True, "PTIME"),
    (ProblemClass.PW_K, Context.SEMISTRUCTURED): (False, None),
    (ProblemClass.LOCAL_EXTENT, Context.SEMISTRUCTURED): (True, "PTIME"),
    (ProblemClass.GENERAL, Context.SEMISTRUCTURED): (False, None),
    **{
        (klass, Context.M): (True, "cubic")
        for klass in ProblemClass
    },
    # Over M+ and M+f the paper proves P_w(rho), local extent and P_c
    # undecidable (Theorems 5.2, 6.1, 6.2).  It leaves pure P_w over
    # M+ unresolved; we conservatively route it to semi-decision too.
    **{
        (klass, ctx): (False, None)
        for klass in ProblemClass
        for ctx in (Context.M_PLUS, Context.M_PLUS_FINITE)
    },
}


def table1_cell(
    problem_class: ProblemClass, context: Context
) -> tuple[bool, str | None]:
    """The paper's verdict for a Table 1 cell: (decidable, complexity)."""
    return TABLE1[(problem_class, context)]


@dataclass
class ImplicationProblem:
    """A fully specified implication instance.

    ``schema`` is required for the typed contexts and ignored for the
    semistructured one.
    """

    sigma: Sequence[PathConstraint]
    phi: PathConstraint
    context: Context = Context.SEMISTRUCTURED
    schema: Schema | None = None

    def __post_init__(self) -> None:
        self.sigma = tuple(self.sigma)
        if isinstance(self.context, str):
            self.context = Context(self.context)
        if self.context is not Context.SEMISTRUCTURED and self.schema is None:
            raise ValueError(f"context {self.context.value} needs a schema")


def classify(
    sigma: Sequence[PathConstraint], phi: PathConstraint
) -> ProblemClass:
    """The most specific fragment containing Sigma and phi."""
    everything = list(sigma) + [phi]
    if all(psi.is_word_constraint() for psi in everything):
        return ProblemClass.WORD

    # P_w(K): all constraints word or guarded by one shared label K.
    guards = {
        psi.prefix.first()
        for psi in everything
        if not psi.prefix.is_empty()
    }
    if len(guards) == 1:
        guard = next(iter(guards))
        if all(is_in_pw_k(psi, guard) for psi in everything):
            return ProblemClass.PW_K

    # Local extent: the query is bounded and the whole set is
    # prefix-bounded by the query's (rho, K).
    try:
        rho, guard = infer_bounds(phi)
    except ValueError:
        return ProblemClass.GENERAL
    if is_prefix_bounded_set(everything, rho, guard):
        return ProblemClass.LOCAL_EXTENT
    return ProblemClass.GENERAL


def _reconcile_with_table1(
    result: ImplicationResult,
    problem_class: ProblemClass,
    context: Context,
) -> ImplicationResult:
    """Normalize a procedure's result against the Table 1 verdict.

    The result object of every route must agree with
    :func:`table1_cell` on decidability and complexity — a decider
    claiming a different complexity class than the paper's cell (or a
    semi-decider claiming decidability) is a routing bug, not a
    stylistic difference.  Conflicts raise; a missing complexity on a
    decidable cell is filled in from the table.
    """
    decidable, complexity = table1_cell(problem_class, context)
    if result.decidable != decidable:
        raise AssertionError(
            f"procedure returned decidable={result.decidable} for the "
            f"({problem_class.value}, {context.value}) cell, but Table 1 "
            f"says decidable={decidable}"
        )
    if decidable:
        if result.complexity is not None and result.complexity != complexity:
            raise AssertionError(
                f"procedure claims complexity {result.complexity!r} for the "
                f"({problem_class.value}, {context.value}) cell, but Table 1 "
                f"says {complexity!r}"
            )
        result.complexity = complexity
    return result


def solve(
    problem: ImplicationProblem,
    allow_semidecision: bool = True,
    chase_steps: int = DEFAULT_CHASE_STEPS,
    countermodel_nodes: int = 3,
    typed_search_limit: int = 2_000,
    with_proof: bool = False,
    jobs: int | str = 1,
    deadline: float | None = None,
    max_respawns: int = 2,
    inject: "FaultPlan | None" = None,
    execution: str = "auto",
) -> ImplicationResult:
    """Decide or semi-decide an implication problem.

    For decidable (fragment, context) cells the answer is definite.
    For undecidable cells, with ``allow_semidecision`` a portfolio of
    semi-deciders runs: the chase (sound both ways, untyped) and
    isomorphism-pruned counter-model search; in typed contexts an
    untyped chase TRUE transfers (``U(Delta)`` is a subclass of all
    structures) while refutation uses typed counter-models only.
    ``jobs`` caps the portfolio's parallelism — a positive int, or
    ``"auto"`` for the CPU count; a cost model then picks inline,
    in-process sharded, or pooled execution per solve from the
    closed-form scan size, so extra jobs never cost more than they
    buy (see :mod:`repro.reasoning.portfolio`; ``execution`` forces a
    mode).  ``deadline`` is a wall-clock budget in seconds shared by
    every engine.  Pool execution is supervised: worker crashes
    respawn the pool at most ``max_respawns`` times before degrading
    to in-process runs, and ``inject`` (default: the ``$REPRO_INJECT``
    spec, usually empty) enables deterministic fault injection; every
    result carries a ``faults`` record.  Without
    ``allow_semidecision`` an :class:`UndecidableProblemError` is
    raised.  Nonsensical ``jobs`` or ``max_respawns`` (zero, negative,
    non-int) raise :class:`ValueError` before any work starts.
    """
    validate_jobs(jobs)
    validate_max_respawns(max_respawns)
    problem_class = classify(problem.sigma, problem.phi)
    decidable, _complexity = table1_cell(problem_class, problem.context)
    budget = Budget.from_seconds(deadline)

    if problem.context is Context.M:
        assert problem.schema is not None
        result = implies_typed_m(
            problem.schema, problem.sigma, problem.phi, with_proof=with_proof
        )
        return _reconcile_with_table1(result, problem_class, problem.context)

    if problem.context is Context.SEMISTRUCTURED and decidable:
        if problem_class is ProblemClass.WORD:
            result = implies_word(
                problem.sigma,
                problem.phi,
                with_proof=with_proof,
                chase_steps=chase_steps,
                deadline=budget.deadline,
            )
        else:
            result = implies_local_extent(
                list(problem.sigma), problem.phi, with_proof=with_proof
            )
        return _reconcile_with_table1(result, problem_class, problem.context)

    # Undecidable cell: run the portfolio of semi-deciders.
    if not allow_semidecision:
        raise UndecidableProblemError(
            f"the (finite) implication problem for {problem_class.value} in "
            f"the {problem.context.value} context is undecidable "
            "(Table 1); pass allow_semidecision=True for a sound "
            "three-valued attempt"
        )

    result = run_portfolio(
        problem,
        jobs=jobs,
        budget=budget,
        chase_steps=chase_steps,
        countermodel_nodes=countermodel_nodes,
        typed_search_limit=typed_search_limit,
        max_respawns=max_respawns,
        fault_plan=inject,
        execution=execution,
    )
    return _reconcile_with_table1(result, problem_class, problem.context)
