"""Local extent implication on untyped data — decidable in PTIME.

Theorem 5.1 / Lemma 5.3: for a constraint set Sigma with prefix
bounded by ``(rho, K)`` and a query phi bounded by ``(rho, K)``,

    Sigma |= phi   iff   Sigma^1_K u Sigma^1_r |= phi^1
                   iff   Sigma^2_K |= phi^2,

where ``g1`` strips ``rho`` from every prefix and ``g2`` strips the
guard ``K`` from the bounded constraints, leaving plain word
constraints.  The striking content of the lemma is that the
*unbounded* rest ``Sigma_r`` (constraints on other local databases)
does not interact at all — it is simply dropped — and the residual
problem is P_w implication, decidable in PTIME.  (Over M+ this
reduction fails: Theorem 5.2 and the Figure 4 gadget.)
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.constraints.ast import PathConstraint, word
from repro.constraints.classes import infer_bounds, partition_bounded
from repro.paths import Path
from repro.reasoning.result import ImplicationResult
from repro.reasoning.word import WordImplicationDecider
from repro.truth import Trilean


def g1(constraints: Iterable[PathConstraint], rho: Path | str) -> list[PathConstraint]:
    """Strip the common prefix ``rho`` (first reduction step)."""
    rho = Path.coerce(rho)
    return [phi.strip_prefix(rho) for phi in constraints]


def g2(constraints: Iterable[PathConstraint], guard: str) -> list[PathConstraint]:
    """Strip the guard ``K`` from K-bounded constraints, yielding word
    constraints (second reduction step)."""
    guard_path = Path.single(guard)
    out: list[PathConstraint] = []
    for phi in constraints:
        if phi.prefix != guard_path or not phi.is_forward():
            raise ValueError(f"{phi} is not a K-guarded forward constraint")
        out.append(word(phi.lhs, phi.rhs))
    return out


def reduce_to_word_problem(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    rho: Path | str,
    guard: str,
) -> tuple[list[PathConstraint], PathConstraint]:
    """The full g2 . g1 reduction: ``(Sigma^2_K, phi^2)``.

    Validates boundedness (Definitions 2.3/2.4) along the way; raises
    :class:`ValueError` on a malformed instance.
    """
    rho = Path.coerce(rho)
    # Validate the whole instance (Sigma and the query) against
    # Definition 2.3, then keep Sigma's bounded part as the premises.
    all_bounded, _rest = partition_bounded(list(sigma) + [phi], rho, guard)
    if phi not in all_bounded:
        raise ValueError(
            f"the query {phi} is not bounded by ({rho}, {guard}) "
            "(Definition 2.4 requires it)"
        )
    bounded_set = set(all_bounded)
    premise_k = [psi for psi in sigma if psi in bounded_set]
    stripped = g1(premise_k, rho)
    words = g2(stripped, guard)
    phi1 = phi.strip_prefix(rho)
    phi2 = g2([phi1], guard)[0]
    return words, phi2


def implies_local_extent(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    rho: Path | str | None = None,
    guard: str | None = None,
    with_proof: bool = False,
) -> ImplicationResult:
    """Decide the local extent implication problem (Definition 2.4).

    ``rho``/``guard`` are inferred from the query when omitted (the
    paper notes this is linear-time: the guard is the last label of
    ``pf(phi)``).  With ``with_proof`` a positive answer carries the
    I_w certificate of the reduced word instance
    (``Sigma^2_K |- phi^2``), which Lemma 5.3 transfers to the
    original instance — this keeps the ``with_proof`` contract uniform
    across the decidable Table 1 routes.

    >>> from repro.constraints import parse_constraints, parse_constraint
    >>> sigma = parse_constraints('''
    ...     MIT :: book.author => person
    ...     MIT :: person.wrote => book
    ...     Warner.book :: author ~> wrote
    ... ''')
    >>> phi = parse_constraint("MIT :: book.author.wrote => book")
    >>> implies_local_extent(sigma, phi).implied
    True
    """
    if rho is None or guard is None:
        inferred_rho, inferred_guard = infer_bounds(phi)
        rho = inferred_rho if rho is None else Path.coerce(rho)
        guard = inferred_guard if guard is None else guard
    rho = Path.coerce(rho)
    words, phi2 = reduce_to_word_problem(sigma, phi, rho, guard)
    decider = WordImplicationDecider(words)
    answer = decider.implies(phi2)
    proof = decider.prove(phi2) if (with_proof and answer) else None
    notes = [
        "Sigma_r (other local databases) does not interact (Lemma 5.3)",
        "implication and finite implication coincide",
    ]
    if proof is not None:
        notes.append(
            "proof certifies the reduced word instance Sigma^2_K |- phi^2; "
            "Lemma 5.3 transfers it to the original constraints"
        )
    return ImplicationResult(
        answer=Trilean.of(answer),
        method="local-extent-g1-g2-reduction",
        decidable=True,
        complexity="PTIME",
        proof=proof,
        certificate={"rho": rho, "guard": guard, "word_premises": words,
                     "word_query": phi2},
        notes=tuple(notes),
    )
